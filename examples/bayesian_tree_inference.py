"""Gaussian belief propagation on a tree-structured state-space model (Section 6.2).

A sensor hierarchy is modelled as a linear-Gaussian tree: every node has a
hidden state, children feed their parent through linear dynamics, and every
node is observed with noise.  The framework computes the posterior of the
root given all observations; the dense-joint reference verifies it.

Run with:  python examples/bayesian_tree_inference.py
"""

import numpy as np

from repro import solve
from repro.inference import (
    GaussianTreeInference,
    random_gaussian_tree_model,
    root_posterior_reference,
)
from repro.trees.generators import balanced_kary_tree
from repro.trees.properties import tree_summary


def main() -> None:
    tree = balanced_kary_tree(127, k=2)
    print("sensor hierarchy:", tree_summary(tree))

    model = random_gaussian_tree_model(tree, dim=2, obs_dim=1, seed=11)
    result = solve(tree, GaussianTreeInference(model), degree_reduction=False)

    mean, cov = result.value["mean"], result.value["cov"]
    print(f"posterior mean of the root state: {np.round(mean, 4)}")
    print(f"posterior covariance:\n{np.round(cov, 4)}")
    print(f"MPC rounds: {result.rounds}")

    ref_mean, ref_cov = root_posterior_reference(model)
    print(
        f"max |error| vs dense reference: "
        f"mean {np.max(np.abs(mean - ref_mean)):.2e}, cov {np.max(np.abs(cov - ref_cov)):.2e}"
    )


if __name__ == "__main__":
    main()
