"""Normalising every input representation and exporting back (Sections 3 and 6.3).

Run with:  python examples/representation_conversions.py
"""

from repro import MPCConfig, MPCSimulator
from repro.representations import ListOfEdges, StringOfParentheses, export
from repro.representations.normalize import normalize_to_rooted_tree
from repro.representations.parentheses import tree_to_parentheses
from repro.representations.traversals import (
    tree_to_bfs_traversal,
    tree_to_dfs_traversal,
    tree_to_pointers,
)
from repro.trees.generators import random_attachment_tree
from repro.trees.properties import diameter


def main() -> None:
    tree = random_attachment_tree(1500, seed=4)
    print(f"tree: n={tree.num_nodes}, D={diameter(tree)}\n")

    representations = {
        "list-of-edges (directed)": (ListOfEdges(tree.edges(), directed=True), tree.root),
        "list-of-edges (undirected)": (ListOfEdges(tree.edges(), directed=False), tree.root),
        "string-of-parentheses": (StringOfParentheses(tree_to_parentheses(tree)), None),
        "BFS-traversal": (tree_to_bfs_traversal(tree), None),
        "DFS-traversal": (tree_to_dfs_traversal(tree), None),
        "pointers-to-parents": (tree_to_pointers(tree), None),
    }

    print("Section 3 — normalising into the standard representation:")
    for name, (rep, root) in representations.items():
        sim = MPCSimulator(MPCConfig(n=tree.num_nodes))
        normalized = normalize_to_rooted_tree(sim, rep, root=root)
        print(
            f"  {name:30s} -> n={normalized.num_nodes:5d}  "
            f"rounds={sim.stats.rounds:3d} (+{sim.stats.charged_rounds} charged)"
        )

    print("\nSection 6.3 — exporting the standard representation:")
    sim = MPCSimulator(MPCConfig(n=tree.num_nodes))
    print(f"  pointers-to-parents: {len(export.to_pointers_to_parents(tree, sim).parents)} entries")
    print(f"  BFS-traversal:       {len(export.to_bfs_traversal(tree, sim).parents)} entries")
    print(f"  DFS-traversal:       {len(export.to_dfs_traversal(tree, sim).parents)} entries")
    parens = export.to_string_of_parentheses(tree, sim).text
    print(f"  parentheses string:  {len(parens)} characters")
    print(f"  charged rounds:      {sim.stats.charged_rounds}")


if __name__ == "__main__":
    main()
