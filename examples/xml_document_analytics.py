"""Analysing a large XML-like document held as a string of nested tags.

The document arrives as a parenthesis string (Section 3's representation for
tag soup), is normalised into the standard rooted edge list by the
distributed chunk-cancellation algorithm, and then analysed with several DP
problems: structural validation against a schema, per-subtree element counts,
and nesting depth.

Run with:  python examples/xml_document_analytics.py
"""


from repro import prepare, solve_on
from repro.problems import NodeDepth, SubtreeSize
from repro.problems.xml_validation import XMLSchema, XMLStructureValidation, validate_xml_tree
from repro.representations import StringOfParentheses
from repro.representations.parentheses import tree_to_parentheses
from repro.trees.generators import random_recursive_tree


TAGS = ["catalog", "product", "offer", "price"]


def build_document(n: int = 4000, seed: int = 3) -> str:
    """A synthetic product catalogue serialised as nested parentheses."""
    tree = random_recursive_tree(n, seed=seed, bias=0.3)
    return tree_to_parentheses(tree)


def main() -> None:
    text = build_document()
    print(f"document: {len(text)} characters, {text.count('(')} elements")

    # Normalise + cluster straight from the string representation.
    prepared = prepare(StringOfParentheses(text))
    tree = prepared.original_tree
    print(
        f"parsed {tree.num_nodes} elements; clustering: "
        f"{prepared.clustering.num_layers} layers, "
        f"{prepared.clustering_stats.total_rounds} rounds"
    )

    # Tag every element by its nesting depth and validate the structure.
    depths = solve_on(prepared, NodeDepth()).output["depths"]
    tagged = tree.with_node_data(
        {v: {"tag": TAGS[min(int(d), len(TAGS) - 1)]} for v, d in depths.items()}
    )
    schema = XMLSchema(
        allowed_children={
            "catalog": {"product"},
            "product": {"offer", "price"},
            "offer": {"price", "offer"},
            "price": {"price", "offer"},
        },
        allowed_root={"catalog"},
    )
    valid_prepared = prepare(tagged, degree_reduction=False)
    validation = solve_on(valid_prepared, XMLStructureValidation(schema).bind(valid_prepared.tree))
    assert bool(validation.value) == validate_xml_tree(tagged, schema)
    print(
        f"schema validation: {'valid' if validation.value else 'INVALID'} "
        f"(dp rounds = {validation.rounds['dp']})"
    )

    # Per-subtree statistics: how many elements below each element?
    sizes = solve_on(prepared, SubtreeSize()).output["subtree_values"]
    biggest = sorted(sizes.items(), key=lambda kv: -kv[1])[:5]
    print("largest sub-documents (element id, descendants incl. itself):")
    for node, size in biggest:
        print(f"  element @char {node::>6}: {int(size)} elements")


if __name__ == "__main__":
    main()
