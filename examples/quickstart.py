"""Quickstart: solve maximum-weight independent set on a random tree.

Run with:  python examples/quickstart.py
"""

from repro import prepare, solve_on
from repro.problems import MaxWeightIndependentSet, MinWeightVertexCover
from repro.trees.generators import random_attachment_tree, with_random_weights
from repro.trees.properties import tree_summary


def main() -> None:
    # 1. Build a random weighted tree (any of the Section-3 representations
    #    would work as well; see representation_conversions.py).
    tree = with_random_weights(random_attachment_tree(2000, seed=1), seed=2)
    print("input tree:", tree_summary(tree))

    # 2. Prepare: normalise + hierarchical clustering (O(log D) rounds).
    prepared = prepare(tree)
    print(
        f"clustering: {prepared.clustering.num_layers} layers, "
        f"{len(prepared.clustering.clusters)} clusters, "
        f"{prepared.clustering_stats.total_rounds} rounds"
    )

    # 3. Solve problems on the prepared clustering (O(1) rounds per layer each).
    mis = solve_on(prepared, MaxWeightIndependentSet())
    print(
        f"max-weight independent set: weight={mis.value:.3f}, "
        f"|S|={len(mis.output['independent_set'])}, dp rounds={mis.rounds['dp']}"
    )

    vc = solve_on(prepared, MinWeightVertexCover())
    print(
        f"min-weight vertex cover:    weight={vc.value:.3f}, "
        f"|C|={len(vc.output['vertex_cover'])}, dp rounds={vc.rounds['dp']}"
    )

    # 4. Per-node outputs are the edge labels of the paper.
    in_set = [v for v, s in mis.node_labels.items() if s == "in"]
    print(f"first few selected nodes: {sorted(in_set)[:10]}")


if __name__ == "__main__":
    main()
