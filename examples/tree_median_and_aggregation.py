"""Tree median (Section 6.1) and subtree aggregation on one sensor tree.

Leaves carry raw sensor readings; every internal node reports the median of
its children (a robust aggregate), and we additionally compute per-subtree
minimum/maximum/sum — the accumulation tasks of Table 1.

Run with:  python examples/tree_median_and_aggregation.py
"""

from repro import prepare, solve_on
from repro.problems import SubtreeAggregate, TreeMedian
from repro.problems.tree_median import sequential_tree_median
from repro.trees.generators import spider_tree, with_random_leaf_values
from repro.trees.properties import tree_summary


def main() -> None:
    tree = with_random_leaf_values(spider_tree(2500), seed=21, low=-50, high=50)
    print("sensor tree:", tree_summary(tree))

    prepared = prepare(tree, degree_reduction=False)

    median = solve_on(prepared, TreeMedian())
    print(
        f"median reported at the root: {median.value:.3f} "
        f"(dp rounds = {median.rounds['dp']})"
    )
    assert abs(median.value - sequential_tree_median(tree)[tree.root]) < 1e-9

    # The same clustering is reused for the other aggregates; only leaves carry
    # values, so min/max/sum skip the unlabeled internal nodes.
    for op in ("min", "max", "sum"):
        agg = solve_on(prepared, SubtreeAggregate(op=op, count_nodes_without_data=False))
        print(f"subtree {op:3s} at the root: {agg.value:10.3f} (dp rounds = {agg.rounds['dp']})")


if __name__ == "__main__":
    main()
