"""Solve the classical graph optimisation problems of Table 1 on one tree.

Demonstrates the paper's main conceptual point: the hierarchical clustering
is computed once and reused for every problem (and it would equally be reused
for new input values on the same topology).

Run with:  python examples/graph_optimization_suite.py
"""

from repro import prepare, solve_on
from repro.problems import (
    CountMatchingsModK,
    LongestPath,
    MaxWeightIndependentSet,
    MaxWeightMatching,
    MinWeightDominatingSet,
    MinWeightVertexCover,
    SumColoring,
)
from repro.trees.generators import caterpillar_tree, with_random_weights
from repro.trees.properties import tree_summary


def main() -> None:
    tree = with_random_weights(caterpillar_tree(1200), seed=5)
    print("input tree:", tree_summary(tree))

    prepared = prepare(tree)
    print(
        f"clustering built once: {prepared.clustering_stats.total_rounds} rounds, "
        f"{prepared.clustering.num_layers} layers\n"
    )

    problems = [
        MaxWeightIndependentSet(),
        MinWeightVertexCover(),
        MinWeightDominatingSet(),
        MaxWeightMatching(),
        SumColoring(k=3),
        LongestPath(),
        CountMatchingsModK(k=1_000_000_007),
    ]
    for problem in problems:
        res = solve_on(prepared, problem)
        print(f"{problem.name:40s} value = {res.value:>14.3f}   dp rounds = {res.rounds['dp']}")


if __name__ == "__main__":
    main()
