"""Experiment T1 — regenerate the paper's Table 1 as a capability matrix.

For every problem the paper lists, run it through the full pipeline on a
random tree, check the result against an independent sequential reference,
and print the coverage row (prior work [SODA'23] vs. this work vs. verified
here).  The paper's Table 1 carries no numbers, only check marks; the
"verified" column is this reproduction's addition.
"""

from repro.core.pipeline import solve
from repro.problems.registry import table1_entries
from repro.problems.xml_validation import XMLStructureValidation

from benchmarks.conftest import emit_json, print_table, run_once, scaled

N = scaled(400, 120)
SEED = 1

ENTRIES = [e for e in table1_entries() if "Bayesian" not in e.name]


def _run_all():
    rows = []
    for entry in ENTRIES:
        tree = entry.make_tree(N, SEED)
        problem = entry.make_problem()
        if isinstance(problem, XMLStructureValidation):
            problem = problem.bind(tree)
        result = solve(tree, problem, degree_reduction=entry.degree_reduction)
        ok = entry.compare(result, entry.reference(tree), tree)
        rows.append(
            (
                entry.name,
                "yes" if entry.prior_work else "—",
                "yes" if entry.this_work else "—",
                "verified" if ok else "MISMATCH",
                result.total_rounds,
            )
        )
    return rows


def test_table1_coverage(benchmark):
    rows = run_once(benchmark, _run_all)
    print_table(
        f"Table 1 — problem coverage (n={N}, random attachment tree)",
        ["problem", "prior work [4]", "this work", "reproduction", "rounds"],
        rows,
    )
    emit_json("table1_coverage", {"n": N, "rows": rows})
    assert all(r[3] == "verified" for r in rows)
    # The paper's Table 1: only the three LCL problems are solvable by prior work.
    assert sum(1 for r in rows if r[1] == "yes") == 3
