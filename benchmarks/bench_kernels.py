"""Experiment K — vectorized semiring kernels vs. the scalar local solver.

The paper's engine (Section 5) makes the number of rounds O(1); wall-clock
speed of the reproduction is then set by the per-cluster local solves.  This
experiment measures the DP-solve phase (``solve_on`` on a prepared
clustering — the clustering itself is backend-independent and reused) for
every finite-state Table-1 problem under both backends:

* ``python`` — the scalar dict-of-dicts reference path,
* ``numpy``  — the dense kernels of :mod:`repro.dp.kernels` (hole batching,
  level-scheduled cross-cluster batching, affine finalize decomposition).

Besides the speedups, the harness asserts that both backends return
bit-identical objective values and edge labels on every problem, and writes
``BENCH_kernels.json`` so CI tracks the numbers per PR.
"""

import time

from repro.core.pipeline import prepare, solve_on
from repro.problems.counting_matchings import CountMatchingsModK
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.problems.max_weight_matching import MaxWeightMatching
from repro.problems.maximal_independent_set import MaximalIndependentSet
from repro.problems.min_weight_dominating_set import MinWeightDominatingSet
from repro.problems.min_weight_vertex_cover import MinWeightVertexCover
from repro.problems.sum_coloring import SumColoring
from repro.problems.vertex_coloring import VertexColoring
from repro.problems.weighted_max_sat import WeightedMaxSAT
from repro.trees import generators as gen

from benchmarks.conftest import SMOKE, emit_json, print_table, run_once, scaled

#: The acceptance regime: n >= 10^4 nodes (reduced in smoke mode).
N = scaled(10_000, 500)
SEED = 2

#: The finite-state problem suite (name, factory); spans every dense kernel
#: (max-plus, min-plus, counting) and state-space sizes from 2 to 6.
PROBLEMS = [
    ("maximum-weight independent set", MaxWeightIndependentSet),
    ("minimum-weight vertex cover", MinWeightVertexCover),
    ("minimum-weight dominating set", MinWeightDominatingSet),
    ("maximum-weight matching", MaxWeightMatching),
    ("maximal independent set", MaximalIndependentSet),
    ("weighted max-SAT", WeightedMaxSAT),
    ("sum coloring (k=3)", lambda: SumColoring(k=3)),
    ("vertex coloring (k=3)", lambda: VertexColoring(k=3)),
    ("sum coloring (k=6)", lambda: SumColoring(k=6)),
    ("vertex coloring (k=6)", lambda: VertexColoring(k=6)),
    ("counting matchings mod 997", lambda: CountMatchingsModK(k=997)),
]


def _sat_payload(tree, seed):
    """Per-node unit clauses and per-edge binary clauses (the SAT input)."""
    import random

    rng = random.Random(seed)
    node_data = {
        v: {"clauses": [(rng.random() < 0.5, round(rng.uniform(0, 5), 2))]}
        for v in tree.nodes()
    }
    t = tree.with_node_data(node_data)
    t.edge_data = {
        e: {"clauses": [(rng.random() < 0.5, rng.random() < 0.5, round(rng.uniform(0, 5), 2))]}
        for e in tree.edges()
    }
    return t


def _measure():
    # Each problem runs on its natural input (as in the Table-1 registry):
    # weighted random trees for the optimisation problems, a clause-decorated
    # tree for max-SAT.  Both clusterings are prepared outside the timed
    # phase — the clustering is backend-independent and reused.
    #
    # Noise model: scheduler/load swings on a shared box are additive, so
    # each backend's *minimum* over the repeats estimates its clean-machine
    # time; the repeats of the two backends are interleaved (python, numpy,
    # python, numpy, ...) so both sample the same wall-clock window and one
    # backend cannot land entirely inside a loaded burst the other missed.
    base = gen.random_attachment_tree(N, seed=SEED)
    prepared = prepare(gen.with_random_weights(base, seed=SEED))
    prepared_sat = prepare(_sat_payload(base, SEED))
    rows = []
    totals = {"python": 0.0, "numpy": 0.0}
    repeats = 1 if SMOKE else 7
    for name, make in PROBLEMS:
        target = prepared_sat if "SAT" in name else prepared
        runs = {"python": [], "numpy": []}
        results = {}
        for _ in range(repeats):
            for backend in ("python", "numpy"):
                t0 = time.perf_counter()
                results[backend] = solve_on(target, make(), backend=backend)
                runs[backend].append(time.perf_counter() - t0)
        times = {b: min(r) for b, r in runs.items()}
        speedup = times["python"] / times["numpy"]
        totals["python"] += times["python"]
        totals["numpy"] += times["numpy"]
        r_py, r_np = results["python"], results["numpy"]
        identical = r_py.value == r_np.value and r_py.edge_labels == r_np.edge_labels
        rows.append(
            (
                name,
                f"{times['python'] * 1000:.1f}",
                f"{times['numpy'] * 1000:.1f}",
                f"{speedup:.2f}x",
                "yes" if identical else "MISMATCH",
            )
        )
    return rows, totals


def test_kernels_backend_speedup(benchmark):
    rows, totals = run_once(benchmark, _measure)
    speedup = totals["python"] / totals["numpy"]
    rows.append(
        (
            "TOTAL (DP-solve phase)",
            f"{totals['python'] * 1000:.1f}",
            f"{totals['numpy'] * 1000:.1f}",
            f"{speedup:.2f}x",
            "-",
        )
    )
    print_table(
        f"Kernels — DP-solve phase, python vs numpy backend (n={N}, random tree)",
        ["problem", "python ms", "numpy ms", "speedup", "bit-identical"],
        rows,
    )
    emit_json(
        "kernels",
        {
            "n": N,
            "seed": SEED,
            "per_problem": [
                {
                    "problem": r[0],
                    "python_ms": float(r[1]),
                    "numpy_ms": float(r[2]),
                    "speedup": float(r[3].rstrip("x")),
                }
                for r in rows[:-1]
            ],
            "total_python_s": totals["python"],
            "total_numpy_s": totals["numpy"],
            "speedup": speedup,
        },
    )
    assert all(r[4] == "yes" for r in rows[:-1])
    if not SMOKE and N >= 10_000:
        # The acceptance bar: >=3x on the DP-solve phase at n >= 10^4.
        assert speedup >= 3.0, f"kernel speedup regressed to {speedup:.2f}x"
