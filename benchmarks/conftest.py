"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's artifacts (a table, a
figure, or a stated round/memory bound) — see DESIGN.md §4 for the experiment
index and EXPERIMENTS.md for paper-vs-measured notes.  The benchmarks print
their rows so the harness output doubles as the reproduction report; the
``benchmark`` fixture (pytest-benchmark) times a single representative run of
each experiment.

Two harness-level facilities support the CI perf-tracking job:

* **Smoke mode** — setting ``BENCH_SMOKE=1`` (or ``true``/``yes``/``on``)
  switches every module to reduced sizes via :func:`scaled`, so the whole
  suite finishes in CI minutes while still exercising every code path.
* **JSON artifacts** — :func:`emit_json` writes each experiment's measured
  rows to ``BENCH_<name>.json`` (in the working directory, or
  ``$BENCH_OUTPUT_DIR``); CI uploads them so the perf trajectory of every
  PR is recorded.  Each file carries a ``smoke`` flag plus the experiment's
  free-form payload.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable

#: True when the harness runs in reduced-size CI mode.
SMOKE = os.environ.get("BENCH_SMOKE", "").strip().lower() in {"1", "true", "yes", "on"}


def scaled(full, smoke):
    """Pick the full-size or smoke-size experiment parameter."""
    return smoke if SMOKE else full


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Time ``fn`` exactly once (the experiments are deterministic and heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


def print_table(title: str, header: list, rows: list) -> None:
    """Render a small fixed-width table into the captured benchmark output."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def _json_default(x):
    item = getattr(x, "item", None)
    if callable(item):
        return item()  # NumPy scalars
    return str(x)


def emit_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` for the CI artifact upload.

    Smoke runs default to ``bench-artifacts/`` (gitignored) so a local
    ``BENCH_SMOKE=1`` pass never clobbers the tracked full-size
    ``BENCH_kernels.json`` record in the repo root.
    """
    default_dir = "bench-artifacts" if SMOKE else "."
    out_dir = Path(os.environ.get("BENCH_OUTPUT_DIR", default_dir))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    body = {"smoke": SMOKE}
    body.update(payload)
    path.write_text(json.dumps(body, indent=2, sort_keys=True, default=_json_default) + "\n")
    return path
