"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's artifacts (a table, a
figure, or a stated round/memory bound) — see DESIGN.md §4 for the experiment
index and EXPERIMENTS.md for paper-vs-measured notes.  The benchmarks print
their rows so the harness output doubles as the reproduction report; the
``benchmark`` fixture (pytest-benchmark) times a single representative run of
each experiment.
"""

from __future__ import annotations

from typing import Callable


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Time ``fn`` exactly once (the experiments are deterministic and heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


def print_table(title: str, header: list, rows: list) -> None:
    """Render a small fixed-width table into the captured benchmark output."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h)) for i, h in enumerate(header)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
