"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's artifacts (a table, a
figure, or a stated round/memory bound) — see DESIGN.md §4 for the experiment
index and EXPERIMENTS.md for paper-vs-measured notes.  The benchmarks print
their rows so the harness output doubles as the reproduction report; the
``benchmark`` fixture (pytest-benchmark) times a single representative run of
each experiment.

Two harness-level facilities support the CI perf-tracking job:

* **Smoke mode** — setting ``BENCH_SMOKE=1`` (or ``true``/``yes``/``on``)
  switches every module to reduced sizes via :func:`scaled`, so the whole
  suite finishes in CI minutes while still exercising every code path.
* **JSON artifacts** — :func:`emit_json` writes each experiment's measured
  rows to ``BENCH_<name>.json`` (in the working directory, or
  ``$BENCH_OUTPUT_DIR``); CI uploads them so the perf trajectory of every
  PR is recorded.  Each file carries a ``smoke`` flag, a ``metrics`` block
  (see below) and the experiment's free-form payload.
* **Shared observability** — the harness installs one ``"metrics"``
  :class:`~repro.obs.ObsContext` per experiment
  (:func:`repro.obs.context.install_shared`), so every simulator an
  experiment builds feeds a single registry and each BENCH artifact embeds
  the per-phase breakdown (prepare phases, DP layers, exec/serving
  latencies) for free.  :func:`emit_json` snapshots the registry into the
  artifact's ``metrics`` block and starts a fresh context for the next
  experiment.
* **Declared artifacts** — modules listed in :data:`DECLARED_ARTIFACTS`
  must emit their tracked ``BENCH_<name>.json``; an autouse module fixture
  fails the run when one silently goes missing (the PR 9 regression class:
  ``bench_serving`` defined the artifact but CI's glob matched nothing).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable

import pytest

from repro.obs.context import ObsContext, install_shared

#: True when the harness runs in reduced-size CI mode.
SMOKE = os.environ.get("BENCH_SMOKE", "").strip().lower() in {"1", "true", "yes", "on"}


def scaled(full, smoke):
    """Pick the full-size or smoke-size experiment parameter."""
    return smoke if SMOKE else full


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Time ``fn`` exactly once (the experiments are deterministic and heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


def print_table(title: str, header: list, rows: list) -> None:
    """Render a small fixed-width table into the captured benchmark output."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def _json_default(x):
    item = getattr(x, "item", None)
    if callable(item):
        return item()  # NumPy scalars
    return str(x)


@pytest.fixture(scope="session", autouse=True)
def _shared_obs_session():
    """Install the harness-wide ``"metrics"`` context for the bench session.

    Installed here — not at import time — because test modules import bench
    helpers (e.g. ``tests/test_incremental_updates.py`` reuses
    ``bench_kernels._sat_payload``) and an import-time ``install_shared``
    would leak the override into every later tier-1 test.  The state itself
    lives in :mod:`repro.obs.context`, the one module instance both
    ``conftest`` copies share (see :func:`_declared_artifacts_present` for
    the dual-module story).
    """
    prev = install_shared(ObsContext("metrics"))
    try:
        yield
    finally:
        install_shared(prev)


#: Tracked artifacts each benchmark module is declared to emit.  The repo
#: root carries the full-size records of these; CI re-emits them in smoke
#: mode and fails when one is absent.
DECLARED_ARTIFACTS = {
    "bench_kernels": ("kernels",),
    "bench_pipeline": ("pipeline", "parallel"),
    "bench_updates": ("updates",),
    "bench_serving": ("serving",),
}


def _artifact_dir() -> Path:
    default_dir = "bench-artifacts" if SMOKE else "."
    return Path(os.environ.get("BENCH_OUTPUT_DIR", default_dir))


@pytest.fixture(scope="module", autouse=True)
def _declared_artifacts_present(request):
    """Fail the module whose declared BENCH artifact was never written.

    Checked on the filesystem, not in-process state: pytest's ``conftest``
    module and the ``benchmarks.conftest`` the experiments import are
    distinct module objects, so the artifact file is the one shared truth.
    """
    yield
    module = request.module.__name__.rsplit(".", 1)[-1]
    declared = DECLARED_ARTIFACTS.get(module, ())
    missing = [
        name
        for name in declared
        if not (_artifact_dir() / f"BENCH_{name}.json").is_file()
    ]
    if missing:
        pytest.fail(
            f"{module} declares BENCH artifact(s) {missing} but did not "
            "emit them — emit_json() was never called or the file vanished"
        )


def emit_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` for the CI artifact upload.

    Smoke runs default to ``bench-artifacts/`` (gitignored) so a local
    ``BENCH_SMOKE=1`` pass never clobbers the tracked full-size
    ``BENCH_kernels.json`` record in the repo root.

    Every artifact embeds the experiment's metric exposition under
    ``"metrics"`` (the shared context's
    :meth:`~repro.obs.MetricsRegistry.to_json`), then rotates in a fresh
    context so the next experiment's block starts clean.  The rotation goes
    through :func:`repro.obs.context.install_shared` rather than a module
    global here, because this function runs in whichever ``conftest`` module
    copy imported it — ``repro.obs.context`` is the single shared instance.
    """
    out_dir = _artifact_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    prev = install_shared(None)
    if prev is not None:
        install_shared(ObsContext("metrics"))
    body = {
        "smoke": SMOKE,
        "metrics": prev.metrics.to_json() if prev is not None else {},
    }
    body.update(payload)
    path.write_text(json.dumps(body, indent=2, sort_keys=True, default=_json_default) + "\n")
    return path
