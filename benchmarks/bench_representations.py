"""Experiment S3 — Section 3 / Figure 4: representation conversions.

Every supported input representation is normalised into the standard rooted
edge list; already-rooted forms cost O(1) rounds, the distributed parenthesis
matcher costs O(1) rounds, and undirected edge lists pay the O(log D) rooting
charge.  Section 6.3's reverse conversions are exercised as well.
"""

from repro.mpc import MPCConfig, MPCSimulator
from repro.representations import ListOfEdges, StringOfParentheses, export
from repro.representations.normalize import normalize_to_rooted_tree
from repro.representations.parentheses import parentheses_to_tree, tree_to_parentheses
from repro.representations.traversals import (
    tree_to_bfs_traversal,
    tree_to_dfs_traversal,
    tree_to_pointers,
)
from repro.trees import generators as gen
from repro.trees.properties import diameter

from benchmarks.conftest import emit_json, print_table, run_once, scaled

N = scaled(1200, 300)


def _forward():
    tree = gen.random_attachment_tree(N, seed=7)
    reps = {
        "list-of-edges (directed)": (ListOfEdges(tree.edges(), directed=True), tree.root),
        "list-of-edges (undirected)": (ListOfEdges(tree.edges(), directed=False), tree.root),
        "string-of-parentheses": (StringOfParentheses(tree_to_parentheses(tree)), None),
        "BFS-traversal": (tree_to_bfs_traversal(tree), None),
        "DFS-traversal": (tree_to_dfs_traversal(tree), None),
        "pointers-to-parents": (tree_to_pointers(tree), None),
    }
    rows = []
    for name, (rep, root) in reps.items():
        sim = MPCSimulator(MPCConfig(n=N))
        out = normalize_to_rooted_tree(sim, rep, root=root)
        ok = out.num_nodes == tree.num_nodes and diameter(out) == diameter(tree)
        rows.append((name, sim.stats.rounds, sim.stats.charged_rounds, "ok" if ok else "MISMATCH"))
    return rows


def _reverse():
    tree = gen.random_attachment_tree(N, seed=8)
    sim = MPCSimulator(MPCConfig(n=N))
    rows = []
    ptr = export.to_pointers_to_parents(tree, sim)
    rows.append(("-> pointers-to-parents", len(ptr.parents)))
    bfs = export.to_bfs_traversal(tree, sim)
    rows.append(("-> BFS-traversal", len(bfs.parents)))
    dfs = export.to_dfs_traversal(tree, sim)
    rows.append(("-> DFS-traversal", len(dfs.parents)))
    text = export.to_string_of_parentheses(tree, sim).text
    back = parentheses_to_tree(text)
    assert back.num_nodes == tree.num_nodes
    rows.append(("-> string-of-parentheses", len(text)))
    rows.append(("total charged rounds", sim.stats.charged_rounds))
    return rows


def test_representation_normalization(benchmark):
    rows = run_once(benchmark, _forward)
    print_table(
        f"Section 3 — normalising every representation (n={N})",
        ["representation", "measured rounds", "charged rounds", "correct"],
        rows,
    )
    emit_json("representations", {"n": N, "rows": rows})
    assert all(r[3] == "ok" for r in rows)
    by_name = {r[0]: r for r in rows}
    # Already-rooted forms and the parenthesis matcher stay at O(1) rounds;
    # only the undirected edge list pays the O(log D) rooting charge.
    assert by_name["string-of-parentheses"][1] <= 10
    assert by_name["BFS-traversal"][1] + by_name["BFS-traversal"][2] <= 4
    assert by_name["list-of-edges (undirected)"][2] > by_name["list-of-edges (directed)"][2]


def test_representation_export(benchmark):
    rows = run_once(benchmark, _reverse)
    print_table(
        f"Section 6.3 — constructing non-standard representations (n={N})",
        ["conversion", "size / rounds"],
        rows,
    )
    emit_json("representations_export", {"n": N, "rows": rows})
