"""Experiment F1 — Figure 1: structure of the hierarchical clustering.

The paper's Figure 1 illustrates the clustering's defining properties:
constantly many layers, clusters of at most n^delta nodes, outdegree exactly
one and indegree at most one.  This benchmark measures those quantities over
tree families, sizes and delta values and checks the invariants.
"""

from repro.clustering.builder import build_hierarchical_clustering
from repro.clustering.degree_reduction import reduce_degrees
from repro.clustering.invariants import check_clustering
from repro.mpc import MPCConfig, MPCSimulator
from repro.trees import generators as gen
from repro.trees.properties import diameter

from benchmarks.conftest import emit_json, print_table, run_once, scaled

FAMILIES = ["path", "caterpillar", "binary", "spider", "random", "broom"]
SIZES = scaled([500, 2000], [250, 600])
DELTAS = [0.3, 0.5, 0.7]


def _build(family, n, delta):
    tree = gen.FAMILIES[family](n)
    sim = MPCSimulator(MPCConfig(n=n, delta=delta))
    red = reduce_degrees(tree, threshold=sim.config.light_threshold())
    hc = build_hierarchical_clustering(sim, red.tree)
    check_clustering(hc)
    return tree, hc


def _sweep():
    rows = []
    for family in FAMILIES:
        for n in SIZES:
            for delta in DELTAS:
                tree, hc = _build(family, n, delta)
                rows.append(
                    (
                        family,
                        n,
                        delta,
                        diameter(tree),
                        hc.num_layers,
                        len(hc.clusters),
                        hc.max_cluster_size(),
                        hc.stats["cluster_capacity"],
                        hc.stats["total_rounds"],
                    )
                )
    return rows


def test_fig1_clustering_structure(benchmark):
    rows = run_once(benchmark, _sweep)
    print_table(
        "Figure 1 — hierarchical clustering: layers, cluster sizes, rounds",
        ["family", "n", "delta", "D", "layers", "clusters", "max|C|", "capacity", "rounds"],
        rows,
    )
    emit_json("fig1_clustering", {"rows": rows})
    # Cluster sizes never exceed the capacity and layer counts stay small.
    assert all(r[6] <= r[7] for r in rows)
    assert all(r[4] <= 14 for r in rows)
    # Layer count does not grow with n at fixed family and delta (O(1) layers).
    by_key = {}
    for r in rows:
        by_key.setdefault((r[0], r[2]), []).append((r[1], r[4]))
    for (family, delta), pts in by_key.items():
        small = dict(pts)[SIZES[0]]
        large = dict(pts)[SIZES[1]]
        assert large <= small + 2, (family, delta, pts)
