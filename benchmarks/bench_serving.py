"""Experiment S — serving throughput and read latency under mixed load.

The serving-layer claim (:mod:`repro.serving`): a :class:`TreeServer` can
sustain a stream of coalesced point-update batches while concurrently
answering snapshot reads, with reads never blocking on the solver pass
(they are one dict reference read) and every answer bit-identical to a
from-scratch ``solve()`` at the same batch boundary.

This experiment drives one server with a writer streaming update batches
and several concurrent reader tasks hammering ``snapshot()`` /
``query_value()``, and measures:

* **sustained update throughput** — point updates applied per second over
  the whole run (solver pass + snapshot publication included);
* **read latency** — p50/p99 over every concurrent read (measured around
  the full ``snapshot()`` call, i.e. what a client observes);
* **batch latency** — p50/p99 of the awaited ``update()`` round trip.

The final boundary is differentially verified against a from-scratch
``solve()`` of the mutated tree.  Results land in ``BENCH_serving.json``
for the CI perf artifacts.
"""

import asyncio
import random
import time

import numpy as np

from repro.core.pipeline import prepare, solve
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.serving import ServerConfig
from repro.trees import generators as gen

from benchmarks.conftest import emit_json, print_table, run_once, scaled

#: The acceptance regime: n >= 10^4 nodes (reduced in smoke mode).
N = scaled(10_000, 600)
SEED = 9
BATCHES = scaled(150, 25)
UPDATES_PER_BATCH = 8
READERS = 4


def _percentiles(samples):
    arr = np.asarray(samples, dtype=float) * 1000.0  # -> milliseconds
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p99_ms": float(np.percentile(arr, 99)),
        "samples": int(arr.size),
    }


def _measure():
    tree = gen.with_random_weights(gen.random_attachment_tree(N, seed=SEED), seed=SEED)
    prepared = prepare(tree)
    server = prepared.serve(MaxWeightIndependentSet(), config=ServerConfig())
    nodes = sorted(tree.nodes())
    rng = random.Random(31)
    from repro.dynamic import node_update

    read_times = []
    batch_times = []

    async def writer():
        for _ in range(BATCHES):
            ups = [
                node_update(rng.choice(nodes), round(rng.uniform(0.1, 9.9), 3))
                for _ in range(UPDATES_PER_BATCH)
            ]
            t0 = time.perf_counter()
            await server.update(ups)
            batch_times.append(time.perf_counter() - t0)

    async def reader(writer_task):
        while not writer_task.done():
            t0 = time.perf_counter()
            snap = server.snapshot()
            read_times.append(time.perf_counter() - t0)
            assert snap.version <= server.version
            await asyncio.sleep(0)

    async def main():
        async with server:
            t0 = time.perf_counter()
            wtask = asyncio.get_running_loop().create_task(writer())
            await asyncio.gather(wtask, *(reader(wtask) for _ in range(READERS)))
            return time.perf_counter() - t0

    wall = asyncio.run(main())

    # Differential check at the final boundary: the served state must be
    # bit-identical to a from-scratch solve of the mutated tree.
    snap = server.snapshot()
    ref = solve(tree, MaxWeightIndependentSet())
    identical = (
        snap.value == ref.value
        and snap.root_label == ref.root_label
        and dict(snap.node_labels) == dict(ref.node_labels)
    )

    health = server.health_report()["server"]
    return {
        "n": N,
        "batches": BATCHES,
        "updates_per_batch": UPDATES_PER_BATCH,
        "readers": READERS,
        "wall_seconds": wall,
        "updates_per_sec": health["updates_applied"] / wall,
        "batches_per_sec": health["batches_applied"] / wall,
        "read_latency": _percentiles(read_times),
        "batch_latency": _percentiles(batch_times),
        "final_version": snap.version,
        "identical": identical,
    }


def test_serving_throughput_and_latency(benchmark):
    row = run_once(benchmark, _measure)
    print_table(
        f"TreeServer mixed load (n={row['n']}, {row['readers']} readers)",
        ["updates/s", "batches/s", "read p50 ms", "read p99 ms", "batch p50 ms", "identical"],
        [
            (
                f"{row['updates_per_sec']:.0f}",
                f"{row['batches_per_sec']:.1f}",
                f"{row['read_latency']['p50_ms']:.4f}",
                f"{row['read_latency']['p99_ms']:.4f}",
                f"{row['batch_latency']['p50_ms']:.2f}",
                "yes" if row["identical"] else "NO",
            )
        ],
    )
    emit_json("serving", row)

    assert row["identical"], "served state diverged from from-scratch solve"
    assert row["final_version"] == row["batches"]
    assert row["read_latency"]["samples"] > 0 and row["batch_latency"]["samples"] == row["batches"]
    # Reads are one dict reference read; even p99 must stay far below a
    # solver pass (generous bound to keep CI machines honest, not tight).
    assert row["read_latency"]["p99_ms"] < 50.0
