"""Experiment U — incremental point updates vs. from-scratch re-solves.

The serving-path claim of the incremental subsystem (:mod:`repro.dynamic`):
after one ``prepare()`` + solve, a point update re-solves only the dirty
cluster chain — O(log n) clusters instead of all of them — so repeated
weight tweaks and payload edits are far cheaper than re-running the
pipeline.  This experiment measures, at the acceptance size (n >= 10^4):

* a from-scratch ``solve()`` (prepare + DP) of the updated tree, vs.
* ``IncrementalSolver.apply_updates`` for the same single edit (including
  the label re-derivation and the projected-result construction),

for a single-edge weight update (maximum-weight matching), a single-node
weight update (maximum-weight independent set) and a single-clause edit
(weighted max-SAT).  Every timed update is also verified bit-identical —
value *and* labels — against the from-scratch solve it is compared to, and
the dirty-chain size is reported against the layer count.  Results land in
``BENCH_updates.json`` for the CI perf artifacts.

Noise model: as in bench_kernels, per-update minima over interleaved repeats
(scratch, incremental, scratch, ...) estimate clean-machine times.
"""

import random
import time

from repro.core.pipeline import prepare, solve
from repro.dynamic import IncrementalSolver, edge_update, node_update
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.problems.max_weight_matching import MaxWeightMatching
from repro.problems.weighted_max_sat import WeightedMaxSAT
from repro.trees import generators as gen

from benchmarks.bench_kernels import _sat_payload
from benchmarks.conftest import SMOKE, emit_json, print_table, run_once, scaled

#: The acceptance regime: n >= 10^4 nodes (reduced in smoke mode).
N = scaled(10_000, 500)
SEED = 2
UPDATES = 5  # distinct edits measured per scenario
REPEATS = 1 if SMOKE else 3


def _edge_weighted(tree, seed):
    rng = random.Random(seed)
    tree.edge_data = {e: round(rng.uniform(0, 5), 3) for e in tree.edges()}
    return tree


def _scenarios():
    base = gen.random_attachment_tree(N, seed=SEED)
    weighted = gen.with_random_weights(base, seed=SEED)
    rng = random.Random(77)

    def edge_weight_edit(tree):
        return [edge_update(rng.choice(tree.edges()), round(rng.uniform(0, 5), 3))]

    def node_weight_edit(tree):
        return [node_update(rng.choice(tree.nodes()), round(rng.uniform(0, 10), 3))]

    def clause_edit(tree):
        e = rng.choice(tree.edges())
        data = {"clauses": [(rng.random() < 0.5, rng.random() < 0.5, round(rng.uniform(0, 5), 2))]}
        return [edge_update(e, data)]

    return [
        (
            "single-edge weight (matching)",
            _edge_weighted(gen.random_attachment_tree(N, seed=SEED), SEED),
            MaxWeightMatching,
            edge_weight_edit,
        ),
        ("single-node weight (MWIS)", weighted, MaxWeightIndependentSet, node_weight_edit),
        ("single-clause edit (max-SAT)", _sat_payload(base, SEED), WeightedMaxSAT, clause_edit),
    ]


def _measure():
    rows = []
    for name, tree, make_problem, make_edit in _scenarios():
        inc = IncrementalSolver(prepare(tree), make_problem())
        chain = []
        identical = True
        scratch_runs, update_runs = [], []
        for _ in range(UPDATES):
            s_times, u_times = [], []
            for _ in range(REPEATS):
                # Interleave: one incremental application, one from-scratch
                # solve of the same updated state.  Every repeat applies a
                # *fresh* edit so each timed apply_updates is a genuine
                # dirty-chain transition — an idempotent re-apply would
                # prune after one cluster and overstate the speedup.
                ups = make_edit(tree)
                t0 = time.perf_counter()
                report = inc.apply_updates(ups)
                got = inc.as_pipeline_result()
                u_times.append(time.perf_counter() - t0)
                chain.append(report.clusters_resolved)
                t0 = time.perf_counter()
                ref = solve(tree, make_problem())
                s_times.append(time.perf_counter() - t0)
                identical = identical and (
                    got.value == ref.value
                    and got.root_label == ref.root_label
                    and got.edge_labels == ref.edge_labels
                    and got.node_labels == ref.node_labels
                )
            scratch_runs.append(min(s_times))
            update_runs.append(min(u_times))
        rows.append(
            {
                "scenario": name,
                "scratch_ms": sum(scratch_runs) / len(scratch_runs) * 1000,
                "update_ms": sum(update_runs) / len(update_runs) * 1000,
                "speedup": sum(scratch_runs) / max(sum(update_runs), 1e-12),
                "max_chain": max(chain),
                "layers": inc.hc.num_layers,
                "clusters": len(inc.hc.clusters),
                "identical": identical,
            }
        )
    return rows


def test_incremental_update_speedup(benchmark):
    rows = run_once(benchmark, _measure)
    print_table(
        f"Incremental updates vs from-scratch solve() (n={N}, random tree)",
        ["scenario", "scratch ms", "update ms", "speedup", "chain", "layers", "identical"],
        [
            (
                r["scenario"],
                f"{r['scratch_ms']:.2f}",
                f"{r['update_ms']:.3f}",
                f"{r['speedup']:.1f}x",
                f"{r['max_chain']}/{r['clusters']}",
                r["layers"],
                "yes" if r["identical"] else "NO",
            )
            for r in rows
        ],
    )
    emit_json("updates", {"n": N, "seed": SEED, "rows": rows})

    assert all(r["identical"] for r in rows), "incremental state diverged from from-scratch"
    assert all(r["max_chain"] <= r["layers"] for r in rows), "dirty chain exceeded layer count"
    if not SMOKE and N >= 10_000:
        # Acceptance bar: a single-edge weight update re-solves >= 5x faster
        # than a from-scratch solve() of the updated tree.
        edge_row = rows[0]
        assert edge_row["speedup"] >= 5.0, (
            f"single-edge update speedup regressed to {edge_row['speedup']:.2f}x"
        )
