"""Experiments S44 and MEM — high-degree handling and memory accounting.

Section 4.4/5.3: trees with degrees far above n^(delta/2) are handled by
splitting nodes into O(1)-depth auxiliary trees with tagged edges; the
optimisation problems must stay exactly correct.  The MPC model's memory
claim (Theta(n^delta) words per machine, Theta(n) in total) is checked by
reporting the peak per-machine load of the full pipeline as n grows.
"""

from repro.core.pipeline import prepare, solve_on
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import MPCSimulator
from repro.problems.max_weight_independent_set import (
    MaxWeightIndependentSet,
    sequential_max_weight_independent_set,
)
from repro.problems.min_weight_dominating_set import (
    MinWeightDominatingSet,
    sequential_min_weight_dominating_set,
)
from repro.trees import generators as gen
from repro.trees.properties import max_degree

from benchmarks.conftest import emit_json, print_table, run_once, scaled


def _high_degree():
    rows = []
    cases = {
        "star": gen.star_tree(scaled(1000, 300)),
        "two-level": gen.two_level_tree(scaled(1500, 400)),
        "broom": gen.broom_tree(scaled(1200, 300)),
    }
    for name, t0 in cases.items():
        tree = gen.with_random_weights(t0, seed=6)
        for problem_cls, reference in [
            (MaxWeightIndependentSet, sequential_max_weight_independent_set),
            (MinWeightDominatingSet, sequential_min_weight_dominating_set),
        ]:
            prepared = prepare(tree)
            res = solve_on(prepared, problem_cls())
            ref = reference(tree)
            aux = len(prepared.reduction.aux_nodes)
            ok = "ok" if abs(res.value - ref) < 1e-6 else "MISMATCH"
            rows.append(
                (
                    name,
                    problem_cls().name,
                    max_degree(tree),
                    aux,
                    f"{res.value:.3f}",
                    f"{ref:.3f}",
                    ok,
                )
            )
    return rows


def test_s44_high_degree_nodes(benchmark):
    rows = run_once(benchmark, _high_degree)
    print_table(
        "Section 4.4/5.3 — high-degree nodes via auxiliary trees",
        ["tree", "problem", "max degree", "aux nodes", "framework", "sequential", "correct"],
        rows,
    )
    emit_json("high_degree", {"rows": rows})
    assert all(r[6] == "ok" for r in rows)
    assert all(r[3] > 0 for r in rows)  # degree reduction actually triggered


def _memory_sweep():
    rows = []
    for n in scaled((250, 1000, 4000), (150, 400)):
        tree = gen.with_random_weights(gen.random_attachment_tree(n, seed=8), seed=8)
        # Capacity study: pinned to the record-level treeops backend, which
        # observes mid-flight per-machine loads natively.  The array backend
        # keeps its state driver-side and observes nothing by default; its
        # opt-in load model (MPCConfig.treeops_load_model="records") replays
        # the records path for sizing and matches these peaks exactly
        # (asserted at small n in tests/test_substrate_equivalence.py), but
        # it costs records-path time — so the capacity sweep keeps the
        # native records backend.
        sim = MPCSimulator(MPCConfig(n=n, treeops_backend="records"))
        prepared = prepare(tree, sim=sim)
        solve_on(prepared, MaxWeightIndependentSet())
        stats = prepared.sim.stats
        cap = prepared.sim.machine_capacity
        rows.append(
            (
                n,
                prepared.sim.num_machines,
                cap,
                stats.peak_machine_words,
                f"{stats.peak_machine_words / cap:.1f}x",
                stats.peak_round_recv_words,
            )
        )
    return rows


def test_memory_scaling(benchmark):
    rows = run_once(benchmark, _memory_sweep)
    print_table(
        "MPC memory — peak per-machine words vs the Theta(n^delta) capacity",
        [
            "n",
            "machines",
            "capacity (words)",
            "peak load (words)",
            "load/capacity",
            "peak recv/round",
        ],
        rows,
    )
    emit_json("memory_scaling", {"rows": rows})
    # The load/capacity ratio must stay bounded by a constant as n grows 16x
    # (constant factors of the simulator's record encoding are expected).
    ratios = [r[3] / r[2] for r in rows]
    assert max(ratios) <= 4 * min(ratios) + 8
