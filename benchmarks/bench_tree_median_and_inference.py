"""Experiments S61 and S62 — tree median (Section 6.1) and Gaussian BP (Section 6.2).

The tree median is the paper's example of a problem outside the prior work's
reach (not binary adaptable); Gaussian belief propagation demonstrates the
framework on statistical inference.  Both are checked against independent
sequential references and their round counts reported.
"""

import numpy as np
from repro.core.pipeline import solve
from repro.inference import (
    GaussianTreeInference,
    random_gaussian_tree_model,
    root_posterior_reference,
)
from repro.problems.tree_median import TreeMedian, sequential_tree_median
from repro.trees import generators as gen
from repro.trees.properties import diameter, max_degree

from benchmarks.conftest import emit_json, print_table, run_once, scaled


def _tree_median_sweep():
    rows = []
    cases = {
        "random": gen.random_attachment_tree(scaled(1000, 300), seed=1),
        "star": gen.star_tree(scaled(801, 201)),
        "spider": gen.spider_tree(scaled(1000, 300)),
        "caterpillar": gen.caterpillar_tree(scaled(1000, 300)),
    }
    for name, t0 in cases.items():
        tree = gen.with_random_leaf_values(t0, seed=2)
        res = solve(tree, TreeMedian(), degree_reduction=False)
        ref = sequential_tree_median(tree)
        exact = all(abs(res.output["medians"][v] - ref[v]) < 1e-9 for v in tree.nodes())
        rows.append(
            (
                name,
                diameter(tree),
                max_degree(tree),
                f"{res.value:.3f}",
                f"{ref[tree.root]:.3f}",
                "exact" if exact else "MISMATCH",
                res.total_rounds,
            )
        )
    return rows


def test_s61_tree_median(benchmark):
    rows = run_once(benchmark, _tree_median_sweep)
    print_table(
        "Section 6.1 — tree median (not binary adaptable; prior work cannot solve it)",
        ["tree", "D", "max deg", "framework", "sequential", "all node labels", "rounds"],
        rows,
    )
    emit_json("tree_median", {"rows": rows})
    assert all(r[5] == "exact" for r in rows)


def _inference_sweep():
    rows = []
    for name, t0, dim in [
        ("random dim=1", gen.random_attachment_tree(scaled(300, 120), seed=3), 1),
        ("binary dim=2", gen.complete_binary_tree(scaled(255, 127)), 2),
        ("caterpillar dim=1", gen.caterpillar_tree(scaled(300, 120)), 1),
    ]:
        model = random_gaussian_tree_model(t0, dim=dim, seed=4)
        res = solve(t0, GaussianTreeInference(model), degree_reduction=False)
        mean_ref, cov_ref = root_posterior_reference(model)
        err_mean = float(np.max(np.abs(res.value["mean"] - mean_ref)))
        err_cov = float(np.max(np.abs(res.value["cov"] - cov_ref)))
        rows.append((name, diameter(t0), f"{err_mean:.2e}", f"{err_cov:.2e}", res.total_rounds))
    return rows


def test_s62_gaussian_inference(benchmark):
    rows = run_once(benchmark, _inference_sweep)
    print_table(
        "Section 6.2 — Gaussian belief propagation: root posterior vs dense reference",
        ["model", "D", "max |mean err|", "max |cov err|", "rounds"],
        rows,
    )
    emit_json("gaussian_inference", {"rows": rows})
    assert all(float(r[2]) < 1e-6 and float(r[3]) < 1e-6 for r in rows)
