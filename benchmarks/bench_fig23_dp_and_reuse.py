"""Experiments F2F3 and C-REUSE — the DP passes and clustering reuse.

Figures 2 and 3 of the paper depict the bottom-up and top-down per-cluster
operations; Section 5 claims that, given the hierarchical clustering, any DP
problem is solved in O(1) rounds per layer.  Section 1.4 / the conclusions
emphasise that the clustering is computed once and reused for any problem and
any input values.  This module measures both claims.
"""

from repro.core.pipeline import prepare, solve_on
from repro.dp.engine import ROUNDS_PER_LAYER
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.problems.min_weight_dominating_set import MinWeightDominatingSet
from repro.problems.min_weight_vertex_cover import MinWeightVertexCover
from repro.problems.max_weight_matching import MaxWeightMatching
from repro.problems.subtree_aggregation import SubtreeAggregate
from repro.problems.sum_coloring import SumColoring
from repro.trees import generators as gen

from benchmarks.conftest import emit_json, print_table, run_once, scaled


def _dp_rounds_vs_n():
    rows = []
    for n in scaled((200, 800, 3200), (100, 250)):
        tree = gen.with_random_weights(gen.random_attachment_tree(n, seed=2), seed=2)
        prepared = prepare(tree)
        res = solve_on(prepared, MaxWeightIndependentSet())
        rows.append(
            (
                n,
                prepared.clustering.num_layers,
                res.rounds["dp"],
                2 * prepared.clustering.num_layers * ROUNDS_PER_LAYER,
            )
        )
    return rows


def test_fig23_dp_pass_rounds(benchmark):
    rows = run_once(benchmark, _dp_rounds_vs_n)
    print_table(
        "Figures 2-3 — DP rounds are O(1) per layer (MaxIS, random trees)",
        ["n", "layers", "measured dp rounds", "2 * layers * rounds/layer"],
        rows,
    )
    emit_json("fig23_dp_rounds", {"rows": rows})
    assert all(r[2] == r[3] for r in rows)
    # 16x more nodes: the DP round count moves only with the O(1) layer count.
    assert rows[-1][2] <= rows[0][2] + 4 * ROUNDS_PER_LAYER


def _reuse():
    tree = gen.with_random_weights(
        gen.random_attachment_tree(scaled(1500, 300), seed=5), seed=5
    )
    prepared = prepare(tree)
    problems = [
        MaxWeightIndependentSet(),
        MinWeightVertexCover(),
        MinWeightDominatingSet(),
        MaxWeightMatching(),
        SumColoring(k=3),
        SubtreeAggregate(op="sum"),
    ]
    rows = [("(build clustering)", prepared.clustering_stats.total_rounds, "-")]
    for p in problems:
        res = solve_on(prepared, p)
        rows.append((p.name, res.rounds["dp"], f"{res.value:.3f}"))
    return rows


def test_clustering_reuse(benchmark):
    rows = run_once(benchmark, _reuse)
    print_table(
        "Clustering reuse — one O(log D) preprocessing, many O(1)-round solves",
        ["step", "rounds", "value"],
        rows,
    )
    emit_json("fig23_reuse", {"rows": rows})
    build = rows[0][1]
    per_problem = [r[1] for r in rows[1:]]
    assert all(r <= build for r in per_problem)
