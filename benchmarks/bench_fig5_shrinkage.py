"""Experiment F5 — Figure 5 / Lemmas 5-7: per-iteration shrinkage.

Each pair of construction steps (indegree-zero + indegree-one) must shrink
the uncolored part of the contracted tree by a large factor, which is what
bounds the number of layers by a constant.  The benchmark reports the
shrink factors the builder recorded for several tree families.
"""

from repro.clustering.builder import build_hierarchical_clustering
from repro.clustering.degree_reduction import reduce_degrees
from repro.mpc import MPCConfig, MPCSimulator
from repro.trees import generators as gen

from benchmarks.conftest import emit_json, print_table, run_once, scaled

FAMILIES = ["path", "caterpillar", "binary", "random", "spider"]
N = scaled(3000, 500)


def _sweep():
    rows = []
    for family in FAMILIES:
        tree = gen.FAMILIES[family](N)
        sim = MPCSimulator(MPCConfig(n=N))
        red = reduce_degrees(tree, threshold=sim.config.light_threshold())
        hc = build_hierarchical_clustering(sim, red.tree)
        for entry in hc.stats["iteration_log"]:
            before, after = entry["uncolored_before"], entry["uncolored_after"]
            factor = before / max(1, after)
            rows.append((family, entry["iteration"], before, after, f"{factor:.1f}x"))
    return rows


def test_fig5_shrinkage(benchmark):
    rows = run_once(benchmark, _sweep)
    print_table(
        f"Figure 5 / Lemmas 5-7 — shrinkage of the uncolored tree per iteration (n={N})",
        ["family", "iteration", "uncolored before", "uncolored after", "shrink"],
        rows,
    )
    emit_json("fig5_shrinkage", {"n": N, "rows": rows})
    # Every family converges within a handful of iterations.
    iterations = {}
    for family, it, *_ in rows:
        iterations[family] = max(iterations.get(family, 0), it)
    assert all(v <= 8 for v in iterations.values())
    # And every iteration makes progress.
    assert all(r[3] < r[2] for r in rows)
