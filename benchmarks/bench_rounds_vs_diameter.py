"""Experiment C-RvD — the headline claim: O(log D) rounds, independent of n.

Two sweeps with maximum-weight independent set as the workload:

(a) fixed n, varying diameter — the framework's measured rounds should track
    log D while the rake-and-compress baseline's contraction phases track
    log n (flat across the sweep);
(b) fixed (small) diameter, varying n — the framework's rounds should stay
    essentially flat while the baseline's grow with log n.

Absolute round counts are implementation constants; the *shape* (who grows
with what) is the reproduced result.
"""

import math

from repro.baselines.rake_compress import RakeCompressDP, max_is_edge_problem
from repro.core.pipeline import prepare, solve_on
from repro.mpc import MPCConfig, MPCSimulator
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.trees import generators as gen
from repro.trees.properties import diameter

from benchmarks.conftest import emit_json, print_table, run_once, scaled


def _framework_rounds(tree):
    prepared = prepare(tree)
    res = solve_on(prepared, MaxWeightIndependentSet())
    return res.total_rounds, res.value


def _baseline_rounds(tree):
    sim = MPCSimulator(MPCConfig(n=tree.num_nodes))
    rc = RakeCompressDP(sim=sim, seed=7)
    value = rc.solve(tree, max_is_edge_problem(tree))
    return sim.stats.charged_rounds, rc.phases, value


def _diameter_sweep():
    """(a) fixed n = 1500, diameter varying over three orders of magnitude."""
    n = scaled(1500, 400)
    trees = {
        "broom (D~5)": gen.broom_tree(n),
        "two-level (D=4)": gen.two_level_tree(n),
        "binary (D~20)": gen.complete_binary_tree(n),
        "spider (D~77)": gen.spider_tree(n),
        "caterpillar (D~750)": gen.caterpillar_tree(n),
        "path (D=1499)": gen.path_tree(n),
    }
    rows = []
    for name, t0 in trees.items():
        tree = gen.with_random_weights(t0, seed=3)
        d = diameter(tree)
        ours, value = _framework_rounds(tree)
        base_rounds, base_phases, base_value = _baseline_rounds(tree)
        assert abs(value - base_value) < 1e-6  # both algorithms solve MaxIS exactly
        rows.append((name, n, d, round(math.log2(d + 2), 1), ours, base_rounds, base_phases))
    return rows


def _size_sweep():
    """(b) fixed diameter (brooms, D~5), n growing 16x."""
    rows = []
    # Smoke keeps the (250, 1000) prefix: below ~250 nodes the capacity
    # floors dominate the round counts and the flatness claim is meaningless.
    for n in scaled((250, 1000, 4000), (250, 1000)):
        tree = gen.with_random_weights(gen.broom_tree(n), seed=4)
        d = diameter(tree)
        ours, _ = _framework_rounds(tree)
        base_rounds, base_phases, _ = _baseline_rounds(tree)
        rows.append((n, d, ours, base_rounds, base_phases))
    return rows


def test_rounds_vs_diameter(benchmark):
    rows = run_once(benchmark, _diameter_sweep)
    print_table(
        "Rounds vs diameter at fixed n=1500 (MaxIS)",
        ["family", "n", "D", "log2 D", "framework rounds", "baseline rounds", "baseline phases"],
        rows,
    )
    emit_json("rounds_vs_diameter", {"rows": rows})
    by_d = sorted(rows, key=lambda r: r[2])
    # Framework rounds grow with the diameter: the lowest-diameter tree is
    # solved in a small fraction of the rounds the highest-diameter tree needs
    # (that ratio is the paper's O(log D) dependence; absolute constants of
    # this simulator and of the baseline's contraction are not comparable, so
    # the baseline columns are reported for shape only).
    assert by_d[0][4] < by_d[-1][4]
    assert by_d[0][4] * 2 <= by_d[-1][4]


def test_rounds_vs_size_at_fixed_diameter(benchmark):
    rows = run_once(benchmark, _size_sweep)
    print_table(
        "Rounds vs n at fixed diameter (brooms, MaxIS)",
        ["n", "D", "framework rounds", "baseline rounds", "baseline phases"],
        rows,
    )
    emit_json("rounds_vs_size", {"rows": rows})
    ours_small, ours_large = rows[0][2], rows[-1][2]
    # Framework: essentially flat while n grows 16x at fixed diameter (the
    # paper's "independent of n" claim); small additive drift comes from the
    # size-dependent light threshold of the clustering.
    assert ours_large <= 2 * ours_small + 8
