"""Experiment P — pipeline-phase profile: normalize / degree-reduce / cluster / DP.

PRs 1–2 made the DP-solve phase fast; this experiment tracks the *other*
phases so a `prepare()` regression is as visible as a kernel regression.  It
profiles the full pipeline at the acceptance size (n >= 10^4, random
attachment tree, seed 2):

* ``prepare()`` — normalization, degree reduction and the hierarchical
  clustering, measured per phase, under both treeops backends:
  ``records`` (the record-level reference path on the simulated machines)
  and ``array`` (the vectorized integer-array substrate, the default).
* the DP-solve phase — the full finite-state Table-1 suite on the prepared
  clustering, with the default (``auto`` → NumPy) backend.

Besides the timings, the harness asserts that both treeops backends produce
bit-identical clusterings and round statistics, and that the array path wins
the clustering phase by at least the acceptance factor of 5x.  Results are
written to ``BENCH_pipeline.json`` for the CI perf artifacts.

Noise model: as in bench_kernels, the repeats of the two backends are
interleaved (records, array, records, array, ...) so both sample the same
wall-clock window, and the per-phase *minimum* over the repeats estimates the
clean-machine time.
"""

import time

from repro.core.pipeline import prepare, solve_on
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import MPCSimulator
from repro.trees import generators as gen

from benchmarks.bench_kernels import PROBLEMS, _sat_payload
from benchmarks.conftest import SMOKE, emit_json, print_table, run_once, scaled

#: The acceptance regime: n >= 10^4 nodes (reduced in smoke mode).
N = scaled(10_000, 500)
SEED = 2

BACKENDS = ("records", "array")
PHASES = ("normalize", "degree_reduction", "clustering")


def _clustering_fingerprint(prep):
    hc = prep.clustering
    return (
        hc.layers,
        hc.final_cluster_id,
        {
            cid: (
                c.kind,
                c.layer,
                tuple(c.elements),
                tuple(c.internal_edges),
                c.top_element,
                c.top_node,
                c.out_edge,
                c.in_edge,
                c.hole_element,
            )
            for cid, c in hc.clusters.items()
        },
        prep.clustering_stats.rounds,
        prep.clustering_stats.charged_rounds,
        prep.clustering_stats.rounds_by_label,
        prep.clustering_stats.charged_by_label,
    )


def _measure():
    base = gen.random_attachment_tree(N, seed=SEED)
    weighted = gen.with_random_weights(base, seed=SEED)
    repeats = 1 if SMOKE else 7

    phase_runs = {b: {p: [] for p in PHASES + ("prepare_total",)} for b in BACKENDS}
    fingerprints = {}
    for _ in range(repeats):
        for backend in BACKENDS:
            sim = MPCSimulator(MPCConfig(n=N, treeops_backend=backend))
            t0 = time.perf_counter()
            prep = prepare(weighted, sim=sim)
            total = time.perf_counter() - t0
            for p in PHASES:
                phase_runs[backend][p].append(prep.timings[p])
            phase_runs[backend]["prepare_total"].append(total)
            fingerprints[backend] = _clustering_fingerprint(prep)

    identical = fingerprints["records"] == fingerprints["array"]

    # DP-solve phase: the full Table-1 suite on an array-backed preparation
    # (the clustering is backend-independent — just asserted — and reused).
    prepared = prepare(weighted)
    prepared_sat = prepare(_sat_payload(base, SEED))
    dp_runs = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for name, make in PROBLEMS:
            target = prepared_sat if "SAT" in name else prepared
            solve_on(target, make())
        dp_runs.append(time.perf_counter() - t0)

    mins = {b: {p: min(r) for p, r in phase_runs[b].items()} for b in BACKENDS}
    return mins, min(dp_runs), identical


def test_pipeline_phase_profile(benchmark):
    mins, dp_s, identical = run_once(benchmark, _measure)
    cluster_speedup = mins["records"]["clustering"] / mins["array"]["clustering"]
    prepare_speedup = mins["records"]["prepare_total"] / mins["array"]["prepare_total"]

    rows = []
    for p in PHASES + ("prepare_total",):
        rec_ms, arr_ms = mins["records"][p] * 1000, mins["array"][p] * 1000
        ratio = rec_ms / arr_ms if arr_ms > 0 else float("inf")
        rows.append((p, f"{rec_ms:.1f}", f"{arr_ms:.1f}", f"{ratio:.2f}x"))
    rows.append(("dp suite (11 problems)", "-", f"{dp_s * 1000:.1f}", "-"))
    print_table(
        f"Pipeline phases — treeops records vs array backend (n={N}, random tree)",
        ["phase", "records ms", "array ms", "speedup"],
        rows,
    )
    print(f"clustering bit-identical across backends: {'yes' if identical else 'NO'}")

    emit_json(
        "pipeline",
        {
            "n": N,
            "seed": SEED,
            "phases_ms": {b: {p: mins[b][p] * 1000 for p in mins[b]} for b in BACKENDS},
            "dp_suite_ms": dp_s * 1000,
            "clustering_speedup": cluster_speedup,
            "prepare_speedup": prepare_speedup,
            "bit_identical": identical,
        },
    )

    assert identical, "treeops backends disagree on the clustering"
    if not SMOKE and N >= 10_000:
        # Acceptance bar: the array substrate wins prepare()'s dominant phase
        # by >= 5x (the PR 2 record-path baseline was 6.7 s for the whole
        # prepare(); the array path must stay well under 1.5 s).
        assert cluster_speedup >= 5.0, f"clustering speedup regressed to {cluster_speedup:.2f}x"
        assert mins["array"]["prepare_total"] < 1.5, (
            f"prepare() at n=10^4 took {mins['array']['prepare_total']:.2f}s"
        )
