"""Experiment P — pipeline-phase profile: normalize / degree-reduce / cluster / DP.

PRs 1–2 made the DP-solve phase fast; this experiment tracks the *other*
phases so a `prepare()` regression is as visible as a kernel regression.  It
profiles the full pipeline at the acceptance size (n >= 10^4, random
attachment tree, seed 2):

* ``prepare()`` — normalization, degree reduction and the hierarchical
  clustering, measured per phase, under both treeops backends:
  ``records`` (the record-level reference path on the simulated machines)
  and ``array`` (the vectorized integer-array substrate, the default).
* the DP-solve phase — the full finite-state Table-1 suite on the prepared
  clustering, with the default (``auto`` → NumPy) backend.

Besides the timings, the harness asserts that both treeops backends produce
bit-identical clusterings and round statistics, and that the array path wins
the clustering phase by at least the acceptance factor of 5x.  Results are
written to ``BENCH_pipeline.json`` for the CI perf artifacts.

Noise model: as in bench_kernels, the repeats of the two backends are
interleaved (records, array, records, array, ...) so both sample the same
wall-clock window, and the per-phase *minimum* over the repeats estimates the
clean-machine time.
"""

import os
import time

from repro.core.pipeline import prepare, solve_on
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import MPCSimulator
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.trees import generators as gen

from benchmarks.bench_kernels import PROBLEMS, _sat_payload
from benchmarks.conftest import SMOKE, emit_json, print_table, run_once, scaled

#: The acceptance regime: n >= 10^4 nodes (reduced in smoke mode).
N = scaled(10_000, 500)
SEED = 2

BACKENDS = ("records", "array")
PHASES = ("normalize", "degree_reduction", "clustering")


def _clustering_fingerprint(prep):
    hc = prep.clustering
    return (
        hc.layers,
        hc.final_cluster_id,
        {
            cid: (
                c.kind,
                c.layer,
                tuple(c.elements),
                tuple(c.internal_edges),
                c.top_element,
                c.top_node,
                c.out_edge,
                c.in_edge,
                c.hole_element,
            )
            for cid, c in hc.clusters.items()
        },
        prep.clustering_stats.rounds,
        prep.clustering_stats.charged_rounds,
        prep.clustering_stats.rounds_by_label,
        prep.clustering_stats.charged_by_label,
    )


def _measure():
    base = gen.random_attachment_tree(N, seed=SEED)
    weighted = gen.with_random_weights(base, seed=SEED)
    repeats = 1 if SMOKE else 7

    phase_runs = {b: {p: [] for p in PHASES + ("prepare_total",)} for b in BACKENDS}
    fingerprints = {}
    for _ in range(repeats):
        for backend in BACKENDS:
            sim = MPCSimulator(MPCConfig(n=N, treeops_backend=backend))
            t0 = time.perf_counter()
            prep = prepare(weighted, sim=sim)
            total = time.perf_counter() - t0
            for p in PHASES:
                phase_runs[backend][p].append(prep.timings[p])
            phase_runs[backend]["prepare_total"].append(total)
            fingerprints[backend] = _clustering_fingerprint(prep)

    identical = fingerprints["records"] == fingerprints["array"]

    # DP-solve phase: the full Table-1 suite on an array-backed preparation
    # (the clustering is backend-independent — just asserted — and reused).
    prepared = prepare(weighted)
    prepared_sat = prepare(_sat_payload(base, SEED))
    dp_runs = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for name, make in PROBLEMS:
            target = prepared_sat if "SAT" in name else prepared
            solve_on(target, make())
        dp_runs.append(time.perf_counter() - t0)

    mins = {b: {p: min(r) for p, r in phase_runs[b].items()} for b in BACKENDS}
    return mins, min(dp_runs), identical


def test_pipeline_phase_profile(benchmark):
    mins, dp_s, identical = run_once(benchmark, _measure)
    cluster_speedup = mins["records"]["clustering"] / mins["array"]["clustering"]
    prepare_speedup = mins["records"]["prepare_total"] / mins["array"]["prepare_total"]

    rows = []
    for p in PHASES + ("prepare_total",):
        rec_ms, arr_ms = mins["records"][p] * 1000, mins["array"][p] * 1000
        ratio = rec_ms / arr_ms if arr_ms > 0 else float("inf")
        rows.append((p, f"{rec_ms:.1f}", f"{arr_ms:.1f}", f"{ratio:.2f}x"))
    rows.append(("dp suite (11 problems)", "-", f"{dp_s * 1000:.1f}", "-"))
    print_table(
        f"Pipeline phases — treeops records vs array backend (n={N}, random tree)",
        ["phase", "records ms", "array ms", "speedup"],
        rows,
    )
    print(f"clustering bit-identical across backends: {'yes' if identical else 'NO'}")

    emit_json(
        "pipeline",
        {
            "n": N,
            "seed": SEED,
            "phases_ms": {b: {p: mins[b][p] * 1000 for p in mins[b]} for b in BACKENDS},
            "dp_suite_ms": dp_s * 1000,
            "clustering_speedup": cluster_speedup,
            "prepare_speedup": prepare_speedup,
            "bit_identical": identical,
        },
    )

    assert identical, "treeops backends disagree on the clustering"
    if not SMOKE and N >= 10_000:
        # Acceptance bar: the array substrate wins prepare()'s dominant phase
        # by >= 5x (the PR 2 record-path baseline was 6.7 s for the whole
        # prepare(); the array path must stay well under 1.5 s).
        assert cluster_speedup >= 5.0, f"clustering speedup regressed to {cluster_speedup:.2f}x"
        assert mins["array"]["prepare_total"] < 1.5, (
            f"prepare() at n=10^4 took {mins['array']['prepare_total']:.2f}s"
        )


# --------------------------------------------------------------------------- #
# Experiment P2 — inline vs process execution backend
# --------------------------------------------------------------------------- #

#: Sizes for the exec-backend comparison (the acceptance regime is 10^4–10^5).
EXEC_NS = (scaled(10_000, 300), scaled(100_000, 600))
EXEC_SEED = 3
WORKER_COUNTS = (1, 2, 4)
EXEC_PHASES = PHASES + ("prepare_total", "dp_solve")


def _run_exec_pipeline(n: int, backend: str, workers=None):
    """One full pipeline run; returns (per-phase seconds, solve value)."""
    base = gen.random_attachment_tree(n, seed=EXEC_SEED)
    weighted = gen.with_random_weights(base, seed=EXEC_SEED)
    sim = MPCSimulator(MPCConfig(n=n, exec_backend=backend, exec_workers=workers))
    t0 = time.perf_counter()
    prep = prepare(weighted, sim=sim)
    prep_total = time.perf_counter() - t0
    t0 = time.perf_counter()
    res = solve_on(prep, MaxWeightIndependentSet())
    dp_s = time.perf_counter() - t0
    timings = {p: prep.timings[p] for p in PHASES}
    timings["prepare_total"] = prep_total
    timings["dp_solve"] = dp_s
    return timings, res.value


def _op_fraction(n: int):
    """Fraction of the inline run spent inside exec ops / DP layer batches.

    This is the parallelizable share: everything else — scatter/bookkeeping,
    convergence predicates, copy-backs, round accounting, clustering-layer
    construction — runs on the driver under *every* backend.  Amdahl's bound
    ``1 / (1 - f + f/W)`` on this fraction is the ceiling any worker count
    can reach, which is what makes a "driver-bound" verdict quantitative.
    """
    from repro.dp.local_solver import FiniteStateClusterSolver
    from repro.mpc.exec import base as exec_base

    counters = {"ops": 0.0, "dp": 0.0}
    real_run = exec_base.InlineArraySession.run
    real_layer = FiniteStateClusterSolver.summarize_layer

    def timed_run(self, op, **extra):
        t0 = time.perf_counter()
        real_run(self, op, **extra)
        counters["ops"] += time.perf_counter() - t0

    def timed_layer(self, ctxs):
        t0 = time.perf_counter()
        out = real_layer(self, ctxs)
        counters["dp"] += time.perf_counter() - t0
        return out

    exec_base.InlineArraySession.run = timed_run
    FiniteStateClusterSolver.summarize_layer = timed_layer
    try:
        timings, _ = _run_exec_pipeline(n, "inline")
    finally:
        exec_base.InlineArraySession.run = real_run
        FiniteStateClusterSolver.summarize_layer = real_layer
    total = timings["prepare_total"] + timings["dp_solve"]
    parallel_s = counters["ops"] + counters["dp"]
    return parallel_s / total if total > 0 else 0.0, counters, timings


def _measure_exec():
    from repro.mpc.exec.pool import ProcessBackend

    repeats = 1 if SMOKE else 3
    sizes = {}
    values_ok = True
    for n in EXEC_NS:
        runs = {"inline": []}
        inline_value = None
        for _ in range(repeats):
            timings, value = _run_exec_pipeline(n, "inline")
            runs["inline"].append(timings)
            inline_value = value
        for w in WORKER_COUNTS:
            runs[f"process-{w}"] = []
            for _ in range(repeats):
                timings, value = _run_exec_pipeline(n, "process", workers=w)
                runs[f"process-{w}"].append(timings)
                values_ok = values_ok and (value == inline_value)
        mins = {
            cfg: {p: min(t[p] for t in trials) for p in EXEC_PHASES}
            for cfg, trials in runs.items()
        }
        frac, parallel_s, inline_timings = _op_fraction(n)
        sizes[n] = {"phases_s": mins, "op_fraction": frac, "op_seconds": parallel_s}
    # The pools are process-global; stop them so later benchmark modules
    # (and the harness exit) see a quiet machine.
    for backend in list(ProcessBackend._shared.values()):
        backend.close()
    return sizes, values_ok


def test_parallel_exec_backend(benchmark):
    """Inline vs process execution across worker counts (BENCH_parallel.json).

    Acceptance: >= 1.5x end-to-end speedup at n=10^5 with >= 4 workers *or*
    a per-phase breakdown documenting why the workload is driver-bound.  The
    emitted JSON always carries the breakdown, the parallelizable op
    fraction, the Amdahl ceiling it implies, and the machine's core count,
    so the verdict is auditable either way.
    """
    sizes, values_ok = run_once(benchmark, _measure_exec)
    cpus = os.cpu_count() or 1

    report = {}
    for n, data in sizes.items():
        mins = data["phases_s"]
        inline_total = mins["inline"]["prepare_total"] + mins["inline"]["dp_solve"]
        rows = []
        speedups = {}
        for cfg in mins:
            total = mins[cfg]["prepare_total"] + mins[cfg]["dp_solve"]
            speedups[cfg] = inline_total / total if total > 0 else float("inf")
            rows.append(
                (cfg,)
                + tuple(f"{mins[cfg][p] * 1000:.1f}" for p in EXEC_PHASES)
                + (f"{speedups[cfg]:.2f}x",)
            )
        print_table(
            f"Exec backends — inline vs process pool (n={n}, {cpus} cores)",
            ["config"] + [f"{p} ms" for p in EXEC_PHASES] + ["speedup"],
            rows,
        )
        frac = data["op_fraction"]
        best_workers = max(WORKER_COUNTS)
        amdahl = 1.0 / ((1.0 - frac) + frac / min(best_workers, cpus))
        print(
            f"parallelizable op fraction: {frac:.1%}; Amdahl ceiling with "
            f"{best_workers} workers on {cpus} core(s): {amdahl:.2f}x"
        )
        report[str(n)] = {
            "phases_ms": {
                cfg: {p: mins[cfg][p] * 1000 for p in EXEC_PHASES} for cfg in mins
            },
            "speedup_vs_inline": speedups,
            "op_fraction": frac,
            "op_seconds": data["op_seconds"],
            "amdahl_ceiling": amdahl,
        }

    n_big = max(sizes)
    best = max(
        v for k, v in report[str(n_big)]["speedup_vs_inline"].items() if k != "inline"
    )
    driver_bound = report[str(n_big)]["op_fraction"] < 0.75
    if cpus >= 4 and not SMOKE:
        assert best >= 1.5 or driver_bound, (
            f"expected >=1.5x with {max(WORKER_COUNTS)} workers or a "
            f"driver-bound breakdown; got {best:.2f}x at op fraction "
            f"{report[str(n_big)]['op_fraction']:.1%}"
        )
        note = (
            "acceptance met by speedup"
            if best >= 1.5
            else "driver-bound: see op_fraction / amdahl_ceiling per size"
        )
    else:
        note = (
            f"hardware-bound: this machine exposes {cpus} CPU core(s), so the "
            f"worker pool time-shares the same core(s) as the driver and no "
            f"wall-clock speedup is attainable regardless of the op fraction; "
            f"the per-phase breakdown and Amdahl ceiling above quantify what a "
            f"multi-core machine would gain. The equivalence contract (bit-"
            f"identical values, labels and RoundStats) is asserted separately "
            f"by the test-suite."
        )
    print(f"verdict: {note}")

    emit_json(
        "parallel",
        {
            "cpu_count": cpus,
            "worker_counts": list(WORKER_COUNTS),
            "seed": EXEC_SEED,
            "sizes": report,
            "values_bit_identical": values_ok,
            "note": note,
        },
    )
    assert values_ok, "process backend value diverged from inline"
