"""Setuptools shim for environments that cannot build PEP 660 editable wheels.

``pip install -e .`` needs the ``wheel`` package to build an editable wheel
with this (offline) setuptools version; ``python setup.py develop`` and the
``src`` .pth fallback work without it.
"""
from setuptools import setup

setup()
