#!/usr/bin/env python3
"""Run mpclint without installing the package or its runtime dependencies.

``python -m repro.analysis`` executes ``repro/__init__.py``, which imports
the simulation stack (and therefore numpy).  The analyzer itself is
stdlib-only, so this wrapper registers a synthetic ``repro`` package whose
``__path__`` points at ``src/repro`` *without running its ``__init__``*,
then imports ``repro.analysis`` normally.  This is what the CI lint job
invokes on a bare interpreter; locally both entry points behave
identically:

    python tools/mpclint.py src --output mpclint-report.json
    python -m repro.analysis src          # with PYTHONPATH=src + numpy
"""

from __future__ import annotations

import sys
import types
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def _bootstrap() -> None:
    sys.path.insert(0, str(SRC))
    if "repro" not in sys.modules:
        pkg = types.ModuleType("repro")
        pkg.__path__ = [str(SRC / "repro")]  # type: ignore[attr-defined]
        pkg.__file__ = str(SRC / "repro" / "__init__.py")
        sys.modules["repro"] = pkg


def main() -> int:
    _bootstrap()
    from repro.analysis.cli import main as cli_main

    return cli_main()


if __name__ == "__main__":
    sys.exit(main())
