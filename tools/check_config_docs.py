#!/usr/bin/env python
"""Fail when docs/CONFIG.md misses an ``MPCConfig`` field.

This is now a thin shim over mpclint's ``config-docs-drift`` rule (see
``src/repro/analysis/rules/config_docs.py`` and docs/ANALYSIS.md) — kept so
existing habits and scripts (``python tools/check_config_docs.py``) keep
working.  It runs the one rule over the config module via the same
no-dependency bootstrap as ``tools/mpclint.py``; the full analyzer is
``python tools/mpclint.py src``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "tools"))

from mpclint import _bootstrap  # noqa: E402


def main() -> int:
    _bootstrap()
    from repro.analysis import run_analysis

    config_py = REPO / "src" / "repro" / "mpc" / "config.py"
    report = run_analysis([config_py], root=REPO, select=["config-docs-drift"])
    if report.findings:
        for f in report.findings:
            print(f"{f.path}:{f.line}: {f.message}")
        return 1
    print("docs/CONFIG.md documents all MPCConfig fields")
    return 0


if __name__ == "__main__":
    sys.exit(main())
