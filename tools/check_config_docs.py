#!/usr/bin/env python
"""Fail when docs/CONFIG.md misses an ``MPCConfig`` field.

docs/CONFIG.md is the reference for every deployment knob; a new field on
:class:`repro.mpc.config.MPCConfig` that is not documented there is a docs
regression.  This check runs in the CI lint job (and locally:
``python tools/check_config_docs.py``).

The config module is loaded by file path — not through the ``repro``
package — so the check needs no third-party dependencies (the lint job
installs only ruff).
"""

from __future__ import annotations

import dataclasses
import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
CONFIG_PY = REPO / "src" / "repro" / "mpc" / "config.py"
CONFIG_MD = REPO / "docs" / "CONFIG.md"


def load_mpc_config():
    spec = importlib.util.spec_from_file_location("_repro_mpc_config", CONFIG_PY)
    module = importlib.util.module_from_spec(spec)
    # @dataclass resolves string annotations through sys.modules, so the
    # module must be registered before execution.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module.MPCConfig


def main() -> int:
    doc = CONFIG_MD.read_text(encoding="utf-8")
    config = load_mpc_config()
    fields = [f.name for f in dataclasses.fields(config)]
    # A field counts as documented when it appears as inline code (the
    # reference tables and the derived-fields prose both use backticks).
    missing = [name for name in fields if f"`{name}`" not in doc]
    if missing:
        print(
            f"docs/CONFIG.md is missing MPCConfig field(s): {', '.join(missing)}\n"
            f"Document every field of {CONFIG_PY.relative_to(REPO)} in "
            f"{CONFIG_MD.relative_to(REPO)} (backticked)."
        )
        return 1
    print(f"docs/CONFIG.md documents all {len(fields)} MPCConfig fields")
    return 0


if __name__ == "__main__":
    sys.exit(main())
