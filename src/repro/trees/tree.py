"""The canonical rooted-tree object used throughout the reproduction.

The paper's *standard representation* is a rooted tree given as a list of
directed child→parent edges (Section 3).  :class:`RootedTree` wraps that
representation with parent/children indices, optional per-node and per-edge
data, and convenience constructors.  Node identifiers are arbitrary hashable
values (typically integers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

__all__ = ["RootedTree"]

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]  # (child, parent)


@dataclass
class RootedTree:
    """A rooted tree represented as child→parent edges.

    Attributes
    ----------
    root:
        The root node identifier.
    parent:
        Mapping from every node to its parent; the root maps to itself.
    node_data:
        Optional per-node payload (weights, leaf values, labels, ...).
    edge_data:
        Optional per-edge payload keyed by ``(child, parent)`` (weights,
        original/auxiliary flags, ...).
    """

    root: NodeId
    parent: Dict[NodeId, NodeId]
    node_data: Dict[NodeId, Any] = field(default_factory=dict)
    edge_data: Dict[Edge, Any] = field(default_factory=dict)

    _children: Optional[Dict[NodeId, List[NodeId]]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        root: Optional[NodeId] = None,
        node_data: Optional[Dict[NodeId, Any]] = None,
        edge_data: Optional[Dict[Edge, Any]] = None,
    ) -> "RootedTree":
        """Build a tree from directed child→parent edges.

        If ``root`` is omitted it is inferred as the unique node that appears
        as a parent but never as a child.
        """
        parent: Dict[NodeId, NodeId] = {}
        children_set = set()
        parents_set = set()
        for child, par in edges:
            if child in parent:
                raise ValueError(f"node {child!r} has two parents")
            parent[child] = par
            children_set.add(child)
            parents_set.add(par)
        if root is None:
            candidates = parents_set - children_set
            if len(candidates) != 1:
                raise ValueError(
                    f"cannot infer a unique root (candidates: {sorted(map(repr, candidates))})"
                )
            root = next(iter(candidates))
        parent[root] = root
        tree = cls(
            root=root,
            parent=parent,
            node_data=dict(node_data or {}),
            edge_data=dict(edge_data or {}),
        )
        tree.validate()
        return tree

    @classmethod
    def from_parent_map(
        cls,
        parent: Dict[NodeId, NodeId],
        root: Optional[NodeId] = None,
        node_data: Optional[Dict[NodeId, Any]] = None,
        edge_data: Optional[Dict[Edge, Any]] = None,
    ) -> "RootedTree":
        """Build a tree from a parent map (root maps to itself or is given)."""
        parent = dict(parent)
        if root is None:
            roots = [v for v, p in parent.items() if p == v]
            if len(roots) != 1:
                raise ValueError("parent map must contain exactly one self-loop root")
            root = roots[0]
        parent[root] = root
        tree = cls(
            root=root,
            parent=parent,
            node_data=dict(node_data or {}),
            edge_data=dict(edge_data or {}),
        )
        tree.validate()
        return tree

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    def nodes(self) -> List[NodeId]:
        return list(self.parent.keys())

    def edges(self) -> List[Edge]:
        """All directed child→parent edges (excluding the root self-loop)."""
        return [(v, p) for v, p in self.parent.items() if v != self.root]

    def children(self, v: NodeId) -> List[NodeId]:
        return self.children_map().get(v, [])

    def children_map(self) -> Dict[NodeId, List[NodeId]]:
        if self._children is None:
            cm: Dict[NodeId, List[NodeId]] = {v: [] for v in self.parent}
            for v, p in self.parent.items():
                if v != self.root:
                    cm[p].append(v)
            # Deterministic order.
            for v in cm:
                cm[v].sort(key=lambda x: (str(type(x)), str(x)))
            self._children = cm
        return self._children

    def is_leaf(self, v: NodeId) -> bool:
        return len(self.children(v)) == 0

    def leaves(self) -> List[NodeId]:
        return [v for v in self.parent if self.is_leaf(v)]

    def degree(self, v: NodeId) -> int:
        """Undirected degree of ``v`` in the tree."""
        d = len(self.children(v))
        if v != self.root:
            d += 1
        return d

    def weight(self, v: NodeId, default: float = 0.0) -> float:
        """Numeric node payload, defaulting to ``default``."""
        val = self.node_data.get(v, default)
        if isinstance(val, (int, float)):
            return float(val)
        return default

    # ------------------------------------------------------------------ #
    # Traversals
    # ------------------------------------------------------------------ #

    def bfs_order(self) -> List[NodeId]:
        """Nodes in breadth-first order from the root (iterative)."""
        order = [self.root]
        cm = self.children_map()
        i = 0
        while i < len(order):
            order.extend(cm[order[i]])
            i += 1
        return order

    def dfs_order(self) -> List[NodeId]:
        """Nodes in depth-first (preorder) order from the root (iterative)."""
        cm = self.children_map()
        order: List[NodeId] = []
        stack = [self.root]
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(reversed(cm[v]))
        return order

    def postorder(self) -> List[NodeId]:
        """Nodes in post-order (children before parents), iterative."""
        return list(reversed(self.dfs_order_children_first()))

    def dfs_order_children_first(self) -> List[NodeId]:
        """Reverse post-order helper: parents before children, DFS-consistent."""
        cm = self.children_map()
        order: List[NodeId] = []
        stack = [self.root]
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(cm[v])
        return order

    def depths(self) -> Dict[NodeId, int]:
        """Depth of every node (root has depth 0), computed iteratively."""
        cm = self.children_map()
        depth = {self.root: 0}
        stack = [self.root]
        while stack:
            v = stack.pop()
            for c in cm[v]:
                depth[c] = depth[v] + 1
                stack.append(c)
        return depth

    def subtree_sizes(self) -> Dict[NodeId, int]:
        """Size of the subtree rooted at every node, computed iteratively."""
        sizes = {v: 1 for v in self.parent}
        for v in self.postorder():
            if v != self.root:
                sizes[self.parent[v]] += sizes[v]
        return sizes

    # ------------------------------------------------------------------ #
    # Mutation-free derivations
    # ------------------------------------------------------------------ #

    def with_node_data(self, node_data: Dict[NodeId, Any]) -> "RootedTree":
        """A copy of this tree with different node payloads."""
        return RootedTree(
            root=self.root,
            parent=dict(self.parent),
            node_data=dict(node_data),
            edge_data=dict(self.edge_data),
        )

    def relabeled(self) -> Tuple["RootedTree", Dict[NodeId, int]]:
        """A copy with nodes relabeled 0..n-1 in BFS order; returns the map."""
        order = self.bfs_order()
        mapping = {v: i for i, v in enumerate(order)}
        parent = {mapping[v]: mapping[p] for v, p in self.parent.items()}
        node_data = {mapping[v]: d for v, d in self.node_data.items()}
        edge_data = {
            (mapping[c], mapping[p]): d for (c, p), d in self.edge_data.items()
        }
        return (
            RootedTree(
                root=mapping[self.root],
                parent=parent,
                node_data=node_data,
                edge_data=edge_data,
            ),
            mapping,
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise ``ValueError`` if the structure is not a rooted tree."""
        if self.root not in self.parent:
            raise ValueError("root is not a node of the tree")
        if self.parent[self.root] != self.root:
            raise ValueError("root must be its own parent")
        # Every node must reach the root without cycles.
        seen_ok: set = {self.root}
        for v in self.parent:
            path = []
            u = v
            while u not in seen_ok:
                path.append(u)
                if u not in self.parent:
                    raise ValueError(f"parent chain leaves the node set at {u!r}")
                nxt = self.parent[u]
                if nxt == u and u != self.root:
                    raise ValueError(f"non-root self-loop at {u!r}")
                if nxt in path:
                    raise ValueError(f"cycle detected through {u!r}")
                u = nxt
            seen_ok.update(path)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.parent)

    def __contains__(self, v: NodeId) -> bool:
        return v in self.parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RootedTree(n={self.num_nodes}, root={self.root!r})"
