"""Deterministic generators for the tree families used in tests and benches.

The paper's round bound O(log D) is interesting precisely because different
tree families decouple the diameter D from the size n:

* **paths** maximise D (D = n - 1),
* **stars** and **brooms** minimise D at arbitrary n (D = 2 resp. O(1)),
* **balanced k-ary trees** give D = Θ(log_k n),
* **caterpillars** and **spiders** interpolate,
* **random attachment trees** give the "typical" shape.

All generators are deterministic given their arguments (randomised ones take
an explicit seed) and return :class:`~repro.trees.tree.RootedTree` objects
with integer node ids ``0..n-1`` and root ``0``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.trees.tree import RootedTree

__all__ = [
    "path_tree",
    "star_tree",
    "broom_tree",
    "caterpillar_tree",
    "balanced_kary_tree",
    "spider_tree",
    "random_attachment_tree",
    "random_recursive_tree",
    "complete_binary_tree",
    "two_level_tree",
    "with_random_weights",
    "with_random_leaf_values",
    "FAMILIES",
]


def path_tree(n: int) -> RootedTree:
    """A path 0 - 1 - ... - (n-1) rooted at 0 (diameter n - 1)."""
    if n <= 0:
        raise ValueError("n must be positive")
    parent = {0: 0}
    for v in range(1, n):
        parent[v] = v - 1
    return RootedTree.from_parent_map(parent, root=0)


def star_tree(n: int) -> RootedTree:
    """A star with centre 0 and n - 1 leaves (diameter 2)."""
    if n <= 0:
        raise ValueError("n must be positive")
    parent = {0: 0}
    for v in range(1, n):
        parent[v] = 0
    return RootedTree.from_parent_map(parent, root=0)


def broom_tree(n: int, handle_length: int = 4) -> RootedTree:
    """A path of ``handle_length`` nodes whose last node carries all remaining
    nodes as leaves; diameter ``handle_length + 1`` independent of n."""
    if n <= 0:
        raise ValueError("n must be positive")
    handle_length = max(1, min(handle_length, n))
    parent = {0: 0}
    for v in range(1, handle_length):
        parent[v] = v - 1
    for v in range(handle_length, n):
        parent[v] = handle_length - 1
    return RootedTree.from_parent_map(parent, root=0)


def caterpillar_tree(n: int, spine_fraction: float = 0.5) -> RootedTree:
    """A spine path with leaves distributed evenly along it."""
    if n <= 0:
        raise ValueError("n must be positive")
    spine_len = max(1, int(round(n * spine_fraction)))
    spine_len = min(spine_len, n)
    parent = {0: 0}
    for v in range(1, spine_len):
        parent[v] = v - 1
    for i, v in enumerate(range(spine_len, n)):
        parent[v] = i % spine_len
    return RootedTree.from_parent_map(parent, root=0)


def balanced_kary_tree(n: int, k: int = 2) -> RootedTree:
    """A complete k-ary tree on n nodes (heap numbering); diameter Θ(log_k n)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if k < 2:
        raise ValueError("k must be at least 2")
    parent = {0: 0}
    for v in range(1, n):
        parent[v] = (v - 1) // k
    return RootedTree.from_parent_map(parent, root=0)


def complete_binary_tree(n: int) -> RootedTree:
    """A complete binary tree on n nodes."""
    return balanced_kary_tree(n, k=2)


def spider_tree(n: int, legs: Optional[int] = None) -> RootedTree:
    """A spider: ``legs`` equal-length paths hanging off the root."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return path_tree(1)
    if legs is None:
        legs = max(1, int(round((n - 1) ** 0.5)))
    legs = max(1, min(legs, n - 1))
    parent = {0: 0}
    v = 1
    leg_tips = []
    for _ in range(legs):
        parent[v] = 0
        leg_tips.append(v)
        v += 1
        if v >= n:
            break
    i = 0
    while v < n:
        parent[v] = leg_tips[i % len(leg_tips)]
        leg_tips[i % len(leg_tips)] = v
        v += 1
        i += 1
    return RootedTree.from_parent_map(parent, root=0)


def two_level_tree(n: int, top_degree: Optional[int] = None) -> RootedTree:
    """A depth-2 tree: the root has ``top_degree`` children, each of which
    carries an equal share of the remaining nodes as leaves.

    Used to exercise the high-degree handling: degrees are Θ(sqrt(n)) while
    the diameter is 4.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if n <= 2:
        return path_tree(n)
    if top_degree is None:
        top_degree = max(1, int(round((n - 1) ** 0.5)))
    top_degree = max(1, min(top_degree, n - 1))
    parent = {0: 0}
    mids = []
    v = 1
    for _ in range(top_degree):
        if v >= n:
            break
        parent[v] = 0
        mids.append(v)
        v += 1
    i = 0
    while v < n:
        parent[v] = mids[i % len(mids)]
        v += 1
        i += 1
    return RootedTree.from_parent_map(parent, root=0)


def random_attachment_tree(n: int, seed: int = 0) -> RootedTree:
    """Each node attaches to a uniformly random earlier node (random recursive
    tree); expected diameter Θ(log n)."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    parent = {0: 0}
    for v in range(1, n):
        parent[v] = rng.randrange(v)
    return RootedTree.from_parent_map(parent, root=0)


def random_recursive_tree(n: int, seed: int = 0, bias: float = 0.0) -> RootedTree:
    """Random recursive tree with optional bias towards deeper attachments.

    ``bias = 0`` is the uniform random recursive tree; ``bias -> 1`` attaches
    preferentially to the most recently added node, approaching a path.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not (0.0 <= bias <= 1.0):
        raise ValueError("bias must lie in [0, 1]")
    rng = random.Random(seed)
    parent = {0: 0}
    for v in range(1, n):
        if v == 1 or rng.random() > bias:
            parent[v] = rng.randrange(v)
        else:
            parent[v] = v - 1
    return RootedTree.from_parent_map(parent, root=0)


def with_random_weights(
    tree: RootedTree, seed: int = 0, low: float = 0.0, high: float = 10.0
) -> RootedTree:
    """Attach independent uniform node weights (used by the optimisation problems)."""
    rng = random.Random(seed)
    data = {v: round(rng.uniform(low, high), 3) for v in tree.nodes()}
    return tree.with_node_data(data)


def with_random_leaf_values(
    tree: RootedTree, seed: int = 0, low: float = -100.0, high: float = 100.0
) -> RootedTree:
    """Attach values to the leaves only (used by tree median / aggregation)."""
    rng = random.Random(seed)
    data = {v: round(rng.uniform(low, high), 3) for v in tree.leaves()}
    return tree.with_node_data(data)


#: Named generators used by parameterised tests and benchmark sweeps.
FAMILIES: Dict[str, Callable[[int], RootedTree]] = {
    "path": path_tree,
    "star": star_tree,
    "broom": broom_tree,
    "caterpillar": caterpillar_tree,
    "binary": complete_binary_tree,
    "4-ary": lambda n: balanced_kary_tree(n, k=4),
    "spider": spider_tree,
    "two-level": two_level_tree,
    "random": random_attachment_tree,
}
