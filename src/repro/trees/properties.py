"""Host-side reference computations of tree properties.

These are single-machine implementations used as ground truth by tests and
as inputs to benchmark reporting (e.g. the diameter D that the paper's round
bound O(log D) refers to).  They are deliberately simple and iterative (no
recursion, so deep paths do not hit Python's recursion limit).
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.trees.tree import RootedTree

__all__ = [
    "diameter",
    "height",
    "max_degree",
    "degree_histogram",
    "subtree_aggregate",
    "tree_summary",
]


def height(tree: RootedTree) -> int:
    """Height of the tree (maximum depth of any node)."""
    depths = tree.depths()
    return max(depths.values()) if depths else 0


def diameter(tree: RootedTree) -> int:
    """Diameter of the tree in edges (longest path between any two nodes).

    Computed bottom-up: for every node combine the two largest child heights.
    """
    cm = tree.children_map()
    down: Dict[Hashable, int] = {v: 0 for v in tree.nodes()}
    best = 0
    for v in tree.postorder():
        kids = cm[v]
        top_two = [0, 0]
        for c in kids:
            h = down[c] + 1
            if h > top_two[0]:
                top_two = [h, top_two[0]]
            elif h > top_two[1]:
                top_two[1] = h
        down[v] = top_two[0]
        best = max(best, top_two[0] + top_two[1])
    return best


def max_degree(tree: RootedTree) -> int:
    """Maximum undirected degree over all nodes."""
    return max((tree.degree(v) for v in tree.nodes()), default=0)


def degree_histogram(tree: RootedTree) -> Dict[int, int]:
    """Histogram of undirected degrees."""
    hist: Dict[int, int] = {}
    for v in tree.nodes():
        d = tree.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def subtree_aggregate(tree: RootedTree, op: str = "sum") -> Dict[Hashable, float]:
    """Per-subtree aggregate of the numeric node data (reference implementation).

    ``op`` is one of ``"sum"``, ``"min"``, ``"max"``; missing node data counts
    as 0 for ``sum`` and is skipped for ``min``/``max`` (a node with no data
    anywhere in its subtree gets ``+inf``/``-inf`` respectively).
    """
    if op not in ("sum", "min", "max"):
        raise ValueError(f"unsupported op {op!r}")
    vals: Dict[Hashable, float] = {}
    for v in tree.postorder():
        if op == "sum":
            acc = float(tree.node_data.get(v, 0.0) or 0.0)
            for c in tree.children(v):
                acc += vals[c]
        else:
            candidates: List[float] = []
            if v in tree.node_data and isinstance(tree.node_data[v], (int, float)):
                candidates.append(float(tree.node_data[v]))
            for c in tree.children(v):
                candidates.append(vals[c])
            if not candidates:
                acc = float("inf") if op == "min" else float("-inf")
            else:
                acc = min(candidates) if op == "min" else max(candidates)
        vals[v] = acc
    return vals


def tree_summary(tree: RootedTree) -> Dict[str, float]:
    """Small dictionary of structural statistics used in benchmark reports."""
    return {
        "n": tree.num_nodes,
        "height": height(tree),
        "diameter": diameter(tree),
        "max_degree": max_degree(tree),
        "leaves": len(tree.leaves()),
    }
