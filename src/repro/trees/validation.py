"""Structural validators for trees and edge lists.

Used by the representation converters (to reject malformed inputs early with
informative errors) and by property-based tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.trees.tree import RootedTree

__all__ = [
    "is_connected_tree_edge_list",
    "check_rooted_tree",
    "assert_same_tree",
]


def is_connected_tree_edge_list(edges: Sequence[Tuple[Hashable, Hashable]]) -> bool:
    """True iff the undirected edge list forms a single connected acyclic graph."""
    if not edges:
        return False
    adj: Dict[Hashable, List[Hashable]] = {}
    for a, b in edges:
        if a == b:
            return False
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, []).append(a)
    n = len(adj)
    if len(edges) != n - 1:
        return False
    # Connectivity check by BFS.
    start = next(iter(adj))
    seen = {start}
    frontier = [start]
    while frontier:
        nxt = []
        for u in frontier:
            for w in adj[u]:
                if w not in seen:
                    seen.add(w)
                    nxt.append(w)
        frontier = nxt
    return len(seen) == n


def check_rooted_tree(tree: RootedTree) -> None:
    """Raise ``ValueError`` if ``tree`` violates the rooted-tree invariants."""
    tree.validate()
    # children_map consistency
    cm = tree.children_map()
    for v, kids in cm.items():
        for c in kids:
            if tree.parent[c] != v:
                raise ValueError(f"children map inconsistent at {v!r} -> {c!r}")
    # Node count consistency: edges = nodes - 1
    if len(tree.edges()) != tree.num_nodes - 1:
        raise ValueError("edge count does not equal node count minus one")


def assert_same_tree(a: RootedTree, b: RootedTree) -> None:
    """Raise ``AssertionError`` unless both trees have identical structure."""
    if a.root != b.root:
        raise AssertionError(f"roots differ: {a.root!r} vs {b.root!r}")
    if set(a.nodes()) != set(b.nodes()):
        raise AssertionError("node sets differ")
    for v in a.nodes():
        if a.parent[v] != b.parent[v]:
            raise AssertionError(
                f"parent of {v!r} differs: {a.parent[v]!r} vs {b.parent[v]!r}"
            )
