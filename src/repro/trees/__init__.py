"""Tree data structures, generators and property helpers.

Trees are the input domain of the paper.  This package provides:

* :class:`~repro.trees.tree.RootedTree` — the canonical in-memory tree object
  (parent pointers, children lists, optional node/edge data),
* :mod:`~repro.trees.generators` — deterministic generators for the tree
  families used throughout the tests and benchmarks (paths, stars, brooms,
  caterpillars, balanced k-ary trees, random attachment trees, spiders),
* :mod:`~repro.trees.properties` — diameter, depth, subtree sizes and degree
  statistics (host-side reference implementations),
* :mod:`~repro.trees.validation` — structural validators.
"""

from repro.trees.tree import RootedTree
from repro.trees import generators, properties, validation

__all__ = ["RootedTree", "generators", "properties", "validation"]
