"""Subtree aggregation and other accumulation problems (Table 1, Section 6.3).

* :class:`SubtreeAggregate` — the sum, minimum or maximum of the input labels
  in each subtree (the paper's generalisation of prefix sums to trees).
* :class:`SubtreeSize` — subtree sizes (sum with every node counting 1);
  needed by the DFS-traversal export of Section 6.3.
* :class:`NodeDepth` — a downward accumulation computing every node's depth;
  needed by the BFS-traversal export of Section 6.3.
* :class:`RootToNodeSum` — root-to-node prefix sums (downward accumulation).

The indegree-one cluster summaries are O(1)-word functions: affine maps
``x -> x + c`` for sums, cap maps ``x -> op(x, c)`` for min/max.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.dp.accumulation import DownwardAccumulationDP, UpwardAccumulationDP
from repro.dp.problem import EdgeInfo, NodeInput

__all__ = ["SubtreeAggregate", "SubtreeSize", "NodeDepth", "RootToNodeSum"]


class SubtreeAggregate(UpwardAccumulationDP):
    """Per-subtree sum / min / max of the numeric node inputs."""

    def __init__(self, op: str = "sum", count_nodes_without_data: bool = True):
        if op not in ("sum", "min", "max"):
            raise ValueError(f"unsupported op {op!r}")
        self.op = op
        self.count_missing = count_nodes_without_data
        self.name = f"subtree {op}"

    # -- values -------------------------------------------------------------- #

    def _own(self, v: NodeInput) -> Optional[float]:
        if v.is_auxiliary:
            return None
        if isinstance(v.data, (int, float)) and not isinstance(v.data, bool):
            return float(v.data)
        if self.op == "sum" and self.count_missing:
            return 0.0
        return None

    def value_of(self, v: NodeInput, child_values: List[Any]) -> Any:
        vals = [x for x in child_values]
        own = self._own(v)
        if own is not None:
            vals.append(own)
        if self.op == "sum":
            return float(sum(vals))
        if not vals:
            return float("inf") if self.op == "min" else float("-inf")
        return float(min(vals) if self.op == "min" else max(vals))

    # -- O(1)-word function algebra ------------------------------------------ #
    # sum: f(x) = x + c          represented as ("add", c)
    # min: f(x) = min(x, c)      represented as ("cap", c)
    # max: f(x) = max(x, c)      represented as ("cap", c)

    def partial_function(self, v: NodeInput, known_child_values: List[Any]) -> Any:
        rest = self.value_of(v, list(known_child_values))
        if self.op == "sum":
            return ("add", rest)
        return ("cap", rest)

    def apply(self, fn: Any, x: Any) -> Any:
        kind, c = fn
        if kind == "add":
            return x + c
        if self.op == "min":
            return min(x, c)
        return max(x, c)

    def compose(self, outer: Any, inner: Any) -> Any:
        ko, co = outer
        ki, ci = inner
        if self.op == "sum":
            return ("add", co + ci)
        # outer(inner(x)) = op(op(x, ci), co) = op(x, op(ci, co))
        return ("cap", min(ci, co) if self.op == "min" else max(ci, co))

    def extract_solution(self, tree, node_values, root_value):
        clean = {v: x for v, x in node_values.items() if not _is_aux(v)}
        return {"subtree_values": clean, "root_value": root_value, "op": self.op}


class SubtreeSize(SubtreeAggregate):
    """Size of every subtree (every original node counts one)."""

    def __init__(self) -> None:
        super().__init__(op="sum")
        self.name = "subtree size"

    def _own(self, v: NodeInput) -> Optional[float]:
        return None if v.is_auxiliary else 1.0


class NodeDepth(DownwardAccumulationDP):
    """Depth of every node (root = 0), counting original edges only."""

    name = "node depth"

    def root_seed(self) -> Any:
        return -1.0

    def down_function(self, v: NodeInput, edge: Optional[EdgeInfo]) -> Any:
        # value(v) = value(parent) + 1, except that auxiliary edges do not add
        # depth (an auxiliary node sits at its original node's depth).
        step = 0.0 if (edge is not None and edge.is_auxiliary) else 1.0
        return ("add", step)

    def apply(self, fn: Any, x: Any) -> Any:
        return x + fn[1]

    def compose(self, outer: Any, inner: Any) -> Any:
        return ("add", outer[1] + inner[1])

    def extract_solution(self, tree, node_values, root_value):
        clean = {v: x for v, x in node_values.items() if not _is_aux(v)}
        return {"depths": clean, "root_value": root_value}


class RootToNodeSum(DownwardAccumulationDP):
    """Sum of the numeric inputs on the path from the root to every node."""

    name = "root-to-node prefix sum"

    def root_seed(self) -> Any:
        return 0.0

    def down_function(self, v: NodeInput, edge: Optional[EdgeInfo]) -> Any:
        own = 0.0
        if not v.is_auxiliary and isinstance(v.data, (int, float)) and not isinstance(v.data, bool):
            own = float(v.data)
        return ("add", own)

    def apply(self, fn: Any, x: Any) -> Any:
        return x + fn[1]

    def compose(self, outer: Any, inner: Any) -> Any:
        return ("add", outer[1] + inner[1])

    def extract_solution(self, tree, node_values, root_value):
        clean = {v: x for v, x in node_values.items() if not _is_aux(v)}
        return {"prefix_sums": clean, "root_value": root_value}


def _is_aux(v) -> bool:
    return isinstance(v, tuple) and len(v) == 3 and v[0] == "aux"
