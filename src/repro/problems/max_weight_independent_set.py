"""Maximum-weight independent set in trees (the paper's running example, §1.6.1).

Every node has a nonnegative weight; find the heaviest set of nodes no two of
which are adjacent.

DP formulation (exactly the paper's): the label of the edge ``(u, v)``
indicates whether ``u`` is in the set; the summary of an indegree-zero
cluster is the pair (best weight with the top node in the set, best weight
with it out), and the summary of an indegree-one cluster is the 2×2 matrix
over (top in/out, below in/out) — both produced automatically by the generic
finite-state solver.

High-degree handling (Section 5.3): auxiliary edges force equality (all
copies of a split node make the same choice) and auxiliary nodes have zero
weight, so the optimum is unchanged.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import MAX_PLUS
from repro.trees.tree import RootedTree

__all__ = [
    "MaxWeightIndependentSet",
    "independent_set_weight",
    "is_independent_set",
    "sequential_max_weight_independent_set",
]

IN = "in"
OUT = "out"

# Accumulator states: what the absorbed children allow the node itself to be.
_FREE = "free"
_MUST_IN = "must-in"
_MUST_OUT = "must-out"


class MaxWeightIndependentSet(FiniteStateDP):
    """Maximum-weight independent set as a finite-state DP."""

    states = (IN, OUT)
    acc_states = (_FREE, _MUST_IN, _MUST_OUT)
    semiring = MAX_PLUS
    name = "maximum-weight independent set"

    def init_key(self, v: NodeInput):
        return ()

    def transition_key(self, v: NodeInput, edge: EdgeInfo):
        return (edge.is_auxiliary,)

    def finalize_key(self, v: NodeInput):
        return (v.is_auxiliary, v.weight(0.0))

    def finalize_affine_key(self, v: NodeInput):
        return ((v.is_auxiliary,), 0.0 if v.is_auxiliary else v.weight(0.0))

    def finalize_affine_probe(self, v: NodeInput, w: float) -> NodeInput:
        return NodeInput(node=v.node, data=w, is_auxiliary=v.is_auxiliary)

    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, float]]:
        yield (_FREE, 0.0)

    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, float]]:
        if edge.is_auxiliary:
            # Auxiliary edges force equal choices (Section 5.3): all copies of
            # a split high-degree node make the same decision.
            need = _MUST_IN if child_state == IN else _MUST_OUT
        else:
            # Independent set constraint: an IN child forbids the node itself
            # from being IN; an OUT child imposes nothing.
            need = _MUST_OUT if child_state == IN else None
        if need is None:
            yield (acc, 0.0)
        elif acc == _FREE or acc == need:
            yield (need, 0.0)
        # otherwise the combination is infeasible: yield nothing

    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, float]]:
        w = 0.0 if v.is_auxiliary else v.weight(0.0)
        if acc in (_FREE, _MUST_IN):
            yield (IN, w)
        if acc in (_FREE, _MUST_OUT):
            yield (OUT, 0.0)

    def extract_solution(self, tree, node_states, value):
        chosen = sorted(
            (v for v, s in node_states.items() if s == IN and not _is_aux(v)),
            key=lambda x: (str(type(x)), str(x)),
        )
        return {"independent_set": chosen, "weight": value}


def _is_aux(v) -> bool:
    return isinstance(v, tuple) and len(v) == 3 and v[0] == "aux"


# --------------------------------------------------------------------------- #
# Independent reference helpers (used by tests and benchmarks)
# --------------------------------------------------------------------------- #


def is_independent_set(tree: RootedTree, chosen) -> bool:
    """True iff no tree edge has both endpoints chosen."""
    chosen_set = set(chosen)
    return all(not (c in chosen_set and p in chosen_set) for c, p in tree.edges())


def independent_set_weight(tree: RootedTree, chosen) -> float:
    """Total weight of the chosen nodes."""
    return sum(tree.weight(v) for v in chosen)


def sequential_max_weight_independent_set(tree: RootedTree) -> float:
    """Textbook two-state bottom-up DP (independent of the framework code)."""
    take: Dict[Hashable, float] = {}
    skip: Dict[Hashable, float] = {}
    for v in tree.postorder():
        t = tree.weight(v)
        s = 0.0
        for c in tree.children(v):
            t += skip[c]
            s += max(take[c], skip[c])
        take[v], skip[v] = t, s
    return max(take[tree.root], skip[tree.root])
