"""Evaluating arithmetic expressions given as trees (Table 1).

The input tree is an expression tree: leaves carry numeric constants
(``node_data[v]`` is a number) and internal nodes carry an operator
(``node_data[v] = {"op": "+"}`` or ``{"op": "*"}``).  The framework evaluates
the expression bottom-up; the indegree-one cluster summary is an affine map
``x -> a*x + b`` (closed under composition for +/* expression trees — the
classical tree-contraction algebra).

Two practical notes, documented in DESIGN.md:

* values can grow with the input, which would violate the O(1)-word table
  requirement for adversarial inputs; evaluation is therefore performed in
  Python floats (optionally modulo a prime via ``modulus=``),
* only commutative operators are supported (the accumulation interface does
  not order children).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

from repro.dp.accumulation import UpwardAccumulationDP
from repro.dp.problem import NodeInput
from repro.trees.tree import RootedTree

__all__ = ["ArithmeticExpressionEvaluation", "evaluate_expression_tree"]


class ArithmeticExpressionEvaluation(UpwardAccumulationDP):
    """Evaluate a ``+``/``*`` expression tree."""

    name = "arithmetic expression evaluation"

    def __init__(self, modulus: Optional[int] = None):
        self.modulus = modulus

    def _reduce(self, x: Any) -> Any:
        if self.modulus is not None:
            return x % self.modulus
        return x

    def _op_of(self, v: NodeInput) -> Optional[str]:
        if isinstance(v.data, dict) and "op" in v.data:
            return v.data["op"]
        return None

    def _const_of(self, v: NodeInput) -> Any:
        if isinstance(v.data, (int, float)) and not isinstance(v.data, bool):
            return v.data
        return 0

    def value_of(self, v: NodeInput, child_values: List[Any]) -> Any:
        op = self._op_of(v)
        if op is None and not child_values:
            return self._reduce(self._const_of(v))
        if v.is_auxiliary:
            op = "+" if op is None else op
        if op == "+" or (op is None and child_values):
            return self._reduce(sum(child_values))
        if op == "*":
            acc = 1
            for x in child_values:
                acc = self._reduce(acc * x)
            return acc
        raise ValueError(f"unsupported operator {op!r} at node {v.node!r}")

    # Affine function algebra: ("affine", a, b) represents x -> a*x + b.

    def partial_function(self, v: NodeInput, known_child_values: List[Any]) -> Any:
        op = self._op_of(v)
        if v.is_auxiliary and op is None:
            op = "+"
        if op == "+" or op is None:
            return ("affine", 1, self._reduce(sum(known_child_values)))
        if op == "*":
            acc = 1
            for x in known_child_values:
                acc = self._reduce(acc * x)
            return ("affine", acc, 0)
        raise ValueError(f"unsupported operator {op!r} at node {v.node!r}")

    def apply(self, fn: Any, x: Any) -> Any:
        _, a, b = fn
        return self._reduce(a * x + b)

    def compose(self, outer: Any, inner: Any) -> Any:
        _, a1, b1 = outer
        _, a2, b2 = inner
        return ("affine", self._reduce(a1 * a2), self._reduce(a1 * b2 + b1))

    def extract_solution(self, tree, node_values, root_value):
        return {"value": root_value, "node_values": node_values}


def evaluate_expression_tree(tree: RootedTree, modulus: Optional[int] = None) -> Any:
    """Reference sequential evaluation of the expression tree."""
    vals: Dict[Hashable, Any] = {}
    for v in tree.postorder():
        data = tree.node_data.get(v)
        kids = tree.children(v)
        if not kids:
            vals[v] = data if isinstance(data, (int, float)) else 0
        else:
            op = data.get("op") if isinstance(data, dict) else "+"
            if op == "+":
                vals[v] = sum(vals[c] for c in kids)
            elif op == "*":
                acc = 1
                for c in kids:
                    acc = acc * vals[c]
                    if modulus is not None:
                        acc %= modulus
                vals[v] = acc
            else:
                raise ValueError(f"unsupported operator {op!r}")
        if modulus is not None:
            vals[v] %= modulus
    return vals[tree.root]
