"""Maximal independent set (an LCL problem, Table 1 — also solvable by prior work).

Find an independent set that is *maximal*: every node outside the set has a
neighbour inside it.  The three states mirror the dominating-set structure:

* ``in``       — in the set (no neighbour may be in),
* ``out-sat``  — outside, already covered by a child in the set,
* ``out-need`` — outside, not covered from below (the parent must be in).

Any locally consistent labelling is a valid maximal independent set; the
semiring value is 0/-inf feasibility (plus, optionally, node weights so the
solver prefers heavier maximal sets — set ``prefer_weight=True``).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import MAX_PLUS
from repro.trees.tree import RootedTree

__all__ = ["MaximalIndependentSet", "is_maximal_independent_set"]

IN = "in"
OUT_SAT = "out-sat"
OUT_NEED = "out-need"

_FREE = "free"
_MUST_IN = "must-in"
_MUST_OUT = "must-out"


class MaximalIndependentSet(FiniteStateDP):
    """Maximal independent set as an LCL-style finite-state DP."""

    states = (IN, OUT_SAT, OUT_NEED)
    #: (requirement, covered_from_below) pairs.
    acc_states = tuple(
        (req, cov) for req in (_FREE, _MUST_IN, _MUST_OUT) for cov in (False, True)
    )
    semiring = MAX_PLUS
    name = "maximal independent set"

    def __init__(self, prefer_weight: bool = False):
        self.prefer_weight = prefer_weight

    def init_key(self, v: NodeInput):
        return ()

    def transition_key(self, v: NodeInput, edge: EdgeInfo):
        return (edge.is_auxiliary,)

    def finalize_key(self, v: NodeInput):
        if self.prefer_weight and not v.is_auxiliary:
            return (False, v.weight(0.0))
        return (v.is_auxiliary, 0.0)

    def finalize_affine_key(self, v: NodeInput):
        if self.prefer_weight and not v.is_auxiliary:
            return (("weighted",), v.weight(0.0))
        return (("plain",), 0.0)

    def finalize_affine_probe(self, v: NodeInput, w: float) -> NodeInput:
        if self.prefer_weight and not v.is_auxiliary:
            return NodeInput(node=v.node, data=w, is_auxiliary=False)
        return NodeInput(node=v.node, data=None, is_auxiliary=v.is_auxiliary)

    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, float]]:
        yield ((_FREE, False), 0.0)

    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, float]]:
        req, covered = acc
        if edge.is_auxiliary:
            if child_state == IN:
                need, cov = _MUST_IN, covered
            elif child_state == OUT_SAT:
                need, cov = _MUST_OUT, True
            else:
                need, cov = _MUST_OUT, covered
        else:
            if child_state == IN:
                # An IN child both forbids the node and covers it.
                need, cov = _MUST_OUT, True
            elif child_state == OUT_NEED:
                need, cov = _MUST_IN, covered
            else:
                need, cov = None, covered
        if need is None:
            yield ((req, cov), 0.0)
        elif req == _FREE or req == need:
            yield ((need, cov), 0.0)

    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, float]]:
        req, covered = acc
        w = 0.0
        if self.prefer_weight and not v.is_auxiliary:
            w = v.weight(0.0)
        if req in (_FREE, _MUST_IN):
            yield (IN, w)
        if req in (_FREE, _MUST_OUT):
            if covered:
                yield (OUT_SAT, 0.0)
            else:
                yield (OUT_NEED, 0.0)

    def virtual_root_value(self, state: Hashable) -> float:
        return self.semiring.zero if state == OUT_NEED else self.semiring.one

    def extract_solution(self, tree, node_states, value):
        chosen = sorted(
            (v for v, s in node_states.items() if s == IN and not _is_aux(v)),
            key=lambda x: (str(type(x)), str(x)),
        )
        return {"maximal_independent_set": chosen}


def _is_aux(v) -> bool:
    return isinstance(v, tuple) and len(v) == 3 and v[0] == "aux"


def is_maximal_independent_set(tree: RootedTree, chosen) -> bool:
    """Independence plus maximality (every outside node has a chosen neighbour)."""
    chosen_set = set(chosen)
    cm = tree.children_map()
    for c, p in tree.edges():
        if c in chosen_set and p in chosen_set:
            return False
    for v in tree.nodes():
        if v in chosen_set:
            continue
        neighbours = list(cm[v])
        if v != tree.root:
            neighbours.append(tree.parent[v])
        if not any(u in chosen_set for u in neighbours):
            return False
    return True
