"""Proper vertex coloring (an LCL problem, Table 1 — also solvable by prior work).

Colour the nodes with ``k`` colours so adjacent nodes differ.  Optionally a
per-node list of allowed colours can be supplied in ``node_data[v] =
{"allowed": [...]}`` (list coloring).  The problem is a pure constraint
satisfaction task: the semiring value only signals feasibility (0 feasible /
-inf infeasible), and the produced labels are a valid coloring.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import MAX_PLUS
from repro.trees.tree import RootedTree

__all__ = ["VertexColoring", "is_proper_vertex_coloring"]


class VertexColoring(FiniteStateDP):
    """Proper (list-)coloring with ``k`` colours as an LCL."""

    semiring = MAX_PLUS
    name = "vertex coloring"

    def __init__(self, k: int = 3):
        if k < 2:
            raise ValueError("vertex coloring needs at least two colours")
        self.k = k
        self.states = tuple(range(1, k + 1))
        self.acc_states = self.states  # the accumulator is the node's own colour

    def init_key(self, v: NodeInput):
        return True if v.is_auxiliary else (False, tuple(self._allowed(v)))

    def transition_key(self, v: NodeInput, edge: EdgeInfo):
        return (edge.is_auxiliary,)

    def finalize_key(self, v: NodeInput):
        return ()

    def _allowed(self, v: NodeInput):
        if isinstance(v.data, dict) and "allowed" in v.data:
            return tuple(v.data["allowed"])
        return self.states

    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, float]]:
        allowed = self.states if v.is_auxiliary else self._allowed(v)
        for c in allowed:
            yield (c, 0.0)

    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, float]]:
        if edge.is_auxiliary:
            if child_state == acc:
                yield (acc, 0.0)
            return
        if child_state != acc:
            yield (acc, 0.0)

    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, float]]:
        yield (acc, 0.0)

    def extract_solution(self, tree, node_states, value):
        coloring = {v: s for v, s in node_states.items() if not _is_aux(v)}
        return {"coloring": coloring, "feasible": value == 0.0}


def _is_aux(v) -> bool:
    return isinstance(v, tuple) and len(v) == 3 and v[0] == "aux"


def is_proper_vertex_coloring(tree: RootedTree, coloring: Dict[Hashable, int]) -> bool:
    return all(coloring[c] != coloring[p] for c, p in tree.edges())
