"""Sum coloring of trees (Table 1).

Properly colour the nodes with colours ``1..k`` minimising the sum of the
colour numbers (weighted by an optional per-node weight).  For trees the
optimum never needs more than a small constant number of colours; ``k = 3``
is the default and is provably sufficient for unweighted sum coloring of
trees, while larger ``k`` can be requested for experimentation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import MIN_PLUS
from repro.trees.tree import RootedTree

__all__ = ["SumColoring", "sequential_sum_coloring", "is_proper_coloring"]


class SumColoring(FiniteStateDP):
    """Minimum sum coloring with colours ``1..k``."""

    semiring = MIN_PLUS
    name = "sum coloring"

    def __init__(self, k: int = 3):
        if k < 2:
            raise ValueError("sum coloring needs at least two colours")
        self.k = k
        self.states = tuple(range(1, k + 1))
        self.acc_states = self.states  # the accumulator is the node's own colour

    def init_key(self, v: NodeInput):
        return ()

    def transition_key(self, v: NodeInput, edge: EdgeInfo):
        return (edge.is_auxiliary,)

    def finalize_key(self, v: NodeInput):
        if v.is_auxiliary:
            return True
        return (False, v.weight(1.0) if v.data is not None else 1.0)

    def finalize_affine_key(self, v: NodeInput):
        if v.is_auxiliary:
            return (("aux",), 0.0)
        return (("orig",), v.weight(1.0) if v.data is not None else 1.0)

    def finalize_affine_probe(self, v: NodeInput, w: float) -> NodeInput:
        if v.is_auxiliary:
            return NodeInput(node=v.node, data=None, is_auxiliary=True)
        return NodeInput(node=v.node, data=w, is_auxiliary=False)

    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, float]]:
        # The accumulator is the node's own colour.
        for c in self.states:
            yield (c, 0.0)

    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, float]]:
        if edge.is_auxiliary:
            if child_state == acc:
                yield (acc, 0.0)
            return
        if child_state != acc:
            yield (acc, 0.0)

    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, float]]:
        if v.is_auxiliary:
            yield (acc, 0.0)
            return
        multiplier = v.weight(1.0) if v.data is not None else 1.0
        yield (acc, float(acc) * multiplier)

    def extract_solution(self, tree, node_states, value):
        coloring = {v: s for v, s in node_states.items() if not _is_aux(v)}
        return {"coloring": coloring, "color_sum": value}


def _is_aux(v) -> bool:
    return isinstance(v, tuple) and len(v) == 3 and v[0] == "aux"


def is_proper_coloring(tree: RootedTree, coloring: Dict[Hashable, int]) -> bool:
    return all(coloring[c] != coloring[p] for c, p in tree.edges())


def sequential_sum_coloring(tree: RootedTree, k: int = 3) -> float:
    """Reference bottom-up DP over colours 1..k."""
    best: Dict[Hashable, Dict[int, float]] = {}
    for v in tree.postorder():
        w = tree.weight(v, 1.0) if v in tree.node_data else 1.0
        vals = {}
        for mine in range(1, k + 1):
            acc = float(mine) * w
            ok = True
            for c in tree.children(v):
                choices = [best[c][cc] for cc in range(1, k + 1) if cc != mine]
                if not choices:
                    ok = False
                    break
                acc += min(choices)
            vals[mine] = acc if ok else float("inf")
        best[v] = vals
    return min(best[tree.root].values())
