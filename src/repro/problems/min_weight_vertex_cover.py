"""Minimum-weight vertex cover in trees (Table 1).

Choose a minimum-weight set of nodes touching every edge.  States are
``in``/``out``; an edge whose child endpoint is ``out`` forces the parent
endpoint to be ``in``.  Auxiliary edges of the degree reduction force the two
copies of a split node to make the same choice; auxiliary nodes are free.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import MIN_PLUS
from repro.trees.tree import RootedTree

__all__ = ["MinWeightVertexCover", "is_vertex_cover", "sequential_min_weight_vertex_cover"]

IN = "in"
OUT = "out"

_FREE = "free"
_MUST_IN = "must-in"
_MUST_OUT = "must-out"


class MinWeightVertexCover(FiniteStateDP):
    """Minimum-weight vertex cover as a finite-state DP."""

    states = (IN, OUT)
    acc_states = (_FREE, _MUST_IN, _MUST_OUT)
    semiring = MIN_PLUS
    name = "minimum-weight vertex cover"

    def init_key(self, v: NodeInput):
        return ()

    def transition_key(self, v: NodeInput, edge: EdgeInfo):
        return (edge.is_auxiliary,)

    def finalize_key(self, v: NodeInput):
        return (v.is_auxiliary, v.weight(0.0))

    def finalize_affine_key(self, v: NodeInput):
        return ((v.is_auxiliary,), 0.0 if v.is_auxiliary else v.weight(0.0))

    def finalize_affine_probe(self, v: NodeInput, w: float) -> NodeInput:
        return NodeInput(node=v.node, data=w, is_auxiliary=v.is_auxiliary)

    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, float]]:
        yield (_FREE, 0.0)

    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, float]]:
        if edge.is_auxiliary:
            need = _MUST_IN if child_state == IN else _MUST_OUT
        else:
            # Cover constraint: if the child is out, the parent must cover the edge.
            need = _MUST_IN if child_state == OUT else None
        if need is None:
            yield (acc, 0.0)
        elif acc == _FREE or acc == need:
            yield (need, 0.0)

    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, float]]:
        w = 0.0 if v.is_auxiliary else v.weight(0.0)
        if acc in (_FREE, _MUST_IN):
            yield (IN, w)
        if acc in (_FREE, _MUST_OUT):
            yield (OUT, 0.0)

    def extract_solution(self, tree, node_states, value):
        chosen = sorted(
            (v for v, s in node_states.items() if s == IN and not _is_aux(v)),
            key=lambda x: (str(type(x)), str(x)),
        )
        return {"vertex_cover": chosen, "weight": value}


def _is_aux(v) -> bool:
    return isinstance(v, tuple) and len(v) == 3 and v[0] == "aux"


def is_vertex_cover(tree: RootedTree, chosen) -> bool:
    """True iff every tree edge has at least one chosen endpoint."""
    chosen_set = set(chosen)
    return all(c in chosen_set or p in chosen_set for c, p in tree.edges())


def sequential_min_weight_vertex_cover(tree: RootedTree) -> float:
    """Textbook two-state bottom-up DP (independent of the framework code)."""
    take: Dict[Hashable, float] = {}
    skip: Dict[Hashable, float] = {}
    for v in tree.postorder():
        t = tree.weight(v)
        s = 0.0
        for c in tree.children(v):
            t += min(take[c], skip[c])
            s += take[c]
        take[v], skip[v] = t, s
    return min(take[tree.root], skip[tree.root])
