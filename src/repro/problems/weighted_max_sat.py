"""Weighted max-SAT on tree-structured formulas (Table 1).

Variables are the tree nodes (Boolean states).  Clauses come in two forms:

* **unit clauses** attached to a node: ``node_data[v] = {"clauses": [(literal,
  weight), ...]}`` where the clause is satisfied when the node's value equals
  ``literal``;
* **binary clauses** attached to an edge: ``edge_data[(child, parent)] =
  {"clauses": [(child_literal, parent_literal, weight), ...]}``, satisfied
  when the child's value equals ``child_literal`` *or* the parent's value
  equals ``parent_literal``.

The task is to maximise the total weight of satisfied clauses.  Because the
clause graph is the tree itself, this is exactly the tree-structured max-SAT
instance the paper refers to.  The accumulator carries the node's own chosen
value so binary clauses can be scored as children are absorbed.

A clause only enters the score through its *literal pattern* — ``(child_lit,
parent_lit)`` for binary clauses (four possibilities), the literal alone for
unit clauses (two) — and its weight.  The rules therefore aggregate each
clause set into a weight vector over the fixed pattern basis and accumulate
gains pattern-major (clause order within a pattern): the scored value is
linear in that vector while the feasibility structure is constant, which is
the clause-aware affine decomposition the dense backend exploits — every
non-auxiliary edge (node) shares one structural key, so distinctly-weighted
clause sets batch into one grouped array program instead of defeating the
tensor caches.  Both backends use the same canonical accumulation order, so
their values stay bit-identical.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import MAX_PLUS
from repro.trees.tree import RootedTree

__all__ = ["WeightedMaxSAT", "sequential_max_sat", "max_sat_value_of_assignment"]

TRUE = True
FALSE = False

#: Fixed pattern bases: (child_lit, parent_lit) for binary clauses, the
#: literal for unit clauses.  Gains are accumulated in this order.
EDGE_PATTERNS: Tuple[Tuple[bool, bool], ...] = (
    (True, True),
    (True, False),
    (False, True),
    (False, False),
)
UNIT_PATTERNS: Tuple[bool, ...] = (True, False)


def _edge_clauses(edge: EdgeInfo) -> List[Tuple[bool, bool, float]]:
    if isinstance(edge.data, dict):
        return list(edge.data.get("clauses", []))
    return []


def _unit_clauses(v: NodeInput) -> List[Tuple[bool, float]]:
    if isinstance(v.data, dict):
        return list(v.data.get("clauses", []))
    return []


def _edge_pattern_weights(edge: EdgeInfo) -> List[float]:
    """Clause-weight sums per ``EDGE_PATTERNS`` entry (clause order within)."""
    w = [0.0, 0.0, 0.0, 0.0]
    for cl, pl, weight in _edge_clauses(edge):
        w[(0 if pl else 1) if cl else (2 if pl else 3)] += weight
    return w


def _unit_pattern_weights(v: NodeInput) -> List[float]:
    """Clause-weight sums per ``UNIT_PATTERNS`` entry (clause order within)."""
    w = [0.0, 0.0]
    for lit, weight in _unit_clauses(v):
        w[0 if lit else 1] += weight
    return w


class WeightedMaxSAT(FiniteStateDP):
    """Weighted max-SAT over a tree-structured clause set."""

    states = (TRUE, FALSE)
    #: The accumulator is the node's own truth value.
    acc_states = (TRUE, FALSE)
    semiring = MAX_PLUS
    name = "weighted max-SAT"

    def init_key(self, v: NodeInput):
        return ()

    def transition_key(self, v: NodeInput, edge: EdgeInfo):
        # Binary clauses live on the edge; the scored gain depends on them
        # only through the per-pattern weight sums.
        return True if edge.is_auxiliary else (False, tuple(_edge_pattern_weights(edge)))

    def finalize_key(self, v: NodeInput):
        return True if v.is_auxiliary else (False, tuple(_unit_pattern_weights(v)))

    # -- clause-aware affine decomposition --------------------------------- #
    # The gain of a transition (finalize) is linear in the per-pattern
    # clause-weight vector, and which (acc, child_state) cells are feasible
    # does not depend on the clauses at all — so every non-auxiliary edge
    # (node) shares one structural key over the fixed pattern basis and the
    # per-edge/per-node data collapses to the weight vector.  Whole layers
    # of distinctly-weighted max-SAT nodes then run as one grouped array
    # program built from a single set of probe tensors.

    def transition_affine_key(self, v: NodeInput, edge: EdgeInfo):
        if edge.is_auxiliary:
            return None  # the equality constraint has no weights; key-cached
        return ("sat-edge",), tuple(_edge_pattern_weights(edge))

    def transition_affine_probe(self, v: NodeInput, edge: EdgeInfo, weights):
        data = {"clauses": [(cl, pl, w) for (cl, pl), w in zip(EDGE_PATTERNS, weights)]}
        return v, EdgeInfo(edge=edge.edge, kind=edge.kind, data=data)

    def finalize_affine_key(self, v: NodeInput):
        if v.is_auxiliary:
            return None  # zero gain; the plain finalize_key cache handles it
        return ("sat-unit",), tuple(_unit_pattern_weights(v))

    def finalize_affine_probe(self, v: NodeInput, weights) -> NodeInput:
        data = {"clauses": [(lit, w) for lit, w in zip(UNIT_PATTERNS, weights)]}
        return NodeInput(node=v.node, data=data, is_auxiliary=v.is_auxiliary)

    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, float]]:
        # The accumulator is the node's own truth value, chosen up front.
        yield (TRUE, 0.0)
        yield (FALSE, 0.0)

    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, float]]:
        if edge.is_auxiliary:
            # Copies of a split variable must agree.
            if child_state == acc:
                yield (acc, 0.0)
            return
        # Canonical pattern-major accumulation (see module docstring): the
        # same order the dense backend's affine composition uses.
        gained = 0.0
        for (child_lit, parent_lit), weight in zip(
            EDGE_PATTERNS, _edge_pattern_weights(edge)
        ):
            if child_state == child_lit or acc == parent_lit:
                gained += weight
        yield (acc, gained)

    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, float]]:
        gained = 0.0
        if not v.is_auxiliary:
            for lit, weight in zip(UNIT_PATTERNS, _unit_pattern_weights(v)):
                if acc == lit:
                    gained += weight
        yield (acc, gained)

    def extract_solution(self, tree, node_states, value):
        assignment = {
            v: bool(s) for v, s in node_states.items() if not _is_aux(v)
        }
        return {"assignment": assignment, "satisfied_weight": value}


def _is_aux(v) -> bool:
    return isinstance(v, tuple) and len(v) == 3 and v[0] == "aux"


def max_sat_value_of_assignment(tree: RootedTree, assignment: Dict[Hashable, bool]) -> float:
    """Total weight satisfied by a full assignment (reference scorer)."""
    total = 0.0
    for v in tree.nodes():
        data = tree.node_data.get(v)
        if isinstance(data, dict):
            for lit, weight in data.get("clauses", []):
                if assignment[v] == lit:
                    total += weight
    for (c, p) in tree.edges():
        data = tree.edge_data.get((c, p))
        if isinstance(data, dict):
            for cl, pl, weight in data.get("clauses", []):
                if assignment[c] == cl or assignment[p] == pl:
                    total += weight
    return total


def sequential_max_sat(tree: RootedTree) -> float:
    """Reference bottom-up DP over {True, False} (independent of the framework)."""
    best: Dict[Hashable, Dict[bool, float]] = {}
    for v in tree.postorder():
        vals = {}
        for mine in (True, False):
            acc = 0.0
            data = tree.node_data.get(v)
            if isinstance(data, dict):
                for lit, weight in data.get("clauses", []):
                    if mine == lit:
                        acc += weight
            for c in tree.children(v):
                edge_data = tree.edge_data.get((c, v))
                clauses = edge_data.get("clauses", []) if isinstance(edge_data, dict) else []
                options = []
                for child_val in (True, False):
                    gained = best[c][child_val]
                    for cl, pl, weight in clauses:
                        if child_val == cl or mine == pl:
                            gained += weight
                    options.append(gained)
                acc += max(options)
            vals[mine] = acc
        best[v] = vals
    return max(best[tree.root].values())
