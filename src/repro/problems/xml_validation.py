"""Verifying the structure of XML-like documents (Table 1).

The tree is a parsed tag tree (e.g. obtained from a string of parentheses /
tags via Section 3); every node carries a tag name in ``node_data[v] =
{"tag": ...}``.  A *schema* restricts which child tags may appear under which
parent tag and how many children a tag may have.  The task is to decide
whether the document conforms — a Boolean upward accumulation whose
indegree-one cluster summary is one of the two constant Boolean functions or
the identity (an O(1)-word algebra).

The per-edge parent/child compatibility is checked on the child's side (its
value becomes False if its own subtree is invalid *or* it is not allowed
under its parent), so the check composes along the tree bottom-up.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.dp.accumulation import UpwardAccumulationDP
from repro.dp.problem import NodeInput
from repro.trees.tree import RootedTree

__all__ = ["XMLStructureValidation", "XMLSchema", "validate_xml_tree"]


class XMLSchema:
    """A small structural schema: allowed parent→child tag pairs and arities."""

    def __init__(
        self,
        allowed_children: Optional[Dict[str, Set[str]]] = None,
        max_children: Optional[Dict[str, int]] = None,
        allowed_root: Optional[Set[str]] = None,
    ):
        self.allowed_children = allowed_children or {}
        self.max_children = max_children or {}
        self.allowed_root = allowed_root

    def child_ok(self, parent_tag: str, child_tag: str) -> bool:
        if parent_tag not in self.allowed_children:
            return True
        return child_tag in self.allowed_children[parent_tag]

    def arity_ok(self, tag: str, n_children: int) -> bool:
        cap = self.max_children.get(tag)
        return cap is None or n_children <= cap

    def root_ok(self, tag: str) -> bool:
        return self.allowed_root is None or tag in self.allowed_root


def _tag(tree_or_input, v=None) -> str:
    if isinstance(tree_or_input, NodeInput):
        data = tree_or_input.data
    else:
        data = tree_or_input.node_data.get(v)
    if isinstance(data, dict) and "tag" in data:
        return str(data["tag"])
    return "node"


class XMLStructureValidation(UpwardAccumulationDP):
    """Does the tag tree conform to the schema?  (Boolean upward accumulation.)

    A node's value is True iff its whole subtree is valid *and* the node is
    allowed under its parent's tag (the parent tag is looked up through the
    tree structure, so the per-edge check stays local).
    """

    name = "XML structure verification"
    #: A node's tag is read while evaluating its children (the per-edge
    #: schema check looks up the parent's tag), so the incremental update
    #: path must dirty the children's clusters too when a tag changes.
    update_scope = "node+children"

    def __init__(self, schema: Optional[XMLSchema] = None, tree: Optional[RootedTree] = None):
        self.schema = schema or XMLSchema()
        self._tree = tree  # used to look up the parent's tag for the edge check

    def bind(self, tree: RootedTree) -> "XMLStructureValidation":
        """Return a copy bound to the (degree-reduced) tree being solved."""
        return XMLStructureValidation(self.schema, tree)

    def _parent_tag(self, v: NodeInput) -> Optional[str]:
        if self._tree is None or v.node not in self._tree.parent:
            return None
        p = self._tree.parent[v.node]
        if p == v.node:
            return None
        # Auxiliary parents stand in for their original node.
        while isinstance(p, tuple) and len(p) == 3 and p[0] == "aux":
            p = self._tree.parent[p]
        return _tag(self._tree, p)

    def value_of(self, v: NodeInput, child_values: List[Any]) -> Any:
        ok = all(bool(x) for x in child_values)
        if v.is_auxiliary:
            return ok
        tag = _tag(v)
        if not self.schema.arity_ok(tag, len(child_values)):
            # Note: with degree reduction the arity check is performed on the
            # reduced tree only when no splitting occurred; the sequential
            # reference checks the original arity.
            ok = False
        parent_tag = self._parent_tag(v)
        if parent_tag is None:
            if not self.schema.root_ok(tag):
                ok = False
        elif not self.schema.child_ok(parent_tag, tag):
            ok = False
        return ok

    # Boolean function algebra: ("const", b) or ("and_with", b) == identity∧b.

    def partial_function(self, v: NodeInput, known_child_values: List[Any]) -> Any:
        rest = self.value_of(v, list(known_child_values) + [True])
        if not rest:
            return ("const", False)
        return ("and_with", True)

    def apply(self, fn: Any, x: Any) -> Any:
        kind, b = fn
        if kind == "const":
            return b
        return bool(x) and b

    def compose(self, outer: Any, inner: Any) -> Any:
        if outer[0] == "const":
            return outer
        if inner[0] == "const":
            return ("const", self.apply(outer, inner[1]))
        return ("and_with", outer[1] and inner[1])

    def extract_solution(self, tree, node_values, root_value):
        return {"valid": bool(root_value), "node_valid": node_values}


def validate_xml_tree(tree: RootedTree, schema: XMLSchema) -> bool:
    """Reference sequential validation."""
    for v in tree.nodes():
        tag = _tag(tree, v)
        kids = tree.children(v)
        if not schema.arity_ok(tag, len(kids)):
            return False
        if v == tree.root:
            if not schema.root_ok(tag):
                return False
        else:
            if not schema.child_ok(_tag(tree, tree.parent[v]), tag):
                return False
    return True
