"""Proper edge coloring of bounded-degree trees (an LCL problem, Table 1).

Colour the edges with ``k`` colours so that edges sharing an endpoint differ.
Trees admit a proper edge coloring with Δ colours.  The state of a node is
the colour of its edge to its parent (the root gets the dummy state ``0``);
the accumulator carries the set of colours already used by the node's child
edges, which keeps the table size bounded by ``2^k`` — this problem is
therefore shipped for **bounded degree / small k only**, matching its status
as an LCL problem (the paper solves LCLs for constant-size label sets).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import MAX_PLUS
from repro.trees.tree import RootedTree

__all__ = ["EdgeColoring", "is_proper_edge_coloring"]

NO_COLOR = 0


class EdgeColoring(FiniteStateDP):
    """Proper edge coloring with colours ``1..k`` (k small)."""

    semiring = MAX_PLUS
    name = "edge coloring"

    #: The accumulator is the *set* of colours used by child edges — an
    #: exponentially large (2^k) space the dense kernels should not
    #: enumerate; leaving acc_states undeclared keeps this problem on the
    #: scalar backend, which only ever touches the reachable sets.
    acc_states = None

    def __init__(self, k: int = 4):
        if k < 1:
            raise ValueError("edge coloring needs at least one colour")
        if k > 8:
            raise ValueError("edge coloring is shipped for small k (LCL regime)")
        self.k = k
        self.states = tuple([NO_COLOR] + list(range(1, k + 1)))

    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, float]]:
        yield (frozenset(), 0.0)

    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, float]]:
        used: FrozenSet[int] = acc
        if child_state == NO_COLOR:
            return  # only the root may use the dummy colour
        if child_state in used:
            return
        yield (used | {child_state}, 0.0)

    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, float]]:
        used: FrozenSet[int] = acc
        # The node's own up-edge colour must avoid all child-edge colours.
        for c in range(1, self.k + 1):
            if c not in used:
                yield (c, 0.0)
        yield (NO_COLOR, 0.0)

    def virtual_root_value(self, state: Hashable) -> float:
        # The virtual root edge carries no colour.
        return self.semiring.one if state == NO_COLOR else self.semiring.zero

    def extract_solution(self, tree, node_states, value):
        coloring = {
            (v, tree.parent[v]): s
            for v, s in node_states.items()
            if v != tree.root and s != NO_COLOR
        }
        return {"edge_coloring": coloring, "feasible": value == 0.0}


def is_proper_edge_coloring(tree: RootedTree, coloring: Dict[Tuple, int]) -> bool:
    """Edges sharing an endpoint must receive distinct colours."""
    by_node: Dict[Hashable, list] = {}
    for (c, p), col in coloring.items():
        by_node.setdefault(c, []).append(col)
        by_node.setdefault(p, []).append(col)
    if len(coloring) != len(tree.edges()):
        return False
    return all(len(cols) == len(set(cols)) for cols in by_node.values())
