"""Longest (maximum-weight) path in a tree (Table 1).

Edge weights are read from ``edge_data[(child, parent)]`` (default 1.0, so
the unweighted problem is the tree diameter in edges); auxiliary edges of the
degree reduction weigh 0, which preserves the optimum.

This problem does not fit the per-node finite-state interface (the natural
summary is a small tuple of path lengths, not a per-node state), so it is
implemented directly against the raw :class:`~repro.dp.problem.ClusterDP`
interface:

* an indegree-zero cluster is summarised by ``(inside, from_top)`` — the best
  path fully inside the cluster and the best path starting at its top node;
* an indegree-one cluster is summarised by ``(inside, from_top, from_bottom,
  through)`` where ``from_bottom`` starts at the node its incoming edge
  attaches to and ``through`` is the weight of the (unique) top-to-attachment
  path — exactly the information needed to compose clusters along a path.

The problem reports the optimal value only (the label of an edge is not
naturally a single O(1)-word output for a global path), so the engine skips
the top-down pass, as it does for counting problems.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.clustering.model import Element
from repro.dp.problem import ClusterContext, ClusterDP, EdgeInfo
from repro.trees.tree import RootedTree

__all__ = ["LongestPath", "sequential_longest_path"]


def _edge_weight(edge: EdgeInfo, default: float = 1.0) -> float:
    if edge.is_auxiliary:
        return 0.0
    return edge.weight(default)


class LongestPath(ClusterDP):
    """Maximum-weight path in the tree (value only)."""

    produces_labels = False
    name = "longest path"

    def __init__(self, default_edge_weight: float = 1.0):
        self.default_edge_weight = default_edge_weight

    # Closed results are ("closed", inside, from_top);
    # open results (hole below) are ("open", inside, from_top, from_bottom, through).

    def summarize(self, ctx: ClusterContext) -> Any:
        result = self._evaluate(ctx)[ctx.top_element]
        if ctx.is_indegree_one:
            if result[0] != "open":
                raise RuntimeError("indegree-one cluster must produce an open summary")
            _, inside, from_top, from_bottom, through = result
            return {"kind": "open", "table": (inside, from_top, from_bottom, through)}
        if result[0] != "closed":
            raise RuntimeError("indegree-zero cluster must produce a closed summary")
        _, inside, from_top = result
        return {"kind": "closed", "table": (inside, from_top)}

    def label_virtual_root(self, ctx: ClusterContext, summary: Any) -> Tuple[Any, Any]:
        inside, from_top = summary["table"]
        return None, max(inside, from_top, 0.0)

    def extract(self, tree, edge_labels, root_label, value):
        return {"longest_path_weight": value}

    # ------------------------------------------------------------------ #

    def _evaluate(self, ctx: ClusterContext) -> Dict[Element, Tuple]:
        order: List[Element] = []
        stack = [ctx.top_element]
        while stack:
            e = stack.pop()
            order.append(e)
            stack.extend(ctx.children_of(e))
        order.reverse()

        results: Dict[Element, Tuple] = {}
        for e in order:
            kids = ctx.children_of(e)
            if e[0] == "node":
                results[e] = self._combine_node(ctx, e, kids, results)
            else:
                kind = ctx.element_kind(e)
                summary = ctx.summary_of(e)
                if kind == "indegree-1":
                    results[e] = self._combine_indeg1(ctx, e, kids, results, summary)
                else:
                    inside, from_top = summary["table"]
                    results[e] = ("closed", inside, from_top)
        return results

    def _combine_node(self, ctx, e, kids, results) -> Tuple:
        is_hole_here = ctx.hole_element == e and ctx.is_indegree_one
        arms: List[float] = []
        insides: List[float] = [0.0]
        open_child: Optional[Tuple[float, float, float]] = None  # (arm, from_bottom, through)
        for c in kids:
            edge = ctx.edge_to_parent(c)
            w = _edge_weight(edge, self.default_edge_weight)
            r = results[c]
            if r[0] == "closed":
                _, inside_c, from_top_c = r
                arms.append(w + from_top_c)
                insides.append(inside_c)
            else:
                _, inside_c, from_top_c, from_bottom_c, through_c = r
                arms.append(w + from_top_c)
                insides.append(inside_c)
                open_child = (w + from_top_c, from_bottom_c, w + through_c)

        arms_sorted = sorted(arms, reverse=True)
        top1 = arms_sorted[0] if arms_sorted else 0.0
        top2 = arms_sorted[1] if len(arms_sorted) > 1 else 0.0
        inside = max(max(insides), max(0.0, top1) + max(0.0, top2))
        from_top = max(0.0, top1)

        if is_hole_here:
            # The hole attaches directly to this node: through-path weight 0.
            return ("open", inside, from_top, from_top, 0.0)
        if open_child is not None:
            open_arm, from_bottom_c, through = open_child
            other_arms = [a for a in arms if a != open_arm] or [0.0]
            # Re-handle duplicates: remove one occurrence of the open arm only.
            other_arms = list(arms)
            other_arms.remove(open_arm)
            best_other = max(other_arms) if other_arms else 0.0
            from_bottom = max(from_bottom_c, through + max(0.0, best_other))
            return ("open", inside, from_top, from_bottom, through)
        return ("closed", inside, from_top)

    def _combine_indeg1(self, ctx, e, kids, results, summary) -> Tuple:
        inside_d, from_top_d, from_bottom_d, through_d = summary["table"]
        if not kids:
            if ctx.hole_element != e:
                raise RuntimeError(
                    f"indegree-one sub-cluster {e!r} has no child and is not the hole"
                )
            return ("open", inside_d, from_top_d, from_bottom_d, through_d)
        child = kids[0]
        edge = ctx.edge_to_parent(child)
        # The connecting edge is the sub-cluster's incoming edge; its weight is
        # applied here (it is internal to the *current* cluster).
        w = _edge_weight(ctx.edge_info(ctx.sub_cluster(e).in_edge), self.default_edge_weight)
        r = results[child]
        if r[0] == "closed":
            _, inside_x, from_top_x = r
            inside = max(inside_d, inside_x, from_bottom_d + w + from_top_x)
            from_top = max(from_top_d, through_d + w + from_top_x)
            return ("closed", inside, from_top)
        _, inside_x, from_top_x, from_bottom_x, through_x = r
        inside = max(inside_d, inside_x, from_bottom_d + w + from_top_x)
        from_top = max(from_top_d, through_d + w + from_top_x)
        from_bottom = max(from_bottom_x, through_x + w + from_bottom_d)
        through = through_d + w + through_x
        return ("open", inside, from_top, from_bottom, through)


def sequential_longest_path(tree: RootedTree, default_edge_weight: float = 1.0) -> float:
    """Reference two-value bottom-up DP for the maximum-weight path."""

    def w(c, p):
        data = tree.edge_data.get((c, p))
        if isinstance(data, (int, float)):
            return float(data)
        if isinstance(data, dict) and "weight" in data:
            return float(data["weight"])
        return default_edge_weight

    down: Dict[Hashable, float] = {}
    best = 0.0
    for v in tree.postorder():
        arms = sorted((w(c, v) + down[c] for c in tree.children(v)), reverse=True)
        top1 = arms[0] if arms else 0.0
        top2 = arms[1] if len(arms) > 1 else 0.0
        down[v] = max(0.0, top1)
        best = max(best, max(0.0, top1) + max(0.0, top2))
    return best
