"""Minimum-weight dominating set in trees (Table 1).

Choose a minimum-weight set of nodes such that every node is either chosen or
adjacent to a chosen node.  The classic three-state formulation is used:

* ``in``        — the node is in the set,
* ``dominated`` — not in the set but dominated by one of its children,
* ``needs``     — not in the set and not yet dominated (its parent must be in).

The accumulator tracks whether some child already dominates the node and
whether the children force the node in or out; this is exactly the kind of
sibling coupling ("at least one child in the set") that the accumulator-based
transition interface exists for.

Degree reduction (Section 5.3): auxiliary nodes mirror the membership of the
node they were split from; a dominated auxiliary copy passes the domination
credit upwards, and auxiliary nodes themselves never need to be dominated.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import MIN_PLUS
from repro.trees.tree import RootedTree

__all__ = ["MinWeightDominatingSet", "is_dominating_set", "sequential_min_weight_dominating_set"]

IN = "in"
DOMINATED = "dominated"
NEEDS = "needs"

# accumulator: (requirement, has_dominating_child)
_FREE = "free"
_MUST_IN = "must-in"
_MUST_OUT = "must-out"


class MinWeightDominatingSet(FiniteStateDP):
    """Minimum-weight dominating set as a finite-state DP."""

    states = (IN, DOMINATED, NEEDS)
    #: (requirement, has_dominating_child) pairs.
    acc_states = tuple(
        (req, dom) for req in (_FREE, _MUST_IN, _MUST_OUT) for dom in (False, True)
    )
    semiring = MIN_PLUS
    name = "minimum-weight dominating set"

    def init_key(self, v: NodeInput):
        return ()

    def transition_key(self, v: NodeInput, edge: EdgeInfo):
        return (edge.is_auxiliary,)

    def finalize_key(self, v: NodeInput):
        return (v.is_auxiliary, v.weight(0.0))

    def finalize_affine_key(self, v: NodeInput):
        return ((v.is_auxiliary,), 0.0 if v.is_auxiliary else v.weight(0.0))

    def finalize_affine_probe(self, v: NodeInput, w: float) -> NodeInput:
        return NodeInput(node=v.node, data=w, is_auxiliary=v.is_auxiliary)

    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, float]]:
        yield ((_FREE, False), 0.0)

    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, float]]:
        req, has_dom = acc
        if edge.is_auxiliary:
            # The auxiliary child mirrors the node's own membership; a
            # dominated auxiliary child means one of the node's real children
            # dominates it.
            if child_state == IN:
                need, dom = _MUST_IN, has_dom
            elif child_state == DOMINATED:
                need, dom = _MUST_OUT, True
            else:  # NEEDS
                need, dom = _MUST_OUT, has_dom
        else:
            if child_state == IN:
                need, dom = None, True
            elif child_state == NEEDS:
                # A child that is not dominated from below forces this node in.
                need, dom = _MUST_IN, has_dom
            else:
                need, dom = None, has_dom
        if need is None:
            yield ((req, dom), 0.0)
        elif req == _FREE or req == need:
            yield ((need, dom), 0.0)

    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, float]]:
        req, has_dom = acc
        w = 0.0 if v.is_auxiliary else v.weight(0.0)
        if req in (_FREE, _MUST_IN):
            yield (IN, w)
        if req in (_FREE, _MUST_OUT):
            if has_dom:
                yield (DOMINATED, 0.0)
            else:
                yield (NEEDS, 0.0)

    def virtual_root_value(self, state: Hashable) -> float:
        # The root has no parent to dominate it.
        return self.semiring.zero if state == NEEDS else self.semiring.one

    def extract_solution(self, tree, node_states, value):
        chosen = sorted(
            (v for v, s in node_states.items() if s == IN and not _is_aux(v)),
            key=lambda x: (str(type(x)), str(x)),
        )
        return {"dominating_set": chosen, "weight": value}


def _is_aux(v) -> bool:
    return isinstance(v, tuple) and len(v) == 3 and v[0] == "aux"


def is_dominating_set(tree: RootedTree, chosen) -> bool:
    """True iff every node is chosen or has a chosen neighbour."""
    chosen_set = set(chosen)
    cm = tree.children_map()
    for v in tree.nodes():
        if v in chosen_set:
            continue
        neighbours = list(cm[v])
        if v != tree.root:
            neighbours.append(tree.parent[v])
        if not any(u in chosen_set for u in neighbours):
            return False
    return True


def sequential_min_weight_dominating_set(tree: RootedTree) -> float:
    """Classic three-state bottom-up DP (independent of the framework code)."""
    INF = float("inf")
    dp_in: Dict[Hashable, float] = {}
    dp_dom: Dict[Hashable, float] = {}
    dp_need: Dict[Hashable, float] = {}
    for v in tree.postorder():
        kids = tree.children(v)
        w = tree.weight(v)
        # v in the set: children may be anything except "needs" unresolved?  A
        # child in "needs" is dominated by v, so the cheapest of all three works
        # with needs being fine.
        cost_in = w + sum(min(dp_in[c], dp_dom[c], dp_need[c]) for c in kids)
        # v not in the set: every child must be in or dominated; v needs at
        # least one child in the set to be dominated itself.
        base = 0.0
        best_switch = INF
        feasible = True
        for c in kids:
            stay = min(dp_in[c], dp_dom[c])
            if stay == INF:
                feasible = False
                break
            base += stay
            best_switch = min(best_switch, dp_in[c] - stay)
        if feasible:
            cost_need = base
            cost_dom = base + best_switch if kids else INF
        else:
            cost_need = INF
            cost_dom = INF
        dp_in[v], dp_dom[v], dp_need[v] = cost_in, cost_dom, cost_need
    return min(dp_in[tree.root], dp_dom[tree.root])
