"""The tree median problem (paper Section 6.1).

Input: a rooted tree whose leaves carry numbers.  The label of every internal
node is defined recursively as the *median* of its children's labels; for an
even number of children the smaller of the two middle values is taken (the
paper's convention, equivalent to padding with a -inf dummy child).

This problem is the paper's example of a task that is **not** binary
adaptable (the prior work of Bateni et al. cannot handle it), yet fits the
framework: an indegree-one cluster is summarised by the pair ``(a, b)`` of
Lemma 10 — the value at its top is ``median(x, a, b)`` of the value ``x``
arriving through its open boundary — and such clamp functions compose by the
rule of Lemma 11.

High-degree nodes: the paper routes them through *don't-care* auxiliary nodes
(Section 6.1.1).  This reproduction instead solves the problem on the
original tree with the cluster capacity enlarged to hold a node together
with all of its children (``solve(..., degree_reduction=False)``), which
preserves correctness and the O(log D) round structure for trees whose
maximum degree fits in one machine; the deviation is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List

from repro.dp.accumulation import UpwardAccumulationDP
from repro.dp.problem import NodeInput
from repro.trees.tree import RootedTree

__all__ = ["TreeMedian", "sequential_tree_median", "lower_median"]

_NEG = float("-inf")
_POS = float("inf")


def lower_median(values: List[float]) -> float:
    """The paper's median: for an even count, the smaller middle value."""
    if not values:
        raise ValueError("median of an empty list")
    s = sorted(values)
    n = len(s)
    return s[(n - 1) // 2] if n % 2 == 1 else s[n // 2 - 1]


class TreeMedian(UpwardAccumulationDP):
    """Tree median as an upward accumulation with the Lemma 10/11 clamp algebra."""

    name = "tree median"

    # -- values -------------------------------------------------------------- #

    def value_of(self, v: NodeInput, child_values: List[Any]) -> Any:
        if not child_values:
            if isinstance(v.data, (int, float)) and not isinstance(v.data, bool):
                return float(v.data)
            raise ValueError(f"leaf {v.node!r} carries no numeric value")
        return lower_median([float(x) for x in child_values])

    # -- clamp-function algebra (Lemmas 10 and 11) ---------------------------- #
    # ("clamp", a, b) with a <= b represents x -> median(x, a, b) = clamp of x
    # into the interval [a, b].

    def partial_function(self, v: NodeInput, known_child_values: List[Any]) -> Any:
        s = sorted(float(x) for x in known_child_values)
        k = len(s)
        # Lower median of s + [x] (k + 1 values), 1-indexed position:
        j = (k + 2) // 2  # ceil((k + 1) / 2)
        lo = s[j - 2] if j - 2 >= 0 else _NEG
        hi = s[j - 1] if j - 1 < k else _POS
        return ("clamp", lo, hi)

    def apply(self, fn: Any, x: Any) -> Any:
        _, a, b = fn
        return max(a, min(float(x), b))

    def compose(self, outer: Any, inner: Any) -> Any:
        # x0 = clamp(clamp(x, a2, b2), a1, b1); Lemma 11's case analysis.
        _, a1, b1 = outer
        _, a2, b2 = inner
        if b2 <= a1:
            return ("clamp", a1, a1)
        if b1 <= a2:
            return ("clamp", b1, b1)
        return ("clamp", max(a1, a2), min(b1, b2))

    def extract_solution(self, tree, node_values, root_value):
        return {"medians": node_values, "root_median": root_value}


def sequential_tree_median(tree: RootedTree) -> Dict[Hashable, float]:
    """Reference: compute every node's median label bottom-up."""
    values: Dict[Hashable, float] = {}
    for v in tree.postorder():
        kids = tree.children(v)
        if not kids:
            data = tree.node_data.get(v)
            if not isinstance(data, (int, float)) or isinstance(data, bool):
                raise ValueError(f"leaf {v!r} carries no numeric value")
            values[v] = float(data)
        else:
            values[v] = lower_median([values[c] for c in kids])
    return values
