"""The problem library (paper Table 1 and Section 6).

Every module implements one of the problems the paper lists as solvable with
the framework, either as a :class:`~repro.dp.problem.FiniteStateDP`, an
accumulation problem, or a raw :class:`~repro.dp.problem.ClusterDP`, together
with an independent sequential reference used by the tests and benchmarks.

See :mod:`repro.problems.registry` for the catalogue consumed by the Table-1
benchmark.
"""

from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.problems.min_weight_vertex_cover import MinWeightVertexCover
from repro.problems.min_weight_dominating_set import MinWeightDominatingSet
from repro.problems.max_weight_matching import MaxWeightMatching
from repro.problems.counting_matchings import CountMatchingsModK
from repro.problems.weighted_max_sat import WeightedMaxSAT
from repro.problems.sum_coloring import SumColoring
from repro.problems.vertex_coloring import VertexColoring
from repro.problems.maximal_independent_set import MaximalIndependentSet
from repro.problems.edge_coloring import EdgeColoring
from repro.problems.longest_path import LongestPath
from repro.problems.subtree_aggregation import (
    SubtreeAggregate,
    SubtreeSize,
    NodeDepth,
    RootToNodeSum,
)
from repro.problems.expression_evaluation import ArithmeticExpressionEvaluation
from repro.problems.xml_validation import XMLStructureValidation
from repro.problems.tree_median import TreeMedian

__all__ = [
    "MaxWeightIndependentSet",
    "MinWeightVertexCover",
    "MinWeightDominatingSet",
    "MaxWeightMatching",
    "CountMatchingsModK",
    "WeightedMaxSAT",
    "SumColoring",
    "VertexColoring",
    "MaximalIndependentSet",
    "EdgeColoring",
    "LongestPath",
    "SubtreeAggregate",
    "SubtreeSize",
    "NodeDepth",
    "RootToNodeSum",
    "ArithmeticExpressionEvaluation",
    "XMLStructureValidation",
    "TreeMedian",
]
