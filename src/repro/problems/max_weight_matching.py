"""Maximum-weight matching in trees (Table 1).

Choose a maximum-weight set of edges no two of which share an endpoint.  Edge
weights are read from ``tree.edge_data[(child, parent)]`` (default 1.0, so
the unweighted problem is maximum-cardinality matching).

States: ``matched-up`` (the node's edge to its parent is in the matching) or
``free``.  A ``matched-up`` child contributes its edge weight and occupies
its parent; the parent then may not be matched to any other child nor to its
own parent.

Degree reduction: auxiliary edges cannot be matched themselves; an auxiliary
node in state ``matched-up`` means "one original child below me is matched to
the original parent", so the credit and the exclusivity propagate through the
auxiliary tree to the original node.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import MAX_PLUS
from repro.trees.tree import RootedTree

__all__ = ["MaxWeightMatching", "is_matching", "matching_weight", "sequential_max_weight_matching"]

MATCHED_UP = "matched-up"
FREE = "free"

_UNMATCHED = "unmatched"
_MATCHED = "matched"


class MaxWeightMatching(FiniteStateDP):
    """Maximum-weight matching as a finite-state DP."""

    states = (MATCHED_UP, FREE)
    acc_states = (_UNMATCHED, _MATCHED)
    semiring = MAX_PLUS
    name = "maximum-weight matching"

    def init_key(self, v: NodeInput):
        return ()

    def transition_key(self, v: NodeInput, edge: EdgeInfo):
        # The matched-child gain reads the edge weight, so it is part of the key.
        return True if edge.is_auxiliary else (False, edge.weight(1.0))

    def finalize_key(self, v: NodeInput):
        return (v.is_auxiliary,)

    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, float]]:
        yield (_UNMATCHED, 0.0)

    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, float]]:
        if child_state == FREE:
            yield (acc, 0.0)
            return
        # child_state == MATCHED_UP: the child occupies this node.
        if acc == _MATCHED:
            return  # two children matched upwards: infeasible
        gain = 0.0 if edge.is_auxiliary else edge.weight(1.0)
        yield (_MATCHED, gain)

    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, float]]:
        if v.is_auxiliary:
            # Auxiliary nodes only forward the "occupied" bit to the original node.
            yield ((MATCHED_UP if acc == _MATCHED else FREE), 0.0)
            return
        yield (FREE, 0.0)
        if acc == _UNMATCHED:
            yield (MATCHED_UP, 0.0)

    def virtual_root_value(self, state: Hashable) -> float:
        # The root has no parent edge to be matched through.
        return self.semiring.zero if state == MATCHED_UP else self.semiring.one

    def extract_solution(self, tree, node_states, value):
        matched_edges = []
        for v, s in node_states.items():
            if s != MATCHED_UP or _is_aux(v) or v == tree.root:
                continue
            # Walk over auxiliary parents to the original endpoint.
            p = tree.parent[v]
            while _is_aux(p):
                p = tree.parent[p]
            matched_edges.append((v, p))
        return {"matching": sorted(matched_edges, key=repr), "weight": value}


def _is_aux(v) -> bool:
    return isinstance(v, tuple) and len(v) == 3 and v[0] == "aux"


def is_matching(edges) -> bool:
    """True iff no two of the chosen edges share an endpoint."""
    seen = set()
    for a, b in edges:
        if a in seen or b in seen:
            return False
        seen.add(a)
        seen.add(b)
    return True


def matching_weight(tree: RootedTree, edges) -> float:
    total = 0.0
    for c, p in edges:
        data = tree.edge_data.get((c, p))
        if isinstance(data, (int, float)):
            total += float(data)
        elif isinstance(data, dict) and "weight" in data:
            total += float(data["weight"])
        else:
            total += 1.0
    return total


def sequential_max_weight_matching(tree: RootedTree) -> float:
    """Textbook two-state bottom-up DP (independent of the framework code)."""
    free: Dict[Hashable, float] = {}
    up: Dict[Hashable, float] = {}

    def w(c, p):
        data = tree.edge_data.get((c, p))
        if isinstance(data, (int, float)):
            return float(data)
        if isinstance(data, dict) and "weight" in data:
            return float(data["weight"])
        return 1.0

    for v in tree.postorder():
        kids = tree.children(v)
        base = sum(free[c] for c in kids)
        best_take = 0.0
        for c in kids:
            # Matching v to c requires c to stay available below (state "up").
            gain = w(c, v) + up[c] - free[c]
            best_take = max(best_take, gain)
        free[v] = base + best_take          # v may be matched to one child (or none)
        up[v] = base                        # v stays available for its parent
    return free[tree.root]
