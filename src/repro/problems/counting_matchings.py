"""Counting matchings modulo k (Table 1).

Counts all matchings of the tree (including the empty matching) modulo ``k``.
Same state machine as :mod:`repro.problems.max_weight_matching`, evaluated in
the counting semiring; since the semiring is not selective, only the root
value (the count) is produced and the top-down pass is skipped.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import counting_mod
from repro.trees.tree import RootedTree

__all__ = ["CountMatchingsModK", "sequential_count_matchings"]

MATCHED_UP = "matched-up"
FREE = "free"

_UNMATCHED = "unmatched"
_MATCHED = "matched"


class CountMatchingsModK(FiniteStateDP):
    """Number of matchings of the tree, modulo ``k``."""

    states = (MATCHED_UP, FREE)
    acc_states = (_UNMATCHED, _MATCHED)
    name = "counting matchings modulo k"

    def __init__(self, k: int = 1_000_000_007):
        self.k = k
        self.semiring = counting_mod(k)

    def init_key(self, v: NodeInput):
        return ()

    def transition_key(self, v: NodeInput, edge: EdgeInfo):
        return ()  # the transition reads neither the node nor the edge

    def finalize_key(self, v: NodeInput):
        return (v.is_auxiliary,)

    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, int]]:
        yield (_UNMATCHED, 1)

    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, int]]:
        if child_state == FREE:
            yield (acc, 1)
            return
        if acc == _MATCHED:
            return
        yield (_MATCHED, 1)

    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, int]]:
        if v.is_auxiliary:
            yield ((MATCHED_UP if acc == _MATCHED else FREE), 1)
            return
        yield (FREE, 1)
        if acc == _UNMATCHED:
            yield (MATCHED_UP, 1)

    def virtual_root_value(self, state: Hashable) -> int:
        return 0 if state == MATCHED_UP else 1

    def extract_solution(self, tree, node_states, value):
        return {"count_mod_k": value, "k": self.k}


def sequential_count_matchings(tree: RootedTree, k: int = 1_000_000_007) -> int:
    """Reference count of matchings mod k (independent of the framework code)."""
    free: Dict[Hashable, int] = {}
    up: Dict[Hashable, int] = {}
    for v in tree.postorder():
        kids = tree.children(v)
        base = 1
        for c in kids:
            base = (base * free[c]) % k
        total = base
        for c in kids:
            others = 1
            for d in kids:
                if d is not c:
                    others = (others * free[d]) % k
            total = (total + up[c] * others) % k
        free[v] = total            # v unmatched upward (any matching below)
        up[v] = base               # v available for its parent
    return free[tree.root]
