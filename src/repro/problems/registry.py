"""Catalogue of the shipped problems, mirroring the paper's Table 1.

Each entry records how the paper classifies the problem (solvable by the
prior LCL-only algorithm of Balliu et al. or only by this work), how this
reproduction implements it, and a factory that builds a ready-to-run instance
together with a suitable input tree and an independent checker.  The Table-1
benchmark iterates over this registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List

from repro.trees.tree import RootedTree

__all__ = ["Table1Entry", "TABLE1", "table1_entries"]


@dataclass
class Table1Entry:
    """One row of the paper's Table 1."""

    name: str                      # problem name as printed in the paper
    prior_work: bool               # solvable by Balliu et al. [SODA'23] (LCLs)
    this_work: bool                # solvable by the paper's framework
    implementation: str            # which module/class implements it here
    make_problem: Callable[[], Any]
    make_tree: Callable[[int, int], RootedTree]       # (n, seed) -> tree
    reference: Callable[[RootedTree], Any]            # independent ground truth
    compare: Callable[[Any, Any, RootedTree], bool]   # (pipeline result, reference, tree)
    degree_reduction: bool = True
    notes: str = ""


def _values_close(a, b, tol=1e-6):
    try:
        return abs(float(a) - float(b)) <= tol * max(1.0, abs(float(b)))
    except (TypeError, ValueError):
        return a == b


def _close(result, reference, tree):
    """Compare the pipeline result's objective value with the reference value."""
    value = getattr(result, "value", result)
    return _values_close(value, reference)


def table1_entries() -> List[Table1Entry]:
    """Build the Table-1 registry (imports deferred to keep import cost low)."""
    from repro.problems.max_weight_independent_set import (
        MaxWeightIndependentSet,
        sequential_max_weight_independent_set,
    )
    from repro.problems.min_weight_vertex_cover import (
        MinWeightVertexCover,
        sequential_min_weight_vertex_cover,
    )
    from repro.problems.min_weight_dominating_set import (
        MinWeightDominatingSet,
        sequential_min_weight_dominating_set,
    )
    from repro.problems.max_weight_matching import (
        MaxWeightMatching,
        sequential_max_weight_matching,
    )
    from repro.problems.counting_matchings import CountMatchingsModK, sequential_count_matchings
    from repro.problems.weighted_max_sat import WeightedMaxSAT, sequential_max_sat
    from repro.problems.sum_coloring import SumColoring, sequential_sum_coloring
    from repro.problems.vertex_coloring import VertexColoring, is_proper_vertex_coloring
    from repro.problems.maximal_independent_set import (
        MaximalIndependentSet,
        is_maximal_independent_set,
    )
    from repro.problems.edge_coloring import EdgeColoring
    from repro.problems.longest_path import LongestPath, sequential_longest_path
    from repro.problems.subtree_aggregation import SubtreeAggregate
    from repro.problems.expression_evaluation import (
        ArithmeticExpressionEvaluation,
        evaluate_expression_tree,
    )
    from repro.problems.xml_validation import XMLStructureValidation, XMLSchema, validate_xml_tree
    from repro.problems.tree_median import TreeMedian, sequential_tree_median
    from repro.trees import generators as gen
    from repro.trees.properties import subtree_aggregate

    def weighted_tree(n, seed):
        return gen.with_random_weights(gen.random_attachment_tree(n, seed=seed), seed=seed)

    def leaf_valued_tree(n, seed):
        return gen.with_random_leaf_values(gen.random_attachment_tree(n, seed=seed), seed=seed)

    def sat_tree(n, seed):
        import random

        rng = random.Random(seed)
        t = gen.random_attachment_tree(n, seed=seed)
        node_data = {
            v: {"clauses": [(rng.random() < 0.5, round(rng.uniform(0, 5), 2))]}
            for v in t.nodes()
        }
        edge_data = {
            e: {"clauses": [(rng.random() < 0.5, rng.random() < 0.5, round(rng.uniform(0, 5), 2))]}
            for e in t.edges()
        }
        t2 = t.with_node_data(node_data)
        t2.edge_data = edge_data
        return t2

    def expression_tree(n, seed):
        import random

        rng = random.Random(seed)
        t = gen.random_attachment_tree(n, seed=seed)
        data = {}
        for v in t.nodes():
            if t.is_leaf(v):
                data[v] = rng.randint(-3, 3)
            else:
                data[v] = {"op": rng.choice(["+", "*"])}
        return t.with_node_data(data)

    def xml_tree(n, seed):
        import random

        rng = random.Random(seed)
        t = gen.random_attachment_tree(n, seed=seed)
        tags = ["book", "chapter", "section", "para"]
        data = {v: {"tag": tags[min(len(tags) - 1, int(d))]} for v, d in t.depths().items()}
        return t.with_node_data(data)

    xml_schema = XMLSchema(
        allowed_children={
            "book": {"chapter"},
            "chapter": {"section"},
            "section": {"para"},
            "para": {"para"},
        },
        allowed_root={"book"},
    )

    entries = [
        Table1Entry(
            name="Vertex coloring",
            prior_work=True,
            this_work=True,
            implementation="problems.vertex_coloring.VertexColoring",
            make_problem=lambda: VertexColoring(k=3),
            make_tree=lambda n, s: gen.random_attachment_tree(n, seed=s),
            reference=lambda t: True,
            compare=lambda res, ref, tree: res.output["feasible"]
            and is_proper_vertex_coloring(tree, res.output["coloring"]),
        ),
        Table1Entry(
            name="Edge coloring",
            prior_work=True,
            this_work=True,
            implementation="problems.edge_coloring.EdgeColoring",
            make_problem=lambda: EdgeColoring(k=6),
            make_tree=lambda n, s: gen.balanced_kary_tree(n, k=3),
            reference=lambda t: True,
            compare=lambda res, ref, tree: res.output["feasible"],
            degree_reduction=False,
            notes="bounded-degree / LCL regime",
        ),
        Table1Entry(
            name="Maximal independent set",
            prior_work=True,
            this_work=True,
            implementation="problems.maximal_independent_set.MaximalIndependentSet",
            make_problem=lambda: MaximalIndependentSet(),
            make_tree=lambda n, s: gen.random_attachment_tree(n, seed=s),
            reference=lambda t: True,
            compare=lambda res, ref, tree: is_maximal_independent_set(
                tree, res.output["maximal_independent_set"]
            ),
        ),
        Table1Entry(
            name="Maximum weight independent set",
            prior_work=False,
            this_work=True,
            implementation="problems.max_weight_independent_set.MaxWeightIndependentSet",
            make_problem=MaxWeightIndependentSet,
            make_tree=weighted_tree,
            reference=sequential_max_weight_independent_set,
            compare=_close,
        ),
        Table1Entry(
            name="Maximum weight matching",
            prior_work=False,
            this_work=True,
            implementation="problems.max_weight_matching.MaxWeightMatching",
            make_problem=MaxWeightMatching,
            make_tree=lambda n, s: gen.random_attachment_tree(n, seed=s),
            reference=sequential_max_weight_matching,
            compare=_close,
        ),
        Table1Entry(
            name="Minimum weight dominating set",
            prior_work=False,
            this_work=True,
            implementation="problems.min_weight_dominating_set.MinWeightDominatingSet",
            make_problem=MinWeightDominatingSet,
            make_tree=weighted_tree,
            reference=sequential_min_weight_dominating_set,
            compare=_close,
        ),
        Table1Entry(
            name="Minimum weight vertex cover",
            prior_work=False,
            this_work=True,
            implementation="problems.min_weight_vertex_cover.MinWeightVertexCover",
            make_problem=MinWeightVertexCover,
            make_tree=weighted_tree,
            reference=sequential_min_weight_vertex_cover,
            compare=_close,
        ),
        Table1Entry(
            name="Weighted max-SAT problem",
            prior_work=False,
            this_work=True,
            implementation="problems.weighted_max_sat.WeightedMaxSAT",
            make_problem=WeightedMaxSAT,
            make_tree=sat_tree,
            reference=sequential_max_sat,
            compare=_close,
        ),
        Table1Entry(
            name="Longest path problem",
            prior_work=False,
            this_work=True,
            implementation="problems.longest_path.LongestPath",
            make_problem=LongestPath,
            make_tree=lambda n, s: gen.random_attachment_tree(n, seed=s),
            reference=sequential_longest_path,
            compare=_close,
        ),
        Table1Entry(
            name="Sum coloring problem",
            prior_work=False,
            this_work=True,
            implementation="problems.sum_coloring.SumColoring",
            make_problem=lambda: SumColoring(k=3),
            make_tree=lambda n, s: gen.random_attachment_tree(n, seed=s),
            reference=lambda t: sequential_sum_coloring(t, k=3),
            compare=_close,
        ),
        Table1Entry(
            name="Counting matchings modulo k",
            prior_work=False,
            this_work=True,
            implementation="problems.counting_matchings.CountMatchingsModK",
            make_problem=lambda: CountMatchingsModK(k=997),
            make_tree=lambda n, s: gen.random_attachment_tree(n, seed=s),
            reference=lambda t: sequential_count_matchings(t, k=997),
            compare=lambda res, ref, tree: int(res.value) == int(ref),
        ),
        Table1Entry(
            name="Tree median problem",
            prior_work=False,
            this_work=True,
            implementation="problems.tree_median.TreeMedian",
            make_problem=TreeMedian,
            make_tree=leaf_valued_tree,
            reference=lambda t: sequential_tree_median(t)[t.root],
            compare=_close,
            degree_reduction=False,
            notes="high-degree nodes kept whole (DESIGN.md)",
        ),
        Table1Entry(
            name="Inference in Bayesian graphical models",
            prior_work=False,
            this_work=True,
            implementation="inference.mpc_inference.GaussianTreeInference",
            make_problem=lambda: None,  # handled specially by the benchmark
            make_tree=lambda n, s: gen.random_attachment_tree(n, seed=s),
            reference=lambda t: None,
            compare=lambda res, ref, tree: True,
            notes="see repro.inference",
        ),
        Table1Entry(
            name="Evaluating arithmetic expressions",
            prior_work=False,
            this_work=True,
            implementation="problems.expression_evaluation.ArithmeticExpressionEvaluation",
            make_problem=lambda: ArithmeticExpressionEvaluation(modulus=1_000_000_007),
            make_tree=expression_tree,
            reference=lambda t: evaluate_expression_tree(t, modulus=1_000_000_007),
            compare=lambda res, ref, tree: int(res.value) == int(ref),
        ),
        Table1Entry(
            name="Verifying the structure of XML-like documents",
            prior_work=False,
            this_work=True,
            implementation="problems.xml_validation.XMLStructureValidation",
            make_problem=lambda: XMLStructureValidation(xml_schema),
            make_tree=xml_tree,
            reference=lambda t: validate_xml_tree(t, xml_schema),
            compare=lambda res, ref, tree: bool(res.output["valid"]) == bool(ref),
            degree_reduction=False,
        ),
        Table1Entry(
            name="Subtree sum / minimum / maximum of input labels",
            prior_work=False,
            this_work=True,
            implementation="problems.subtree_aggregation.SubtreeAggregate",
            make_problem=lambda: SubtreeAggregate(op="sum"),
            make_tree=weighted_tree,
            reference=lambda t: subtree_aggregate(t, op="sum")[t.root],
            compare=_close,
        ),
    ]
    return entries


TABLE1 = table1_entries
