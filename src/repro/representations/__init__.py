"""Tree input/output representations (paper Sections 3 and 6.3).

The framework's standard representation is a rooted tree given as a list of
directed child→parent edges.  This package provides:

* dataclasses for the five representations the paper discusses
  (:mod:`~repro.representations.base`),
* host-side encoders/decoders used as ground truth
  (:mod:`~repro.representations.parentheses`,
  :mod:`~repro.representations.traversals`),
* :mod:`~repro.representations.normalize` — the MPC conversion of any
  representation into the standard one, including the distributed
  chunk-cancellation algorithm for strings of parentheses (Section 3.2),
* :mod:`~repro.representations.export` — Section 6.3: converting the standard
  representation back into the others.
"""

from repro.representations.base import (
    Representation,
    ListOfEdges,
    StringOfParentheses,
    BFSTraversal,
    DFSTraversal,
    PointersToParents,
)
from repro.representations.normalize import normalize_to_rooted_tree
from repro.representations import export, parentheses, traversals

__all__ = [
    "Representation",
    "ListOfEdges",
    "StringOfParentheses",
    "BFSTraversal",
    "DFSTraversal",
    "PointersToParents",
    "normalize_to_rooted_tree",
    "export",
    "parentheses",
    "traversals",
]
