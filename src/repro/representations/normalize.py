"""Normalising any input representation into the standard rooted edge list.

Paper Section 3.2: the standard representation used by the clustering and the
DP engine is a rooted tree given as a list of directed child→parent edges.

* BFS-traversal, DFS-traversal and pointers-to-parents already store one
  parent reference per array entry, so the conversion is local (O(1) rounds).
* A list of **undirected** edges is rooted/oriented first (O(log D) rounds;
  we use :func:`repro.mpc.treeops.orient_tree_charged`, a documented
  substitution of the rooting lemma of [SODA'23]).
* A **string of parentheses** is converted with the distributed
  chunk-cancellation algorithm of Section 3.2: every machine cancels the
  properly nested pairs inside its chunk, the per-chunk summaries
  ``(c_i, o_i)`` are exchanged, cross-chunk parents are located by a scan
  over the summaries, and the type-1/type-2 tuple matching is realised with a
  distributed group-by.  O(1) rounds overall.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple, Union

from repro.mpc.darray import DistributedArray
from repro.mpc.simulator import MPCSimulator
from repro.mpc.treeops import orient_tree_charged
from repro.representations.base import (
    BFSTraversal,
    DFSTraversal,
    ListOfEdges,
    PointersToParents,
    StringOfParentheses,
)
from repro.representations.traversals import (
    bfs_traversal_to_edges,
    dfs_traversal_to_edges,
    pointers_to_edges,
)
from repro.trees.tree import RootedTree

__all__ = [
    "normalize_to_rooted_tree",
    "parentheses_to_edges_mpc",
]

AnyRepresentation = Union[
    ListOfEdges,
    StringOfParentheses,
    BFSTraversal,
    DFSTraversal,
    PointersToParents,
    RootedTree,
]


# --------------------------------------------------------------------------- #
# Distributed parentheses matching (Section 3.2)
# --------------------------------------------------------------------------- #


def parentheses_to_edges_mpc(sim: MPCSimulator, text: str) -> List[Tuple[int, int]]:
    """Convert a parenthesis string into child→parent edges on the simulator.

    Node identifiers are the indices of the opening parentheses; the root is
    the node at index 0.  Raises ``ValueError`` on malformed input.
    """
    n = len(text)
    if n == 0:
        raise ValueError("empty parenthesis string")
    m = sim.num_machines

    # Initial placement: contiguous chunks of the string (part of the input
    # specification, costs no rounds).
    per = max(1, (n + m - 1) // m)
    chunks: List[List[Tuple[int, str]]] = [[] for _ in range(m)]
    for pos, ch in enumerate(text):
        if ch not in "()":
            raise ValueError(f"invalid character {ch!r} at position {pos}")
        chunks[min(pos // per, m - 1)].append((pos, ch))

    # ---- Local cancellation inside every chunk (no rounds). ---------------- #
    local_edges: List[Tuple[int, int]] = []
    cross_requests: List[List[Tuple[int, int]]] = [[] for _ in range(m)]  # (pos, lk)
    surviving_opens: List[List[int]] = [[] for _ in range(m)]
    summaries: List[Tuple[int, int]] = []  # (c_i, o_i)

    for i, chunk in enumerate(chunks):
        stack: List[int] = []
        surviving_closings = 0
        for pos, ch in chunk:
            if ch == "(":
                if stack:
                    local_edges.append((pos, stack[-1]))
                else:
                    cross_requests[i].append((pos, surviving_closings))
                stack.append(pos)
            else:
                if stack:
                    stack.pop()
                else:
                    surviving_closings += 1
        surviving_opens[i] = list(stack)
        summaries.append((surviving_closings, len(stack)))

    # ---- Exchange the per-chunk summaries (1 round, O(1) words each). ------ #
    def exchange(machine):
        c_i, o_i = summaries[machine.mid] if machine.mid < len(summaries) else (0, 0)
        return [(dest, ("summary", machine.mid, c_i, o_i)) for dest in range(m)]

    sim.superstep(exchange, label="parens-summaries")

    # ---- Resolve cross-chunk parents locally using the summaries. ---------- #
    type1: List[Tuple[Tuple[str, int, int], int, int]] = []
    type2: List[Tuple[Tuple[str, int, int], int, int]] = []
    root_candidates: List[int] = []

    for i in range(m):
        opens = surviving_opens[i]
        for idx, pos in enumerate(opens):
            t_right = len(opens) - 1 - idx  # number of surviving opens to my right
            type1.append((("T", i, t_right), 1, pos))

    for b in range(m):
        for pos, lk in cross_requests[b]:
            need = lk + 1
            debt = 0
            found = False
            for x in range(b - 1, -1, -1):
                c_x, o_x = summaries[x]
                avail = max(0, o_x - debt)
                if need <= avail:
                    t_right = debt + need - 1
                    type2.append((("T", x, t_right), 2, pos))
                    found = True
                    break
                need -= avail
                debt = c_x + max(0, debt - o_x)
            if not found:
                root_candidates.append(pos)

    if len(root_candidates) != 1 or root_candidates[0] != 0:
        raise ValueError(
            "malformed parenthesis string: expected exactly one root at position 0, "
            f"got roots at {root_candidates}"
        )

    # ---- Distributed matching of type-1/type-2 tuples (group-by, O(1) rounds).
    tuples = type1 + type2
    arr = DistributedArray.from_records(sim, tuples)
    grouped = arr.group_by(lambda rec: rec[0])

    def emit_edges(group):
        _, members = group
        parents = [pos for (_, typ, pos) in members if typ == 1]
        children = [pos for (_, typ, pos) in members if typ == 2]
        if children and len(parents) != 1:
            raise ValueError("malformed parenthesis string: unmatched child tuple")
        if not parents:
            return []
        p = parents[0]
        return [(c, p) for c in children]

    cross_edges = grouped.flat_map(emit_edges).collect()

    edges = local_edges + cross_edges
    expected_nodes = sum(1 for ch in text if ch == "(")
    if expected_nodes == 0 or text.count("(") != text.count(")"):
        raise ValueError("malformed parenthesis string: unbalanced")
    if len(edges) != expected_nodes - 1:
        raise ValueError(
            f"malformed parenthesis string: produced {len(edges)} edges "
            f"for {expected_nodes} nodes"
        )
    return edges


# --------------------------------------------------------------------------- #
# Dispatcher
# --------------------------------------------------------------------------- #


def normalize_to_rooted_tree(
    sim: MPCSimulator,
    rep: AnyRepresentation,
    root: Optional[Hashable] = None,
) -> RootedTree:
    """Turn any supported representation into a :class:`RootedTree`.

    The returned tree's node identifiers depend on the representation: node
    labels for edge lists and pointers, 1-based traversal ranks for BFS/DFS
    traversals, opening-parenthesis positions for parenthesis strings.
    """
    if isinstance(rep, RootedTree):
        return rep

    if isinstance(rep, ListOfEdges):
        if rep.directed:
            # Edges are already child→parent; one sort co-locates each node
            # with its incident edges (as in Section 4.2).
            arr = DistributedArray.from_records(sim, list(rep.edges))
            arr.sort_by(lambda e: _sort_key(e[1]))
            return RootedTree.from_edges(rep.edges, root=root)
        parent, chosen_root = orient_tree_charged(sim, rep.edges, root=root)
        return RootedTree.from_parent_map(parent, root=chosen_root)

    if isinstance(rep, StringOfParentheses):
        edges = parentheses_to_edges_mpc(sim, rep.text)
        if not edges:
            return RootedTree.from_parent_map({0: 0}, root=0)
        return RootedTree.from_edges(edges, root=0)

    if isinstance(rep, BFSTraversal):
        edges = bfs_traversal_to_edges(rep)
        sim.charge_rounds(1, label="traversal-decode")
        if not edges:
            return RootedTree.from_parent_map({1: 1}, root=1)
        return RootedTree.from_edges(edges, root=1)

    if isinstance(rep, DFSTraversal):
        edges = dfs_traversal_to_edges(rep)
        sim.charge_rounds(1, label="traversal-decode")
        if not edges:
            return RootedTree.from_parent_map({1: 1}, root=1)
        return RootedTree.from_edges(edges, root=1)

    if isinstance(rep, PointersToParents):
        edges = pointers_to_edges(rep)
        sim.charge_rounds(1, label="traversal-decode")
        labels = rep.node_labels()
        the_root = next(
            lbl for lbl, p in zip(labels, rep.parents) if p is None
        )
        if not edges:
            return RootedTree.from_parent_map({the_root: the_root}, root=the_root)
        return RootedTree.from_edges(edges, root=the_root)

    raise TypeError(f"unsupported representation type: {type(rep).__name__}")


def _sort_key(x: Hashable):
    return (str(type(x)), str(x))
