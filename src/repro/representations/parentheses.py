"""Host-side encoder/decoder between trees and strings of parentheses.

These single-machine reference implementations serve as ground truth for the
distributed chunk-cancellation algorithm in
:mod:`repro.representations.normalize` and are used by generators, examples
and tests.  The node ids produced by :func:`parse_parentheses` are the string
indices of the opening parentheses (as in the distributed version), so both
implementations are directly comparable.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from repro.trees.tree import RootedTree

__all__ = [
    "tree_to_parentheses",
    "parse_parentheses",
    "parentheses_to_tree",
    "is_balanced",
]


def tree_to_parentheses(tree: RootedTree) -> str:
    """Serialise a rooted tree into a properly nested parenthesis string.

    Children are emitted in the deterministic order of
    :meth:`RootedTree.children_map`, so round-tripping through
    :func:`parentheses_to_tree` preserves the shape (node ids change to
    string positions).
    """
    cm = tree.children_map()
    out: List[str] = []
    # Iterative DFS with explicit open/close events to avoid recursion limits.
    stack: List[Tuple[Hashable, bool]] = [(tree.root, False)]
    while stack:
        node, closing = stack.pop()
        if closing:
            out.append(")")
            continue
        out.append("(")
        stack.append((node, True))
        for c in reversed(cm[node]):
            stack.append((c, False))
    return "".join(out)


def is_balanced(text: str) -> bool:
    """True iff ``text`` is a single properly nested parenthesis string."""
    depth = 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                return False
            if depth == 0 and i != len(text) - 1:
                return False  # more than one top-level tree
        else:
            return False
    return depth == 0 and len(text) > 0


def parse_parentheses(text: str) -> List[Tuple[int, int]]:
    """Parse a parenthesis string into child→parent edges (reference).

    Node ids are the indices of opening parentheses.  Raises ``ValueError``
    for malformed input.
    """
    if not is_balanced(text):
        raise ValueError("input is not a single properly nested parenthesis string")
    edges: List[Tuple[int, int]] = []
    stack: List[int] = []
    for i, ch in enumerate(text):
        if ch == "(":
            if stack:
                edges.append((i, stack[-1]))
            stack.append(i)
        else:
            stack.pop()
    return edges


def parentheses_to_tree(text: str) -> RootedTree:
    """Parse a parenthesis string into a :class:`RootedTree` (reference)."""
    edges = parse_parentheses(text)
    if not edges:
        # single node "()"
        return RootedTree.from_parent_map({0: 0}, root=0)
    return RootedTree.from_edges(edges, root=0)
