"""Dataclasses for the five tree representations of paper Section 3.1.

Using the paper's example tree T (Fig. 4) with nodes 1..5 rooted at 3:

* list-of-edges:          ``[(1, 4), (2, 3), (5, 4), (4, 3)]``
* string-of-parentheses:  ``"((()())())"``
* BFS-traversal:          ``[None, 1, 1, 2, 2]`` (1-indexed parents per BFS rank)
* DFS-traversal:          ``[None, 1, 2, 2, 1]``
* pointers-to-parents:    ``[4, 3, None, 3, 4]`` (parent of node i+1 at index i)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

__all__ = [
    "Representation",
    "ListOfEdges",
    "StringOfParentheses",
    "BFSTraversal",
    "DFSTraversal",
    "PointersToParents",
]


class Representation(enum.Enum):
    """The representation kinds the normaliser accepts."""

    LIST_OF_EDGES = "list-of-edges"
    UNDIRECTED_EDGES = "undirected-edges"
    STRING_OF_PARENTHESES = "string-of-parentheses"
    BFS_TRAVERSAL = "bfs-traversal"
    DFS_TRAVERSAL = "dfs-traversal"
    POINTERS_TO_PARENTS = "pointers-to-parents"


@dataclass
class ListOfEdges:
    """Directed child→parent edges; the standard representation."""

    edges: List[Tuple[Hashable, Hashable]]
    directed: bool = True

    @property
    def kind(self) -> Representation:
        return (
            Representation.LIST_OF_EDGES if self.directed else Representation.UNDIRECTED_EDGES
        )


@dataclass
class StringOfParentheses:
    """A properly nested string of ``(`` and ``)`` (or open/close tags).

    Each opening parenthesis represents one node; the outermost pair is the
    root.  Node identifiers produced by the normaliser are the indices of the
    opening parentheses within the string.
    """

    text: str

    @property
    def kind(self) -> Representation:
        return Representation.STRING_OF_PARENTHESES

    def __len__(self) -> int:
        return len(self.text)


@dataclass
class BFSTraversal:
    """``parents[i]`` is the 1-indexed BFS rank of the parent of the node with
    BFS rank ``i + 1``; the root (rank 1) has parent ``None``."""

    parents: List[Optional[int]]

    @property
    def kind(self) -> Representation:
        return Representation.BFS_TRAVERSAL


@dataclass
class DFSTraversal:
    """Like :class:`BFSTraversal` but ranks follow a depth-first traversal."""

    parents: List[Optional[int]]

    @property
    def kind(self) -> Representation:
        return Representation.DFS_TRAVERSAL


@dataclass
class PointersToParents:
    """``parents[i]`` is the label of the parent of node ``labels[i]``; the
    root's entry is ``None``.  If ``labels`` is omitted, node ``i + 1`` is the
    label at index ``i`` (matching the paper's example)."""

    parents: List[Optional[Hashable]]
    labels: Optional[List[Hashable]] = None

    @property
    def kind(self) -> Representation:
        return Representation.POINTERS_TO_PARENTS

    def node_labels(self) -> List[Hashable]:
        if self.labels is not None:
            return list(self.labels)
        return [i + 1 for i in range(len(self.parents))]
