"""Constructing non-standard representations (paper Section 6.3).

Given the standard representation (a rooted list of edges), the paper shows
how to produce the other representations using the DP framework itself:

* **pointers-to-parents** — sort the edges by child id (O(1) rounds),
* **BFS-traversal** — compute depths (a downward accumulation, O(log D)
  rounds) and sort by depth,
* **DFS-traversal** — compute subtree sizes (upward accumulation), prefix
  sums over siblings, then DFS timestamps (a downward accumulation),
* **string-of-parentheses** — compute depths of the DFS order and emit the
  parenthesis runs locally.

The quantities (depths, subtree sizes, DFS timestamps) are exactly the
accumulation problems shipped in :mod:`repro.problems.subtree_aggregation`
and :mod:`repro.dp.accumulation`; the functions here accept an optional
``depths``/``sizes`` argument so the caller can supply framework-computed
values (the representation benchmark does), and otherwise fall back to the
host-side reference computations while charging the corresponding rounds.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional

from repro.mpc.simulator import MPCSimulator
from repro.representations.base import (
    BFSTraversal,
    DFSTraversal,
    PointersToParents,
    StringOfParentheses,
)
from repro.trees.tree import RootedTree

__all__ = [
    "to_pointers_to_parents",
    "to_bfs_traversal",
    "to_dfs_traversal",
    "to_string_of_parentheses",
    "dfs_timestamps",
]


def _charge_logD(sim: Optional[MPCSimulator], tree: RootedTree, label: str) -> None:
    if sim is None:
        return
    depth = max(tree.depths().values()) if tree.num_nodes > 1 else 1
    sim.charge_rounds(2 * int(math.ceil(math.log2(depth + 2))) + 2, label=label)


def to_pointers_to_parents(
    tree: RootedTree, sim: Optional[MPCSimulator] = None
) -> PointersToParents:
    """List-of-edges → pointers-to-parents (a single sort by child id)."""
    if sim is not None:
        sim.charge_rounds(4, label="export-pointers")
    labels = sorted(tree.nodes(), key=lambda x: (str(type(x)), str(x)))
    parents: List[Optional[Hashable]] = [
        None if v == tree.root else tree.parent[v] for v in labels
    ]
    return PointersToParents(parents=parents, labels=labels)


def to_bfs_traversal(
    tree: RootedTree,
    sim: Optional[MPCSimulator] = None,
    depths: Optional[Dict[Hashable, int]] = None,
) -> BFSTraversal:
    """List-of-edges → BFS-traversal using node depths.

    Nodes are ordered by (depth, node id); this is a valid BFS order.
    """
    if depths is None:
        depths = tree.depths()
        _charge_logD(sim, tree, "export-bfs")
    elif sim is not None:
        sim.charge_rounds(4, label="export-bfs")
    order = sorted(tree.nodes(), key=lambda v: (depths[v], str(type(v)), str(v)))
    rank = {v: i + 1 for i, v in enumerate(order)}
    parents: List[Optional[int]] = [
        None if v == tree.root else rank[tree.parent[v]] for v in order
    ]
    return BFSTraversal(parents)


def dfs_timestamps(
    tree: RootedTree, sizes: Optional[Dict[Hashable, int]] = None
) -> Dict[Hashable, int]:
    """DFS (preorder) timestamps computed the way Section 6.3 describes.

    Each node's timestamp is its parent's timestamp plus one plus the total
    size of its elder siblings' subtrees (a prefix-sum over siblings followed
    by a downward accumulation).
    """
    if sizes is None:
        sizes = tree.subtree_sizes()
    cm = tree.children_map()
    offset: Dict[Hashable, int] = {}
    for v in tree.nodes():
        acc = 0
        for c in cm[v]:
            offset[c] = acc
            acc += sizes[c]
    ts = {tree.root: 0}
    for v in tree.dfs_order_children_first():
        for c in cm[v]:
            ts[c] = ts[v] + offset[c] + 1
    return ts


def to_dfs_traversal(
    tree: RootedTree,
    sim: Optional[MPCSimulator] = None,
    sizes: Optional[Dict[Hashable, int]] = None,
) -> DFSTraversal:
    """List-of-edges → DFS-traversal via subtree sizes and DFS timestamps."""
    if sizes is None:
        _charge_logD(sim, tree, "export-dfs")
    elif sim is not None:
        sim.charge_rounds(6, label="export-dfs")
    ts = dfs_timestamps(tree, sizes)
    order = sorted(tree.nodes(), key=lambda v: ts[v])
    rank = {v: i + 1 for i, v in enumerate(order)}
    parents: List[Optional[int]] = [
        None if v == tree.root else rank[tree.parent[v]] for v in order
    ]
    return DFSTraversal(parents)


def to_string_of_parentheses(
    tree: RootedTree,
    sim: Optional[MPCSimulator] = None,
) -> StringOfParentheses:
    """List-of-edges → string-of-parentheses.

    Section 6.3: order the nodes in DFS order, compute their depths, and emit
    the parenthesis runs from consecutive depth differences.  Each machine can
    emit its part of the string locally once depths of the DFS order are
    known.
    """
    _charge_logD(sim, tree, "export-parens")
    ts = dfs_timestamps(tree)
    depths = tree.depths()
    order = sorted(tree.nodes(), key=lambda v: ts[v])

    out: List[str] = []
    for i, v in enumerate(order):
        d = depths[v]
        if i == 0:
            out.append("(")
        else:
            prev_d = depths[order[i - 1]]
            if d == prev_d + 1:
                out.append("(")
            else:
                out.append(")" * (prev_d - d + 1))
                out.append("(")
    last_d = depths[order[-1]]
    out.append(")" * (last_d + 1))
    return StringOfParentheses("".join(out))
