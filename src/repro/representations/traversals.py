"""Host-side encoders/decoders for traversal-based representations.

BFS-traversal, DFS-traversal and pointers-to-parents all store one parent
reference per node, so decoding them into the standard list-of-edges is a
purely local (zero-round) operation in the MPC model; encoding them from a
tree requires depths / DFS timestamps, which Section 6.3 of the paper computes
with the framework itself (see :mod:`repro.representations.export` and the
representation benchmarks).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro.representations.base import BFSTraversal, DFSTraversal, PointersToParents
from repro.trees.tree import RootedTree

__all__ = [
    "tree_to_bfs_traversal",
    "tree_to_dfs_traversal",
    "tree_to_pointers",
    "bfs_traversal_to_edges",
    "dfs_traversal_to_edges",
    "pointers_to_edges",
]


def tree_to_bfs_traversal(tree: RootedTree) -> BFSTraversal:
    """Encode a tree as a BFS-traversal (1-indexed parent ranks)."""
    order = tree.bfs_order()
    rank = {v: i + 1 for i, v in enumerate(order)}
    parents: List[Optional[int]] = []
    for v in order:
        parents.append(None if v == tree.root else rank[tree.parent[v]])
    return BFSTraversal(parents)


def tree_to_dfs_traversal(tree: RootedTree) -> DFSTraversal:
    """Encode a tree as a DFS-traversal (1-indexed parent ranks)."""
    order = tree.dfs_order()
    rank = {v: i + 1 for i, v in enumerate(order)}
    parents: List[Optional[int]] = []
    for v in order:
        parents.append(None if v == tree.root else rank[tree.parent[v]])
    return DFSTraversal(parents)


def tree_to_pointers(tree: RootedTree) -> PointersToParents:
    """Encode a tree as pointers-to-parents over its own node labels."""
    labels = sorted(tree.nodes(), key=lambda x: (str(type(x)), str(x)))
    parents: List[Optional[Hashable]] = []
    for v in labels:
        parents.append(None if v == tree.root else tree.parent[v])
    return PointersToParents(parents=parents, labels=labels)


def _traversal_to_edges(parents: List[Optional[int]]) -> List[Tuple[int, int]]:
    edges: List[Tuple[int, int]] = []
    roots = 0
    for i, p in enumerate(parents):
        rank = i + 1
        if p is None:
            roots += 1
            continue
        if not (1 <= p <= len(parents)):
            raise ValueError(f"parent rank {p} out of range at position {i}")
        edges.append((rank, p))
    if roots != 1:
        raise ValueError(f"expected exactly one root entry, found {roots}")
    return edges


def bfs_traversal_to_edges(rep: BFSTraversal) -> List[Tuple[int, int]]:
    """Decode a BFS-traversal into child→parent edges over ranks 1..n."""
    return _traversal_to_edges(rep.parents)


def dfs_traversal_to_edges(rep: DFSTraversal) -> List[Tuple[int, int]]:
    """Decode a DFS-traversal into child→parent edges over ranks 1..n."""
    return _traversal_to_edges(rep.parents)


def pointers_to_edges(rep: PointersToParents) -> List[Tuple[Hashable, Hashable]]:
    """Decode pointers-to-parents into child→parent edges over node labels."""
    labels = rep.node_labels()
    if len(labels) != len(rep.parents):
        raise ValueError("labels and parents must have the same length")
    edges: List[Tuple[Hashable, Hashable]] = []
    roots = 0
    label_set = set(labels)
    for lbl, p in zip(labels, rep.parents):
        if p is None:
            roots += 1
            continue
        if p not in label_set:
            raise ValueError(f"parent {p!r} of {lbl!r} is not a node label")
        edges.append((lbl, p))
    if roots != 1:
        raise ValueError(f"expected exactly one root entry, found {roots}")
    return edges
