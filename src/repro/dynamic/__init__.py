"""Incremental re-solve subsystem: point updates over the cluster hierarchy.

See :mod:`repro.dynamic.incremental` for the design notes.
"""

from repro.dynamic.incremental import (
    ConcurrentUpdateError,
    IncrementalSolver,
    IncrementalSolverGroup,
    PointUpdate,
    SolvedView,
    UpdateReport,
    edge_update,
    node_update,
)

__all__ = [
    "ConcurrentUpdateError",
    "IncrementalSolver",
    "IncrementalSolverGroup",
    "PointUpdate",
    "SolvedView",
    "UpdateReport",
    "node_update",
    "edge_update",
]
