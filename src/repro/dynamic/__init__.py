"""Incremental re-solve subsystem: point updates over the cluster hierarchy.

See :mod:`repro.dynamic.incremental` for the design notes.
"""

from repro.dynamic.incremental import (
    IncrementalSolver,
    PointUpdate,
    UpdateReport,
    edge_update,
    node_update,
)

__all__ = [
    "IncrementalSolver",
    "PointUpdate",
    "UpdateReport",
    "node_update",
    "edge_update",
]
