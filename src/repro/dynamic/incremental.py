"""Incremental re-solve of DP problems under point updates (serving path).

After ``prepare()`` + one full solve, every weight tweak or payload edit used
to pay a full bottom-up/top-down pass from scratch.  The cluster/layer
decomposition localizes the effect of a *point* update: a node payload is
read by exactly one cluster (the one absorbing its node element), an edge
payload by at most the cluster it is internal to plus the nested
indegree-one clusters it enters through — and a changed cluster summary can
only affect the chain of clusters absorbing it, whose layers strictly
increase.  A single-vertex update therefore dirties at most one cluster per
layer (the paper's O(log n) chain; cf. Italiano & Mirrokni's dynamic-MPC
framing), and the update path re-runs only those clusters' local solves.

:class:`IncrementalSolver` wraps a prepared tree plus one solved problem and
accepts batched point updates without re-clustering:

* **Partial bottom-up.**  Updates seed the clusters that own the touched
  payloads; each touched layer's dirty clusters are re-summarized as one
  batch through the same :meth:`~repro.dp.engine.DPEngine.summarize_clusters`
  path the full solve uses, so the vectorized kernels' grouped array
  programs, cached cluster plans and affine tensor decompositions are all
  reused (a weight-only edit inside one affine group re-*composes* tensors;
  it never re-enumerates the problem's scalar rules).  A re-solved cluster
  whose summary comes out bit-identical stops the chain — its parent's
  inputs did not change.
* **Partial top-down.**  Only re-solved clusters and clusters whose boundary
  (out-edge / in-edge) label changed re-derive internal labels; label
  changes propagate strictly downward through the hierarchy, so the pass
  walks exactly the affected root-to-leaf label paths.  The dense backend's
  persistent trace memo makes re-labeling an untouched cluster a pure
  replay.
* **Accounting.**  Rounds and routed words of the partial passes are
  charged under the separate ``"dp-update"`` label
  (:data:`~repro.dp.engine.DP_UPDATE_LABEL`), so benchmarks can compare an
  update's cost against the initial solve's ``"dp-pass"`` charges.

Supported updates are payload edits on existing nodes and edges
(:func:`node_update` / :func:`edge_update`) — weight changes, clause-weight
edits, tag/op/leaf-value swaps.  Structural edits (adding/removing nodes or
edges) are *not* supported: they invalidate the clustering itself, so
callers must re-run ``prepare()``.  A batch whose dirty closure covers most
of the hierarchy falls back to a full re-solve of every cluster (still
without re-clustering); :meth:`IncrementalSolver.refresh` forces that
explicitly.

Every state the solver maintains (summaries, labels, value) stays
bit-identical to a from-scratch ``solve()`` on the updated tree — the
differential fuzz suite asserts this after every step of randomized update
sequences, across tree families, the problem registry and both kernel
backends.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.clustering.model import cluster_element
from repro.core.pipeline import PipelineResult, PreparedTree, as_cluster_dp
from repro.dp.engine import DP_UPDATE_LABEL, ROUNDS_PER_LAYER, SolveResult
from repro.mpc.simulator import RoundStats
from repro.obs import DEFAULT_SIZE_BUCKETS, clock

__all__ = [
    "ConcurrentUpdateError",
    "PointUpdate",
    "SolvedView",
    "UpdateReport",
    "IncrementalSolver",
    "IncrementalSolverGroup",
    "node_update",
    "edge_update",
    "summaries_equal",
]


class ConcurrentUpdateError(RuntimeError):
    """A second update batch entered while a pass was mid-flight.

    The solver's partial passes mutate the pending-dirty set, the summary
    dict and the label dicts in place; two interleaved ``apply_updates``
    calls would corrupt them silently.  The solver therefore refuses
    overlapping entry outright instead of blocking — serialization is the
    caller's job (the serving layer funnels all batches through a single
    writer task).
    """

#: Recognised update kinds.
UPDATE_KINDS = ("node", "edge")


@dataclass(frozen=True)
class PointUpdate:
    """One payload edit.

    Attributes
    ----------
    kind:
        ``"node"`` or ``"edge"``.
    target:
        The node id, or the ``(child, parent)`` edge of the *original*
        (pre-degree-reduction) tree.
    data:
        The new payload (replaces the old one wholesale); ``None`` removes
        the payload.
    """

    kind: str
    target: Any
    data: Any = None


def node_update(v: Hashable, data: Any) -> PointUpdate:
    """Replace node ``v``'s payload (weight, clause set, tag, leaf value...)."""
    return PointUpdate("node", v, data)


def edge_update(edge: Tuple[Hashable, Hashable], data: Any) -> PointUpdate:
    """Replace edge ``(child, parent)``'s payload (weight, clause set, ...)."""
    return PointUpdate("edge", tuple(edge), data)


@dataclass
class UpdateReport:
    """What one :meth:`IncrementalSolver.apply_updates` call did.

    ``clusters_resolved`` counts bottom-up local re-solves (for a
    single-vertex update this is bounded by the number of layers),
    ``clusters_relabeled`` the top-down label re-derivations, and
    ``rounds_charged`` / ``words_charged`` the update's ``"dp-update"``
    accounting.  ``full_resolve`` marks the bulk-update fallback where every
    cluster was re-solved.
    """

    updates: int
    clusters_resolved: int = 0
    clusters_relabeled: int = 0
    summaries_changed: int = 0
    edges_relabeled: int = 0
    layers_resolved: int = 0
    layers_relabeled: int = 0
    rounds_charged: int = 0
    words_charged: int = 0
    value: Any = None
    value_changed: bool = False
    root_label_changed: bool = False
    full_resolve: bool = False
    seconds: float = 0.0
    dirty_seed_clusters: Tuple[int, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class SolvedView:
    """An immutable snapshot of one solved problem at a batch boundary.

    Label mappings are wrapped in read-only proxies over dicts that are
    never mutated again, so a view handed to a concurrent reader (the
    serving layer's snapshot store) stays bit-stable while the solver
    applies further batches.  Labels are projected back to *original*
    (pre-degree-reduction) edges, exactly like
    :meth:`IncrementalSolver.as_pipeline_result`.
    """

    problem: str
    value: Any
    root_label: Any
    node_labels: Mapping[Hashable, Any]
    edge_labels: Mapping[Tuple[Hashable, Hashable], Any]
    output: Any
    updates_applied: int


def summaries_equal(a: Any, b: Any) -> bool:
    """Structural bit-equality of two cluster summaries.

    Used to prune the dirty chain: a re-solved cluster whose summary equals
    the previous one cannot change its parent.  The comparison is
    conservative — anything it cannot prove equal (unknown types without
    ``__eq__``) counts as changed, which costs extra re-solves but never
    correctness.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        if a.keys() != b.keys():
            return False
        return all(summaries_equal(a[k], b[k]) for k in a)
    if isinstance(a, np.ndarray):
        return a.shape == b.shape and a.dtype == b.dtype and bool(np.array_equal(a, b))
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(summaries_equal(x, y) for x, y in zip(a, b))
    try:
        return bool(a == b)
    except Exception:
        return False


class IncrementalSolver:
    """A solved DP problem on a prepared tree that accepts point updates.

    Parameters
    ----------
    prepared:
        The :class:`~repro.core.pipeline.PreparedTree` (clustering is reused
        unchanged for the solver's whole lifetime).
    problem:
        Any problem type :func:`~repro.core.pipeline.as_cluster_dp` accepts.
    backend:
        Finite-state backend override (defaults to the deployment's
        ``dp_backend``).
    full_resolve_threshold:
        When a batch's dirty closure covers at least this fraction of all
        clusters, fall back to re-solving every cluster (skipping the
        per-cluster change tracking, whose bookkeeping would only add
        overhead).  ``1.0`` keeps the partial path always.
    fault_plan:
        Optional :class:`~repro.mpc.exec.faults.FaultPlan` consulted at the
        ``"update-layer"`` site once per bottom-up layer of each update
        pass; a matching entry raises
        :class:`~repro.mpc.exec.faults.InjectedFault` mid-pass.  This is
        the chaos hook for testing the pending-dirty heal path — payloads
        are already written when a pass dies, so the next batch must fold
        the pending chains back in.  ``None`` (the default) injects
        nothing.
    cache_entries:
        LRU bound on the dense backend's payload-value-keyed rule caches
        (overrides the ``REPRO_DP_CACHE_ENTRIES`` default); ``None`` keeps
        the environment default.
    trace_entries:
        LRU bound on the dense backend's bottom-up trace memo; ``None``
        keeps it bounded only by the clustering's cluster count.

    The constructor runs the initial full solve; its statistics are kept in
    :attr:`initial_stats` for update-vs-full comparisons.

    Notes
    -----
    All of this solver's passes — the initial solve, partial re-solves and
    :meth:`refresh` — run inline even when the deployment selects
    ``exec_backend="process"``: the update path re-reads the solver's
    driver-side memo state (bottom-up traces, rule-tensor caches), which a
    worker-side solve would not populate.  Full solves through
    :func:`~repro.core.pipeline.solve_on` are unaffected.
    """

    def __init__(
        self,
        prepared: PreparedTree,
        problem: Any,
        backend: Optional[str] = None,
        full_resolve_threshold: float = 0.6,
        fault_plan: Optional[Any] = None,
        cache_entries: Optional[int] = None,
        trace_entries: Optional[int] = None,
    ):
        if not (0.0 < full_resolve_threshold <= 1.0):
            raise ValueError("full_resolve_threshold must be in (0, 1]")
        self.prepared = prepared
        self._fault_plan = fault_plan
        self.problem = problem
        self.solver = as_cluster_dp(problem, backend=backend or prepared.sim.config.dp_backend)
        # LRU bounds on the dense backend's payload-value-keyed caches
        # (``cache_entries``) and bottom-up trace memo (``trace_entries``).
        # A long-running serving solver needs these to keep flat memory; the
        # python backend has no such caches, so the knobs are a no-op there.
        if cache_entries is not None or trace_entries is not None:
            dense = getattr(self.solver, "_dense", None)
            if dense is not None:
                dense.set_cache_limits(
                    value_entries=cache_entries, trace_entries=trace_entries
                )
        self.engine = prepared.engine()
        # The full solves run inline even under exec_backend="process": the
        # update path re-reads this solver's driver-side memos (traces,
        # rule-tensor caches), which a worker-side solve would not populate.
        self.engine.exec_enabled = False
        self.obs = prepared.sim.obs
        self.hc = prepared.clustering
        self.full_resolve_threshold = full_resolve_threshold
        self._owner = self.hc.parent_cluster_of_element()
        self.updates_applied = 0
        #: Dirty clusters of a batch whose solve phase raised mid-pass (a
        #: payload the problem's rules reject, a strict-mode capacity
        #: violation).  Payloads are written before the passes run, so on
        #: such a failure the solved state no longer reflects the tree; the
        #: pending set is folded into the next batch's seeds so repairing
        #: the payload and re-applying restores consistency, and the result
        #: views refuse to serve stale state in between.
        self._pending_dirty: Set[int] = set()
        # Re-entrancy guard (see ConcurrentUpdateError): _begin_apply flips
        # the flag atomically, so overlapping apply calls — a second thread,
        # or a callback re-entering from inside a pass — fail fast instead
        # of corrupting the pending-dirty set mid-flight.
        self._apply_mutex = threading.Lock()
        self._apply_active = False
        self._solve_initial()

    # ------------------------------------------------------------------ #
    # Initial solve / full fallback
    # ------------------------------------------------------------------ #

    def _solve_initial(self) -> None:
        sim = self.prepared.sim
        snap = sim.snapshot()
        t0 = clock.now()
        with self.obs.trace(
            "incremental.initial_solve",
            problem=str(getattr(self.problem, "name", type(self.problem).__name__)),
        ):
            res = self.engine.solve(self.solver)
        self.initial_solve_seconds = clock.now() - t0
        #: ``"dp-pass"`` rounds/words of the initial full solve.
        self.initial_stats: RoundStats = sim.stats.diff(snap)
        self.summaries: Dict[int, Any] = res.summaries
        self.value = res.value
        self.root_label = res.root_label
        self.edge_labels: Dict[Tuple[Hashable, Hashable], Any] = res.edge_labels
        self.node_labels: Dict[Hashable, Any] = res.node_labels
        self.layers = res.layers

    def refresh(self) -> UpdateReport:
        """Full re-solve of every cluster against the current payloads.

        The explicit fallback for callers who mutated tree payloads behind
        the solver's back; clusterings never change, so this is still
        cheaper than a new ``prepare()``.  Charged under ``"dp-update"``.
        Every cluster's prefetched payload plan is dropped — out-of-band
        mutations bypass the per-update invalidation — and so are the
        solver's payload-value-keyed memos (the dense backend's trace memo
        and rule-tensor caches), making ``refresh()`` the memory release
        valve of a long-lived serving solver: the caches otherwise
        accumulate one entry per *distinct* payload value ever seen.  The
        full re-solve repopulates the traces; tensors rebuild on demand.
        """
        for cluster in self.hc.clusters.values():
            cluster.invalidate_payload_plans()
        dense = getattr(self.solver, "_dense", None)
        if dense is not None:
            dense.forget_traces()
            dense.tensors.clear_value_caches()
        self._bump_exec_epoch()
        return self._apply([], force_full=True)

    def _bump_exec_epoch(self) -> None:
        """Invalidate exec-worker caches of this clustering's tree payloads.

        The process execution backend (:mod:`repro.mpc.exec`) caches the
        pickled clustering+payload state in its workers keyed by a payload
        epoch; any payload write must advance it so a later full solve
        re-ships fresh state instead of solving against stale payloads.
        """
        hc = self.hc
        hc._exec_payload_epoch = getattr(hc, "_exec_payload_epoch", 0) + 1

    # ------------------------------------------------------------------ #
    # Update entry points
    # ------------------------------------------------------------------ #

    def apply_updates(self, updates: Sequence[PointUpdate]) -> UpdateReport:
        """Apply a batch of payload edits and restore the solved state.

        Raises :class:`ConcurrentUpdateError` if another batch is mid-flight
        (the solver never blocks; serialization is the caller's job).
        """
        return self._apply(list(updates), force_full=False)

    def validate(self, updates: Sequence[PointUpdate]) -> None:
        """Raise on any unsupported update descriptor, writing nothing.

        The same up-front check :meth:`apply_updates` runs; the serving
        layer uses it to reject a bad submission *before* it is coalesced
        into a batch with other clients' updates.
        """
        for up in updates:
            self._validate(up)

    def update_node(self, v: Hashable, data: Any) -> UpdateReport:
        """Convenience: one node payload edit."""
        return self.apply_updates([node_update(v, data)])

    def update_edge(self, edge: Tuple[Hashable, Hashable], data: Any) -> UpdateReport:
        """Convenience: one edge payload edit."""
        return self.apply_updates([edge_update(edge, data)])

    # ------------------------------------------------------------------ #
    # Payload application
    # ------------------------------------------------------------------ #

    def _set_payload(self, store: Dict[Any, Any], key: Any, data: Any) -> None:
        if data is None:
            store.pop(key, None)
        else:
            store[key] = data

    def _validate(self, up: PointUpdate) -> None:
        """Raise on an unsupported update *before* any payload is written.

        The whole batch is validated up front so a bad descriptor can never
        leave the solver half-updated (payloads written, state not re-solved).
        """
        original = self.prepared.original_tree
        if up.kind == "node":
            if up.target in self.prepared.reduction.aux_nodes:
                raise KeyError(
                    f"node {up.target!r} is an auxiliary degree-reduction node; only "
                    "original tree nodes can carry payloads"
                )
            if up.target not in original.parent:
                raise KeyError(f"node {up.target!r} is not a node of the prepared tree")
        elif up.kind == "edge":
            child, parent = up.target
            if child == original.root or original.parent.get(child) != parent:
                raise KeyError(
                    f"edge {up.target!r} is not a (child, parent) edge of the "
                    "prepared tree"
                )
        else:
            raise ValueError(
                f"unsupported update kind {up.kind!r}; supported kinds are "
                f"{UPDATE_KINDS} (structural changes require a new prepare())"
            )

    def _wants_child_seeds(self) -> bool:
        """Whether this problem's rules read a node's payload from its children."""
        return getattr(self.problem, "update_scope", "node") == "node+children"

    def _apply_payload(self, up: PointUpdate, want_children: bool) -> Tuple[Set[int], Set[int]]:
        """Write one (validated) update's payload; return ``(seeds, child_seeds)``.

        ``child_seeds`` is the extra dirty set for problems declaring
        ``update_scope = "node+children"`` (XML validation looks up the
        parent's tag while evaluating a child); it is only computed when
        ``want_children`` is set, and callers whose problem does not read
        child-side payloads simply drop it.  The split lets a multi-problem
        group write payloads *once* and hand each member the seed scope its
        problem needs.
        """
        hc = self.hc
        reduced = self.prepared.tree
        original = self.prepared.original_tree
        child_seeds: Set[int] = set()
        if up.kind == "node":
            v = up.target
            self._set_payload(original.node_data, v, up.data)
            self._set_payload(reduced.node_data, v, up.data)
            owner = hc.node_owner(v)
            hc.clusters[owner].invalidate_payload_plans()
            # Auxiliary nodes are transparent: a real child below an
            # auxiliary chain still reads the original parent's payload.
            if want_children:
                aux = self.prepared.reduction.aux_nodes
                stack = list(reduced.children(v))
                while stack:
                    c = stack.pop()
                    if c in aux:
                        stack.extend(reduced.children(c))
                    else:
                        cid = hc.node_owner(c)
                        hc.clusters[cid].invalidate_payload_plans()
                        child_seeds.add(cid)
            return {owner}, child_seeds
        if up.kind == "edge":
            child, parent = up.target
            # Degree reduction may have rerouted the edge through an
            # auxiliary parent; the payload lives on the reduced edge whose
            # child endpoint is the original child.
            red_edge = (child, reduced.parent[child])
            self._set_payload(original.edge_data, (child, parent), up.data)
            self._set_payload(reduced.edge_data, red_edge, up.data)
            owner = hc.edge_internal_owner()[red_edge]
            hc.clusters[owner].invalidate_payload_plans()
            # Nested indegree-one clusters read the edge as their incoming
            # edge (the innermost applies its transition constraint); they
            # are dirty too.  Their plans never cache the in-edge payload.
            return {owner, *hc.in_edge_owners().get(red_edge, ())}, child_seeds
        raise AssertionError(f"update kind {up.kind!r} escaped _validate")

    # ------------------------------------------------------------------ #
    # The partial passes
    # ------------------------------------------------------------------ #

    def _begin_apply(self) -> None:
        """Claim the solver for one batch; raise if one is already mid-flight."""
        with self._apply_mutex:
            if self._apply_active:
                raise ConcurrentUpdateError(
                    "an update batch is already being applied to this "
                    "IncrementalSolver; overlapping apply calls would corrupt "
                    "the pending-dirty set.  Serialize batches (the serving "
                    "layer's batcher does this) instead of calling apply "
                    "concurrently."
                )
            self._apply_active = True

    def _end_apply(self) -> None:
        with self._apply_mutex:
            self._apply_active = False

    def _apply(self, updates: List[PointUpdate], force_full: bool) -> UpdateReport:
        self._begin_apply()
        try:
            t0 = clock.now()
            for up in updates:
                self._validate(up)
            want_children = self._wants_child_seeds()
            seeds: Set[int] = set()
            for up in updates:
                base, children = self._apply_payload(up, want_children)
                seeds |= base
                seeds |= children
            if updates:
                self._bump_exec_epoch()
            self.updates_applied += len(updates)
            return self._resolve_batch(seeds, len(updates), force_full, t0)
        finally:
            self._end_apply()

    def _resolve_batch(
        self,
        seeds: Set[int],
        num_updates: int,
        force_full: bool,
        t0: Optional[float] = None,
    ) -> UpdateReport:
        """Re-solve the dirty chains seeded by an already-written batch.

        The second half of :meth:`_apply`, split out so a multi-problem
        group (:class:`IncrementalSolverGroup`) can write a batch's payloads
        and compute its seed set *once* and then run only this phase per
        member.  Callers must hold the apply guard (:meth:`_begin_apply`).
        """
        sim = self.prepared.sim
        hc = self.hc
        obs = self.obs
        if t0 is None:
            t0 = clock.now()
        # Payloads a failed earlier batch already wrote still need their
        # chains re-solved; fold them in so repair-and-reapply heals.  The
        # failed pass may have written some of its chain summaries before
        # raising, so while healing the chain-pruning equality test is
        # unsound — a re-solved summary can equal the *poisoned* baseline
        # the failed pass stored while the ancestors above it still reflect
        # the old payload.  Heal with pruning disabled: the pending chains
        # re-solve all the way to the final cluster.
        healing = bool(self._pending_dirty)
        seeds = set(seeds) | self._pending_dirty
        report = UpdateReport(updates=num_updates, dirty_seed_clusters=tuple(sorted(seeds)))

        full = force_full
        if not full and seeds:
            closure = set(seeds)
            for cid in seeds:
                closure.update(hc.parent_chain(cid))
            if len(closure) >= self.full_resolve_threshold * len(hc.clusters):
                full = True
        if full:
            report.full_resolve = True
            seeds = {cid for layer in hc.layers for cid in layer}
        if not seeds:
            report.value = self.value
            report.seconds = clock.now() - t0
            self._observe_report(report)
            return report

        snap = sim.snapshot()
        self._pending_dirty = set(seeds)
        with obs.trace(
            "incremental.resolve",
            seeds=len(seeds),
            updates=num_updates,
            full=full,
            healing=healing,
        ) as span:
            resolved = self._partial_bottom_up(
                seeds, skip_pruning=full or healing, report=report
            )
            self._partial_top_down(resolved, report)
            span.set(
                resolved=report.clusters_resolved,
                relabeled=report.clusters_relabeled,
            )
        self._pending_dirty = set()
        diff = sim.stats.diff(snap)
        report.rounds_charged = diff.charged_by_label.get(DP_UPDATE_LABEL, 0)
        report.words_charged = diff.charged_words_by_label.get(DP_UPDATE_LABEL, 0)
        report.value = self.value
        report.seconds = clock.now() - t0
        self._observe_report(report)
        return report

    def _observe_report(self, report: UpdateReport) -> None:
        """Fold one batch's dirty-chain stats into the run's metrics.

        ``pruned`` counts re-solved clusters whose summary came out
        bit-identical — the chains the equality test stopped.
        """
        obs = self.obs
        if not obs.enabled:
            return
        m = obs.metrics
        m.counter(
            "repro_update_batches_total",
            mode="full" if report.full_resolve else "partial",
        ).inc()
        m.histogram("repro_update_seconds").observe(report.seconds)
        m.histogram("repro_update_batch_updates", DEFAULT_SIZE_BUCKETS).observe(
            report.updates
        )
        pruned = max(0, report.clusters_resolved - report.summaries_changed)
        m.counter("repro_update_clusters_total", stat="resolved").inc(
            report.clusters_resolved
        )
        m.counter("repro_update_clusters_total", stat="pruned").inc(pruned)
        m.counter("repro_update_clusters_total", stat="relabeled").inc(
            report.clusters_relabeled
        )
        self.engine.export_kernel_metrics(self.solver)

    def _partial_bottom_up(
        self, seeds: Set[int], skip_pruning: bool, report: UpdateReport
    ) -> Set[int]:
        """Re-summarize the dirty chain; return the set of re-solved cids."""
        hc = self.hc
        owner = self._owner
        pending: Dict[int, Set[int]] = {}
        for cid in seeds:
            pending.setdefault(hc.clusters[cid].layer, set()).add(cid)

        resolved: Set[int] = set()
        for layer in range(1, hc.num_layers + 1):
            cids = pending.pop(layer, None)
            if not cids:
                continue
            clusters = [hc.clusters[cid] for cid in sorted(cids)]
            if self._fault_plan is not None:
                # Chaos hook: a matching plan entry raises InjectedFault here,
                # after payloads were written but before this layer's chains
                # re-solve — exactly the window the pending-dirty heal covers.
                self._fault_plan.check_site("update-layer")
            old = None if skip_pruning else {c.cid: self.summaries[c.cid] for c in clusters}
            # Rounds/words are charged on the simulator under "dp-update";
            # _apply reads the per-label diff back into the report.
            self.engine.summarize_clusters(
                self.solver, self.summaries, {layer: clusters}, label=DP_UPDATE_LABEL
            )
            report.layers_resolved += 1
            resolved.update(c.cid for c in clusters)
            for c in clusters:
                if c.cid == hc.final_cluster_id:
                    report.summaries_changed += 1
                    continue
                if old is not None and summaries_equal(old[c.cid], self.summaries[c.cid]):
                    continue  # chain pruned: the parent's inputs are unchanged
                report.summaries_changed += 1
                parent = owner[cluster_element(c.cid)]
                pending.setdefault(hc.clusters[parent].layer, set()).add(parent)
        report.clusters_resolved = len(resolved)
        return resolved

    def _partial_top_down(self, resolved: Set[int], report: UpdateReport) -> None:
        hc = self.hc
        sim = self.prepared.sim
        final_cid = hc.final_cluster_id

        if final_cid in resolved:
            ctx = self.engine.context(hc.final_cluster, self.summaries)
            new_root_label, new_value = self.solver.label_virtual_root(
                ctx, self.summaries[final_cid]
            )
            report.value_changed = not summaries_equal(new_value, self.value)
            report.root_label_changed = not summaries_equal(new_root_label, self.root_label)
            self.value = new_value
            self.root_label = new_root_label

        if not self.solver.produces_labels:
            return
        if report.root_label_changed:
            self.node_labels[hc.tree.root] = self.root_label

        deps = hc.boundary_dependents()
        relabel: Dict[int, Set[int]] = {}
        for cid in resolved:
            relabel.setdefault(hc.clusters[cid].layer, set()).add(cid)

        sizer = sim.word_size
        for layer in range(hc.num_layers, 0, -1):
            cids = relabel.pop(layer, None)
            if not cids:
                continue
            layer_words = 0
            for cid in sorted(cids):
                cluster = hc.clusters[cid]
                out_label = (
                    self.root_label if cid == final_cid else self.edge_labels[cluster.out_edge]
                )
                in_label = (
                    self.edge_labels[cluster.in_edge] if cluster.in_edge is not None else None
                )
                ctx = self.engine.context(cluster, self.summaries)
                labels = self.solver.assign_internal_labels(ctx, out_label, in_label)
                report.clusters_relabeled += 1
                for child_e, _parent_e, edge in cluster.internal_edges:
                    lab = labels[child_e]
                    layer_words += sizer(lab)
                    if summaries_equal(self.edge_labels[edge], lab):
                        continue
                    self.edge_labels[edge] = lab
                    self.node_labels[edge[0]] = lab
                    report.edges_relabeled += 1
                    # Boundary dependents sit at strictly lower layers, so
                    # the descending sweep picks them up later this pass.
                    for dep in deps.get(edge, ()):
                        relabel.setdefault(hc.clusters[dep].layer, set()).add(dep)
            sim.charge_rounds(ROUNDS_PER_LAYER, label=DP_UPDATE_LABEL)
            sim.charge_words(layer_words, label=DP_UPDATE_LABEL)
            report.layers_relabeled += 1

    # ------------------------------------------------------------------ #
    # Result views
    # ------------------------------------------------------------------ #

    def solve_result(self) -> SolveResult:
        """The current solved state as a :class:`~repro.dp.engine.SolveResult`.

        The label dicts are *snapshots*: results stay valid after further
        updates, and caller-side mutation cannot corrupt the solver.
        Raises when a failed update batch left the state stale.
        """
        if self._pending_dirty:
            raise RuntimeError(
                "IncrementalSolver state is stale: a previous update batch "
                "failed after writing payloads.  Repair the offending payload "
                "and re-apply, or call refresh()."
            )
        edge_labels = dict(self.edge_labels)
        output = self.solver.extract(self.hc.tree, edge_labels, self.root_label, self.value)
        return SolveResult(
            value=self.value,
            root_label=self.root_label,
            edge_labels=edge_labels,
            node_labels=dict(self.node_labels),
            output=output,
            summaries=dict(self.summaries),
            rounds=self.initial_stats.charged_rounds,
            layers=self.layers,
        )

    def as_pipeline_result(self) -> PipelineResult:
        """The current solved state, shaped exactly like ``solve()``'s result.

        Labels of the degree-reduced tree are projected back to original
        edges the same way :func:`~repro.core.pipeline.solve_on` does, so a
        result obtained through any number of updates compares field by
        field against a from-scratch solve of the updated tree.
        """
        prepared = self.prepared
        res = self.solve_result()
        edge_labels = res.edge_labels
        node_labels = res.node_labels
        if not prepared.reduction.is_identity and res.edge_labels:
            edge_labels = prepared.reduction.project_labels(res.edge_labels)
            node_labels = {c: lab for (c, _p), lab in edge_labels.items()}
            node_labels[prepared.original_tree.root] = res.root_label
        stats = prepared.sim.stats
        rounds = {
            "normalization": prepared.normalization_stats.total_rounds,
            "clustering": prepared.clustering_stats.total_rounds,
            "dp": self.initial_stats.total_rounds,
            "dp-update": stats.charged_by_label.get(DP_UPDATE_LABEL, 0),
        }
        return PipelineResult(
            value=res.value,
            output=res.output,
            root_label=res.root_label,
            edge_labels=edge_labels,
            node_labels=node_labels,
            solve_result=res,
            prepared=prepared,
            rounds=rounds,
        )

    def view(self) -> SolvedView:
        """The current solved state as an immutable :class:`SolvedView`.

        The cheap snapshot primitive of the serving layer: label dicts are
        copied once and frozen behind read-only proxies, so the view stays
        bit-stable under later updates and cannot be used to corrupt the
        solver.  Labels are projected to original edges like
        :meth:`as_pipeline_result`.  Raises like :meth:`solve_result` when a
        failed batch left the state stale.
        """
        if self._pending_dirty:
            raise RuntimeError(
                "IncrementalSolver state is stale: a previous update batch "
                "failed after writing payloads.  Repair the offending payload "
                "and re-apply, or call refresh()."
            )
        prepared = self.prepared
        edge_labels = dict(self.edge_labels)
        output = self.solver.extract(self.hc.tree, edge_labels, self.root_label, self.value)
        node_labels = dict(self.node_labels)
        if not prepared.reduction.is_identity and edge_labels:
            edge_labels = prepared.reduction.project_labels(edge_labels)
            node_labels = {c: lab for (c, _p), lab in edge_labels.items()}
            node_labels[prepared.original_tree.root] = self.root_label
        return SolvedView(
            problem=str(getattr(self.problem, "name", type(self.problem).__name__)),
            value=self.value,
            root_label=self.root_label,
            node_labels=MappingProxyType(node_labels),
            edge_labels=MappingProxyType(edge_labels),
            output=output,
            updates_applied=self.updates_applied,
        )


class IncrementalSolverGroup:
    """Several problems served incrementally over one shared prepared tree.

    The multi-problem serving mode (``solve_many``-style): each registered
    problem gets its own :class:`IncrementalSolver` — its own summaries,
    labels and kernel caches — but a batch of point updates is validated
    once, written to the shared tree once, and its dirty *seed* set (owner
    clusters, payload-plan invalidation, child-scope expansion, exec-epoch
    bump) is computed once for the whole group instead of once per problem.
    Each member then re-solves only its own chains from those seeds; the
    summary-equality pruning stays per-problem, so a member whose rules
    ignore the touched payload stops its chain immediately.

    Failure containment mirrors the single-problem heal path: if a member's
    resolve raises mid-batch, that member and every member the failure
    skipped get the batch's seeds folded into their pending-dirty set, so
    the next (repaired) batch heals them; members that already resolved are
    consistent and unaffected.

    Parameters are those of :class:`IncrementalSolver`; ``problems`` is a
    sequence of problem instances with unique ``name`` attributes.
    """

    def __init__(
        self,
        prepared: PreparedTree,
        problems: Sequence[Any],
        backend: Optional[str] = None,
        **solver_kwargs: Any,
    ):
        problems = list(problems)
        if not problems:
            raise ValueError("IncrementalSolverGroup needs at least one problem")
        names: List[str] = []
        for i, p in enumerate(problems):
            name = str(getattr(p, "name", f"problem-{i}"))
            if name in names:
                raise ValueError(
                    f"duplicate problem name {name!r} in the group; results are "
                    "keyed by name, so each registered problem needs a unique one"
                )
            names.append(name)
        self.prepared = prepared
        self.solvers: Dict[str, IncrementalSolver] = {
            name: IncrementalSolver(prepared, p, backend=backend, **solver_kwargs)
            for name, p in zip(names, problems)
        }
        self._lead = next(iter(self.solvers.values()))
        self.updates_applied = 0

    @property
    def problems(self) -> Tuple[str, ...]:
        """The registered problem names, in registration order."""
        return tuple(self.solvers)

    def solver(self, problem: Optional[str] = None) -> IncrementalSolver:
        """The member solver for ``problem`` (defaults to a sole member)."""
        if problem is None:
            if len(self.solvers) != 1:
                raise ValueError(
                    f"group serves {len(self.solvers)} problems "
                    f"{self.problems!r}; name one"
                )
            return self._lead
        try:
            return self.solvers[problem]
        except KeyError:
            raise KeyError(
                f"unknown problem {problem!r}; registered: {self.problems!r}"
            ) from None

    def validate(self, updates: Sequence[PointUpdate]) -> None:
        """Raise on any unsupported update descriptor, writing nothing."""
        self._lead.validate(updates)

    def view(self, problem: Optional[str] = None) -> SolvedView:
        """Immutable snapshot of one member's solved state."""
        return self.solver(problem).view()

    def views(self) -> Dict[str, SolvedView]:
        """Immutable snapshots of every member, keyed by problem name."""
        return {name: s.view() for name, s in self.solvers.items()}

    def refresh(self) -> Dict[str, UpdateReport]:
        """Full re-solve of every member against the current payloads."""
        return {name: s.refresh() for name, s in self.solvers.items()}

    def apply_updates(self, updates: Sequence[PointUpdate]) -> Dict[str, UpdateReport]:
        """Apply one batch to every member; return per-problem reports.

        Validation, payload writes, payload-plan invalidation and the
        exec-epoch bump run once; only the per-problem chain re-solve is
        repeated.  Raises :class:`ConcurrentUpdateError` if any member has a
        batch mid-flight (all member guards are claimed for the duration, so
        a group batch and a direct member apply can never interleave).
        """
        updates = list(updates)
        members = list(self.solvers.items())
        acquired: List[IncrementalSolver] = []
        try:
            for _name, m in members:
                m._begin_apply()
                acquired.append(m)
        except ConcurrentUpdateError:
            for m in acquired:
                m._end_apply()
            raise
        try:
            lead = self._lead
            for up in updates:
                lead._validate(up)
            want_children = any(m._wants_child_seeds() for _name, m in members)
            base_seeds: Set[int] = set()
            child_seeds: Set[int] = set()
            for up in updates:
                base, children = lead._apply_payload(up, want_children)
                base_seeds |= base
                child_seeds |= children
            if updates:
                lead._bump_exec_epoch()  # shared clustering: one bump covers all
            self.updates_applied += len(updates)

            reports: Dict[str, UpdateReport] = {}
            entered = 0
            try:
                for i, (name, m) in enumerate(members):
                    entered = i
                    seeds = set(base_seeds)
                    if m._wants_child_seeds():
                        seeds |= child_seeds
                    m.updates_applied += len(updates)
                    reports[name] = m._resolve_batch(seeds, len(updates), force_full=False)
                return reports
            except BaseException:
                # The raising member's _resolve_batch left its own pending
                # set; members the failure skipped never saw these seeds, so
                # mark them pending too — the next batch heals everyone.
                for name, m in members[entered:]:
                    seeds = set(base_seeds)
                    if m._wants_child_seeds():
                        seeds |= child_seeds
                    m._pending_dirty |= seeds
                raise
        finally:
            for m in acquired:
                m._end_apply()
