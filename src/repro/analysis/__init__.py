"""mpclint — AST static analysis of this repository's MPC disciplines.

The test suite samples the repo's correctness invariants; this package
machine-checks the ones that hold *by construction only if every edit keeps
the discipline*: data movement must be word/round-charged through the
simulator, shared-memory views must not outlive their segment, payload
mutators must invalidate the caches baked from payloads, worker-reachable
code must stay free of driver state, extremum folds must handle empty record
sets, and every ``backend``-style dispatch must cover the full literal set
``MPCConfig`` declares.  Each rule names the historical bug class of this
repository it encodes — see ``docs/ANALYSIS.md``.

Run it as ``python -m repro.analysis src/`` (or ``python tools/mpclint.py``
without installing).  The package is stdlib-only so the CI lint job needs no
runtime dependencies.
"""

from repro.analysis.core import (
    Finding,
    ProjectRule,
    Report,
    Rule,
    RuleMeta,
    all_rules,
    register,
    rule_by_name,
)
from repro.analysis.engine import run_analysis

__all__ = [
    "Finding",
    "Report",
    "Rule",
    "ProjectRule",
    "RuleMeta",
    "register",
    "all_rules",
    "rule_by_name",
    "run_analysis",
]
