"""Parsed-source model handed to rules: modules, parent links, AST helpers.

A :class:`Project` owns every analyzed file; each Python file becomes a
:class:`ModuleContext` carrying its AST, source lines, per-node parent links
and the dotted module name.  The module name is resolved from the package
structure on disk (walking up through ``__init__.py`` directories), so rules
can scope themselves to e.g. ``repro.mpc`` without caring where the source
tree is checked out.

Fixture files (the analyzer's own test corpus) are not importable packages;
they declare their pretend module with a magic first-lines comment::

    # mpclint: module=repro.mpc.some_helper

which overrides the filesystem-derived name.  This is also the escape hatch
for vendored single files.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["ModuleContext", "Project", "call_name", "attr_chain", "has_empty_guard"]

_MODULE_OVERRIDE = re.compile(r"#\s*mpclint:\s*module=([\w.]+)")


def resolve_module_name(path: Path) -> str:
    """Dotted module name of ``path`` from its ``__init__.py`` ancestry."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class ModuleContext:
    """One analyzed Python source file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    module_name: str
    lines: List[str] = field(default_factory=list)
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(default=None, repr=False)

    @classmethod
    def parse(cls, path: Path, display_path: str) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        name = resolve_module_name(path)
        for line in source.splitlines()[:5]:
            m = _MODULE_OVERRIDE.search(line)
            if m:
                name = m.group(1)
                break
        return cls(
            path=path,
            display_path=display_path,
            source=source,
            tree=tree,
            module_name=name,
            lines=source.splitlines(),
        )

    # -- navigation ------------------------------------------------------- #

    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent links over the whole AST (built once)."""
        if self._parents is None:
            links: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    links[child] = parent
            self._parents = links
        return self._parents

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents().get(node)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        cur = self.parent_of(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parent_of(cur)
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        cur = self.parent_of(node)
        while cur is not None:
            if isinstance(cur, ast.ClassDef):
                return cur
            cur = self.parent_of(cur)
        return None

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def in_scope(self, prefixes: Sequence[str]) -> bool:
        """Whether this module falls under any of the dotted ``prefixes``."""
        name = self.module_name
        return any(name == p or name.startswith(p + ".") for p in prefixes)


@dataclass
class Project:
    """Every file of one analyzer run."""

    root: Path
    modules: List[ModuleContext] = field(default_factory=list)
    #: Non-Python files the run was pointed at (none today; project rules
    #: locate docs/config files through ``root`` instead).
    other_files: List[Path] = field(default_factory=list)

    def module(self, name: str) -> Optional[ModuleContext]:
        for m in self.modules:
            if m.module_name == name:
                return m
        return None

    def modules_under(self, prefix: str) -> List[ModuleContext]:
        return [m for m in self.modules if m.in_scope([prefix])]


# --------------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------------- #


def attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute/name chain, e.g. ``sim.config.dp_backend``.

    Returns ``None`` when the chain roots in anything but a plain name
    (calls, subscripts, literals).
    """
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The called function's terminal name (``foo`` for both ``foo()`` and
    ``obj.foo()``), or ``None`` for computed callees."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _guard_matches(test: ast.expr, names: set) -> bool:
    """Whether ``test`` is an emptiness test of one of ``names``.

    Recognized shapes: ``not x``, ``len(x) == 0``, ``not len(x)``.
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = test.operand
        if isinstance(inner, ast.Name) and inner.id in names:
            return True
        if (
            isinstance(inner, ast.Call)
            and call_name(inner) == "len"
            and inner.args
            and isinstance(inner.args[0], ast.Name)
            and inner.args[0].id in names
        ):
            return True
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, (right,) = test.left, tuple(test.comparators)
        if (
            isinstance(test.ops[0], ast.Eq)
            and isinstance(left, ast.Call)
            and call_name(left) == "len"
            and left.args
            and isinstance(left.args[0], ast.Name)
            and left.args[0].id in names
            and isinstance(right, ast.Constant)
            and right.value == 0
        ):
            return True
    return False


def _exits(stmt_body: List[ast.stmt]) -> bool:
    return bool(stmt_body) and isinstance(
        stmt_body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def has_empty_guard(
    module: ModuleContext, call: ast.Call, names: set
) -> bool:
    """Whether an earlier statement in the enclosing function bails out when
    any of ``names`` is empty (``if not x: return/raise/continue/break``).

    This is a *dominance-free* approximation — any earlier guard in the same
    function counts — which is the right trade-off for a lint: the pattern it
    accepts is exactly this codebase's idiom for "this collection was just
    checked non-empty".
    """
    if not names:
        return False
    fn = module.enclosing_function(call)
    body = fn.body if fn is not None else module.tree.body
    for node in ast.walk(ast.Module(body=list(body), type_ignores=[])):
        if getattr(node, "lineno", 10**9) >= call.lineno:
            continue
        if isinstance(node, ast.If) and _guard_matches(node.test, names) and _exits(node.body):
            return True
        # ``x = x if x else [...]`` style defaulting also guards.
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.IfExp):
            targets = {t.id for t in node.targets if isinstance(t, ast.Name)}
            if targets & names:
                return True
    return False


def iterable_root_names(arg: ast.expr) -> set:
    """Names whose emptiness decides the emptiness of ``arg``.

    Covers the shapes the extremum rule needs: a plain name, ``x.keys() /
    .values() / .items()``, and a comprehension / generator whose first
    ``for`` iterates one of those.
    """
    if isinstance(arg, ast.Name):
        return {arg.id}
    if (
        isinstance(arg, ast.Call)
        and isinstance(arg.func, ast.Attribute)
        and arg.func.attr in ("keys", "values", "items")
        and isinstance(arg.func.value, ast.Name)
    ):
        return {arg.func.value.id}
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        first = arg.generators[0].iter
        return iterable_root_names(first)
    return set()
