"""Inline suppressions: ``# mpclint: disable=<rule>[,<rule>...] -- reason``.

Two placements are honored:

* trailing, on the flagged line itself::

      root = min(adj.keys())  # mpclint: disable=raw-extremum -- guarded above

* ``disable-next-line``, on its own line immediately above (for lines where
  a trailing comment would not fit)::

      # mpclint: disable-next-line=shm-view-escape -- caller copies out
      return np.ndarray(shape, dtype=dtype, buffer=seg.buf)

A justification after ``--`` is required: a suppression is a recorded
decision, not an off switch.  Suppressions that never fire are themselves
findings (``unused-suppression``), so stale ones cannot accumulate —
re-running the analyzer after a refactor tells you which decisions to
revisit.  Naming an unknown rule is a ``bad-suppression`` finding.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.analysis.core import UNSUPPRESSABLE, Finding

__all__ = ["Suppression", "scan_suppressions", "apply_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*mpclint:\s*(?P<kind>disable|disable-next-line)\s*="
    r"\s*(?P<rules>[\w,\- ]+?)\s*(?:--\s*(?P<reason>.*))?$"
)


@dataclass
class Suppression:
    """One parsed directive (one entry per rule it names)."""

    rule: str
    directive_line: int  # where the comment sits (for diagnostics)
    target_line: int  # the line whose findings it suppresses
    reason: str
    used: bool = field(default=False, compare=False)


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) of every real comment — directive lookalikes inside
    strings/docstrings (e.g. documentation examples) are not comments and
    must not parse as directives."""
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return  # unparseable tail; the engine reports the syntax error


def scan_suppressions(source: str, path: str) -> Tuple[List[Suppression], List[Finding]]:
    """Parse every directive comment in ``source``; malformed ones become
    findings."""
    sups: List[Suppression] = []
    problems: List[Finding] = []
    for i, line in _comment_tokens(source):
        if "mpclint:" not in line:
            continue
        m = _DIRECTIVE.search(line)
        if m is None:
            # Not a disable directive (module= overrides etc.) — but a
            # misspelled disable should not silently do nothing.
            if re.search(r"#\s*mpclint:\s*disable", line):
                problems.append(
                    Finding(
                        rule="bad-suppression",
                        path=path,
                        line=i,
                        col=1,
                        message=(
                            "malformed suppression; expected "
                            "'# mpclint: disable=<rule>[,<rule>] -- <justification>'"
                        ),
                    )
                )
            continue
        reason = (m.group("reason") or "").strip()
        if not reason:
            problems.append(
                Finding(
                    rule="bad-suppression",
                    path=path,
                    line=i,
                    col=1,
                    message=(
                        "suppression needs a justification: "
                        "'# mpclint: disable=<rule> -- <why this is safe>'"
                    ),
                )
            )
            continue
        target = i + 1 if m.group("kind") == "disable-next-line" else i
        for rule in (r.strip() for r in m.group("rules").split(",")):
            if not rule:
                continue
            if rule in UNSUPPRESSABLE:
                problems.append(
                    Finding(
                        rule="bad-suppression",
                        path=path,
                        line=i,
                        col=1,
                        message=f"rule {rule!r} cannot be suppressed",
                    )
                )
                continue
            sups.append(
                Suppression(rule=rule, directive_line=i, target_line=target, reason=reason)
            )
    return sups, problems


def apply_suppressions(
    findings: List[Finding],
    suppressions: List[Suppression],
    known_rules: set,
    path: str,
) -> Tuple[List[Finding], int]:
    """Filter ``findings`` through ``suppressions`` (all of one file).

    Returns the surviving findings (including ``unused-suppression`` /
    ``bad-suppression`` diagnostics for directives that name unknown rules or
    never fire) and the number of suppressions that were used.
    """
    by_key: Dict[Tuple[str, int], List[Suppression]] = {}
    for s in suppressions:
        by_key.setdefault((s.rule, s.target_line), []).append(s)

    kept: List[Finding] = []
    for f in findings:
        matching = by_key.get((f.rule, f.line))
        if matching and f.rule not in UNSUPPRESSABLE:
            for s in matching:
                s.used = True
        else:
            kept.append(f)

    used = sum(1 for s in suppressions if s.used)
    for s in suppressions:
        if s.used:
            continue
        if s.rule not in known_rules:
            kept.append(
                Finding(
                    rule="bad-suppression",
                    path=path,
                    line=s.directive_line,
                    col=1,
                    message=f"suppression names unknown rule {s.rule!r}",
                )
            )
        else:
            kept.append(
                Finding(
                    rule="unused-suppression",
                    path=path,
                    line=s.directive_line,
                    col=1,
                    message=(
                        f"suppression of {s.rule!r} never fires; delete it "
                        f"(reason recorded: {s.reason})"
                    ),
                )
            )
    return kept, used
