"""Analyzer orchestration: discover files, run rules, apply suppressions."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.core import Finding, Report, Rule, all_rules
from repro.analysis.project import ModuleContext, Project
from repro.analysis.suppress import apply_suppressions, scan_suppressions

__all__ = ["discover_files", "build_project", "run_analysis"]

#: Directories never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "node_modules", "build", "dist"}


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths`` (files are taken as given), sorted."""
    out: List[Path] = []
    for p in paths:
        if p.is_file():
            out.append(p)
        elif p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in f.parts):
                    out.append(f)
    seen = set()
    unique = []
    for f in out:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(f)
    return unique


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor containing ``pyproject.toml`` (else ``start``)."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return cur


def _display(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def build_project(
    paths: Sequence[Path], root: Optional[Path] = None
) -> tuple:
    """Parse every discovered file; unparsable files become findings.

    Returns ``(project, parse_failures)``.
    """
    files = discover_files([Path(p) for p in paths])
    root = root or find_repo_root(files[0] if files else Path.cwd())
    project = Project(root=root)
    failures: List[Finding] = []
    for f in files:
        try:
            project.modules.append(ModuleContext.parse(f, _display(f, root)))
        except SyntaxError as exc:
            failures.append(
                Finding(
                    rule="parse-error",
                    path=_display(f, root),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return project, failures


def run_analysis(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> Report:
    """Run the (selected) rules over ``paths`` and return the report.

    ``select`` filters rules by name; ``rules`` swaps the registry out
    entirely (tests).  Suppressions are applied per file; unused ones are
    reported as findings so they cannot rot in place.
    """
    project, failures = build_project(paths, root=root)
    active = list(rules) if rules is not None else all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {r.meta.name for r in active}
        if unknown:
            raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        active = [r for r in active if r.meta.name in wanted]
    known_rules = {r.meta.name for r in active}

    raw: List[Finding] = list(failures)
    for rule in active:
        checker = getattr(rule, "check_project", None)
        if checker is not None:
            raw.extend(checker(project))
        else:
            for module in project.modules:
                raw.extend(rule.check_module(module))

    report = Report(files_scanned=len(project.modules) + len(failures))
    by_path: dict = {}
    for f in raw:
        by_path.setdefault(f.path, []).append(f)
    # Files with suppressions but no findings still need the unused check.
    for module in project.modules:
        by_path.setdefault(module.display_path, [])

    modules_by_display = {m.display_path: m for m in project.modules}
    for path, file_findings in by_path.items():
        module = modules_by_display.get(path)
        if module is None:
            report.findings.extend(file_findings)
            continue
        sups, problems = scan_suppressions(module.source, path)
        kept, used = apply_suppressions(file_findings, sups, known_rules, path)
        report.findings.extend(kept)
        report.findings.extend(problems)
        report.suppressions_used += used

    report.findings.sort(key=Finding.sort_key)
    return report
