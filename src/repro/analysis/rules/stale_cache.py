"""Rule ``stale-cache-invalidation``.

**History.**  PR 4's incremental re-solve caches per-cluster payload plans
(``Cluster._local_plan`` / ``Cluster._hole_plan``) and bakes tree payloads
(``node_data`` / ``edge_data``) into them.  The stale-payload bug: a point
update wrote ``node_data`` but kept serving plans baked from the *old*
payload — silently wrong DP values, caught only by the differential fuzz
harness.  The fix added ``Cluster.invalidate_payload_plans()`` and the rule
that every payload mutator calls it.

**Check.**  Declarative cache contracts: each names the watched attributes,
the mutation forms (attribute/subscript writes, mutating method calls,
designated sink functions such as ``_set_payload``), and what a mutating
function must also do — call one of the ``required_calls``, or be a method
of an ``owner`` class that is allowed to manage its own cache fields.
Anything else is a finding; designated builders outside the owner carry a
justified suppression.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.core import Finding, Rule, RuleMeta, register
from repro.analysis.project import ModuleContext, call_name

__all__ = ["CacheContract", "StaleCacheRule", "CONTRACTS"]

#: Method names that mutate the object they are called on.
MUTATING_METHODS = {
    "append",
    "clear",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
    "fill",
    "sort",
}


@dataclass(frozen=True)
class CacheContract:
    """One watched-cache discipline."""

    #: Attribute names whose mutation invalidates a cache.
    attrs: FrozenSet[str]
    #: A mutator must call one of these (any name in the function body).
    #: Empty set: no call can discharge the obligation — only the owner
    #: class (or a justified suppression) may write the attribute.
    required_calls: FrozenSet[str] = frozenset()
    #: Functions that mutate the watched data when passed it as an argument.
    sinks: FrozenSet[str] = frozenset()
    #: Class whose methods own these attributes and may write them freely.
    owner: Optional[str] = None
    #: Dotted-module prefixes where the contract applies ((): everywhere).
    scope: Tuple[str, ...] = field(default=())
    #: One-line description used in the finding message.
    description: str = ""


CONTRACTS: Tuple[CacheContract, ...] = (
    CacheContract(
        attrs=frozenset({"node_data", "edge_data"}),
        required_calls=frozenset({"invalidate_payload_plans"}),
        sinks=frozenset({"_set_payload"}),
        owner="Tree",
        scope=("repro.dynamic", "repro.dp", "repro.mpc", "repro.core"),
        description=(
            "tree payloads are baked into cluster local/hole plans; a "
            "mutator that skips invalidate_payload_plans() serves plans from "
            "the old payload (PR 4 stale-payload class)"
        ),
    ),
    CacheContract(
        attrs=frozenset({"_local_plan", "_hole_plan"}),
        owner="Cluster",
        scope=("repro",),
        description=(
            "cluster payload-plan memos are owned by Cluster; writes from "
            "outside bypass the invalidation protocol"
        ),
    ),
)


def _attr_name_written(node: ast.AST) -> Optional[ast.Attribute]:
    """The Attribute being mutated by an assignment target, if any."""
    if isinstance(node, ast.Attribute):
        return node
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Attribute):
        return node.value
    return None


def _called_names(fn: ast.AST) -> FrozenSet[str]:
    out = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            cn = call_name(node)
            if cn:
                out.add(cn)
    return frozenset(out)


@register
class StaleCacheRule(Rule):
    meta = RuleMeta(
        name="stale-cache-invalidation",
        summary=(
            "payload mutators must invalidate the plans baked from payloads; "
            "cluster plan memos are written only by their owner class"
        ),
        rationale=(
            "PR 4 stale-payload class: node_data updated without "
            "invalidate_payload_plans() kept serving plans baked from the "
            "old payload — silently wrong DP values"
        ),
    )

    contracts: Tuple[CacheContract, ...] = CONTRACTS

    def _mutations(
        self, contract: CacheContract, fn: ast.AST
    ) -> Iterable[Tuple[ast.AST, str]]:
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _attr_name_written(target)
                    if attr is not None and attr.attr in contract.attrs:
                        yield node, f"write to .{attr.attr}"
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _attr_name_written(target)
                    if attr is not None and attr.attr in contract.attrs:
                        yield node, f"delete of .{attr.attr}"
            elif isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in MUTATING_METHODS
                    and isinstance(callee.value, ast.Attribute)
                    and callee.value.attr in contract.attrs
                ):
                    yield node, (
                        f"mutating call .{callee.value.attr}.{callee.attr}()"
                    )
                cn = call_name(node)
                if cn in contract.sinks:
                    for arg in node.args:
                        if (
                            isinstance(arg, ast.Attribute)
                            and arg.attr in contract.attrs
                        ):
                            yield node, (
                                f"{cn}(...) mutates .{arg.attr} in place"
                            )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for contract in self.contracts:
            if contract.scope and not module.in_scope(contract.scope):
                continue
            for fn in module.functions():
                cls = module.enclosing_class(fn)
                if contract.owner and cls is not None and cls.name == contract.owner:
                    continue
                hits = list(self._mutations(contract, fn))
                if not hits:
                    continue
                called = _called_names(fn)
                if contract.required_calls and (
                    called & contract.required_calls
                ):
                    continue
                for node, what in hits:
                    if contract.required_calls:
                        remedy = (
                            "call "
                            + " or ".join(sorted(contract.required_calls))
                            + "() in the same function"
                        )
                    else:
                        remedy = (
                            f"route the write through {contract.owner} (or "
                            "suppress with the builder's justification)"
                        )
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"{what} without cache invalidation — "
                            f"{contract.description}; {remedy}",
                        )
                    )
        return findings
