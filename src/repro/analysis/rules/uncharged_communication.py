"""Rule ``uncharged-communication``.

**History.**  PR 3 and PR 4 both grew driver-side shortcuts around the
simulated wire (short-circuited convergecasts, driver-evaluated supersteps,
the DP engine's per-layer summary routing).  Each had to remember to keep
the *accounting* honest — ``tick_rounds`` for driver-evaluated rounds,
``charge_rounds``/``charge_words`` for orchestration the model would pay
for.  A data-movement helper that forgets silently deflates the round/word
statistics every benchmark reports.

**Check.**  Every module-level function or method in ``repro.mpc`` (the
execution layer ``repro.mpc.exec`` excluded — it moves real bytes, not
model words; the simulator remains the accounting oracle for everything it
runs) whose name contains a data-movement verb must either charge the
simulator — call ``superstep`` / ``tick_rounds`` / ``charge_rounds`` /
``charge_words`` / ``broadcast_to_all`` directly or through another
charging helper of the package (a package-wide call fixpoint) — or carry an
explicit annotation that it is charge-free by the model::

    def scatter(self, records):  # mpclint: disable=uncharged-communication -- <why free>

Nested helper functions (superstep compute closures) are not flagged; the
enclosing primitive is the accounting unit.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.core import Finding, ProjectRule, RuleMeta, register
from repro.analysis.project import ModuleContext, Project, call_name

__all__ = ["UnchargedCommunicationRule"]

#: The simulator's charging entry points.
CHARGE_APIS = {
    "superstep",
    "tick_rounds",
    "charge_rounds",
    "charge_words",
    "broadcast_to_all",
}

#: Name fragments (underscore-separated words) that mark a data-movement
#: helper.  ``sort``/``group``/``join``/``reduce`` are movement in the MPC
#: model: they are implemented as routing supersteps.
MOVEMENT_VERBS = {
    "route",
    "send",
    "recv",
    "receive",
    "gather",
    "scatter",
    "broadcast",
    "rebalance",
    "redistribute",
    "exchange",
    "shuffle",
    "deliver",
    "ship",
    "sort",
    "group",
    "join",
    "reduce",
}

SCOPE = ("repro.mpc",)
EXCLUDED = ("repro.mpc.exec",)


def _is_movement_name(name: str) -> bool:
    words = set(name.lower().strip("_").split("_"))
    return bool(words & MOVEMENT_VERBS)


def _called_names(fn: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            cn = call_name(node)
            if cn:
                out.add(cn)
    return out


@register
class UnchargedCommunicationRule(ProjectRule):
    meta = RuleMeta(
        name="uncharged-communication",
        summary=(
            "data-movement helpers in repro.mpc must charge rounds/words "
            "through the simulator or carry an explicit charge-free annotation"
        ),
        rationale=(
            "PR 3/PR 4 driver-side shortcut class: driver-evaluated movement "
            "that forgets tick_rounds/charge_words silently deflates every "
            "reported round/word statistic"
        ),
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        in_scope = [
            m
            for m in project.modules
            if m.in_scope(SCOPE) and not m.in_scope(EXCLUDED)
        ]
        # Pass 1: name-level call graph over the scope's top-level functions
        # and methods (nested defs belong to their enclosing accounting unit).
        defs: List[Tuple[ModuleContext, ast.AST]] = []
        calls_of: Dict[str, Set[str]] = {}
        for module in in_scope:
            for fn in module.functions():
                if module.enclosing_function(fn) is not None:
                    continue
                defs.append((module, fn))
                calls_of.setdefault(fn.name, set()).update(_called_names(fn))

        charging: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, called in calls_of.items():
                if name in charging:
                    continue
                if called & CHARGE_APIS or called & charging:
                    charging.add(name)
                    changed = True

        for module, fn in defs:
            if not _is_movement_name(fn.name):
                continue
            if fn.name in charging:
                continue
            yield self.finding(
                module,
                fn,
                f"data-movement helper {fn.name!r} never charges the simulator "
                f"(no direct or transitive call to "
                f"{'/'.join(sorted(CHARGE_APIS))}); charge the movement or "
                f"annotate why it is free in the model "
                f"('# mpclint: disable=uncharged-communication -- <why>')",
            )
