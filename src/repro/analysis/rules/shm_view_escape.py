"""Rule ``shm-view-escape``.

**History.**  PR 5's multiprocess backend maps numpy arrays over
``multiprocessing.shared_memory`` segments.  A ``np.ndarray`` built over
``SharedMemory.buf`` is only valid while the segment is open: during
bring-up, a view returned past ``close()`` produced an interpreter
**segfault** (not an exception) the first time the caller touched it.  The
fix was a discipline, not a patch: raw shm views never escape the function
that created them except at the two audited registry boundaries.

**Check.**  Within each function, a value is *tainted* when it comes from
``np.ndarray(..., buffer=...)`` or from ``attach_view(...)`` (directly or
via a local name, including tuple unpacking).  A finding is raised when a
tainted value

* is returned or yielded,
* is stored on an object or container (``self.x = view``, ``d[k] = view``,
  ``lst.append(view)``), i.e. outlives the frame.

The audited boundaries (the registry's ``create``/``attach_view`` contract,
whose callers own segment lifetime) carry inline suppressions with
justification; anything else must copy out (``np.asarray(view).copy()``)
before the value escapes.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.core import Finding, Rule, RuleMeta, register
from repro.analysis.project import ModuleContext, call_name

__all__ = ["ShmViewEscapeRule"]

#: Callables whose result is a raw view over a shared-memory buffer.
TAINT_CALLS = {"attach_view"}

#: Method names that store their argument into a longer-lived container.
STORE_METHODS = {"append", "add", "extend", "insert", "setdefault"}


def _is_buffer_ndarray(call: ast.Call) -> bool:
    if call_name(call) != "ndarray":
        return False
    return any(kw.arg == "buffer" for kw in call.keywords)


def _tainted_expr(node: ast.AST, tainted: Set[str]) -> bool:
    """Is ``node`` a tainted call/name, or a tuple/list containing one?"""
    if isinstance(node, ast.Call):
        return _is_buffer_ndarray(node) or (call_name(node) in TAINT_CALLS)
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(_tainted_expr(elt, tainted) for elt in node.elts)
    return False


def _bind_targets(target: ast.AST, value: ast.AST, tainted: Set[str]) -> None:
    """Propagate taint through ``target = value`` name bindings."""
    if isinstance(target, ast.Name):
        if _tainted_expr(value, tainted):
            tainted.add(target.id)
        else:
            tainted.discard(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        # ``seg, view = attach_view(...)`` taints every bound name: the
        # analysis does not track which tuple slot is the view.
        if _tainted_expr(value, tainted):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    tainted.add(elt.id)


@register
class ShmViewEscapeRule(Rule):
    meta = RuleMeta(
        name="shm-view-escape",
        summary=(
            "numpy views over SharedMemory buffers must not be returned or "
            "stored past the creating frame; copy out instead"
        ),
        rationale=(
            "PR 5 segfault class: a view over SharedMemory.buf dereferenced "
            "after segment close crashes the interpreter, not an exception"
        ),
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in module.functions():
            tainted: Set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, (ast.Name, ast.Tuple, ast.List)):
                            _bind_targets(target, node.value, tainted)
                        elif isinstance(
                            target, (ast.Attribute, ast.Subscript)
                        ) and _tainted_expr(node.value, tainted):
                            findings.append(
                                self.finding(
                                    module,
                                    node,
                                    "shared-memory view stored on an object or "
                                    "container outlives its frame; copy out "
                                    "before the segment can close",
                                )
                            )
                elif isinstance(node, ast.Return):
                    if node.value is not None and _tainted_expr(
                        node.value, tainted
                    ):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"{fn.name!r} returns a raw shared-memory view; "
                                "the segment may close before the caller reads "
                                "it (PR 5 segfault class) — return a copy or "
                                "annotate the audited lifetime contract",
                            )
                        )
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    value = getattr(node, "value", None)
                    if value is not None and _tainted_expr(value, tainted):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"{fn.name!r} yields a raw shared-memory view "
                                "across a suspension point; copy out first",
                            )
                        )
                elif isinstance(node, ast.Call):
                    callee = node.func
                    if (
                        isinstance(callee, ast.Attribute)
                        and callee.attr in STORE_METHODS
                        and any(
                            isinstance(arg, ast.Name) and arg.id in tainted
                            for arg in node.args
                        )
                    ):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                "shared-memory view inserted into a container; "
                                "it outlives the creating frame — copy out "
                                "before storing",
                            )
                        )
        return findings
