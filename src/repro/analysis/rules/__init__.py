"""mpclint rule modules — importing this package registers every rule.

Each module encodes one discipline and names the historical bug class of
this repository it machine-checks; docs/ANALYSIS.md is the narrative
companion.  To add a rule: create a module here, subclass
:class:`~repro.analysis.core.Rule` (or ``ProjectRule`` for cross-module
checks), decorate it with :func:`~repro.analysis.core.register`, import it
below, and give it fixture coverage in ``tests/analysis_fixtures/``.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    backend_parity,
    config_docs,
    raw_extremum,
    shm_view_escape,
    stale_cache,
    unbounded_wait,
    uncharged_communication,
    untraced_clock,
    worker_isolation,
)
