"""Rule ``unbounded-wait``.

**History.**  Before PR 8, the process execution backend's liveness story
had a hole: the driver's reply wait polled the pipe under a single hard
deadline read at *import* time, and an early worker-loop draft blocked in
``conn.recv()`` outright.  A worker that died the wrong way (or a driver
descheduled past the pipe buffer) turned into a five-minute stall — or a
genuine hang — instead of a supervised failure.  PR 8 replaced the
deadline with heartbeat-based liveness; this rule pins the discipline that
made it work: **no receive loop in the exec layer may wait without a
bound**.

**Check.**  In modules under ``repro.mpc.exec``, every ``while`` loop that
waits on a pipe — calls ``.recv(...)``, or ``.poll()`` with no timeout
argument — must carry a liveness bound *inside the loop*:

* a bounded ``.poll(timeout)`` call (the wait wakes up to re-check), or
* a ``time.monotonic()`` reading (a deadline / heartbeat-silence check).

A loop that blocks in ``recv`` with neither can stall forever on a dead
peer; the supervised pattern polls with a timeout and classifies silence
(see ``_Worker.recv_reply`` and ``_worker_main`` in
:mod:`repro.mpc.exec.pool`, the two audited wait loops this rule keeps
honest).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Finding, Rule, RuleMeta, register
from repro.analysis.project import ModuleContext

__all__ = ["UnboundedWaitRule"]

#: Module prefix the rule watches: the exec layer's driver/worker protocol.
EXEC_MODULE_PREFIX = "repro.mpc.exec"

#: Attribute calls that block on a pipe until the peer speaks.
WAIT_METHODS = {"recv", "recv_bytes", "get"}


def _is_wait_call(node: ast.Call) -> bool:
    """``x.recv(...)`` always waits; ``x.poll()`` waits only with no args."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in WAIT_METHODS:
        return True
    return func.attr == "poll" and not node.args and not node.keywords


def _is_bound_marker(node: ast.Call) -> bool:
    """A call that bounds the wait: ``poll(timeout)`` or ``monotonic()``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "poll" and (node.args or node.keywords):
            return True
        if func.attr == "monotonic":
            return True
        # Event.wait(timeout) / Queue.get(timeout=...) style bounded waits.
        if func.attr in ("wait", "get") and (node.args or node.keywords):
            return True
    elif isinstance(func, ast.Name) and func.id == "monotonic":
        return True
    return False


@register
class UnboundedWaitRule(Rule):
    meta = RuleMeta(
        name="unbounded-wait",
        summary=(
            "receive loops in repro.mpc.exec must carry a deadline or "
            "heartbeat check: a bounded poll(timeout) or a time.monotonic() "
            "reading inside the loop"
        ),
        rationale=(
            "PR 8 liveness class: a wait loop with no bound stalls forever "
            "on a dead or silent peer instead of surfacing a supervised "
            "worker failure the retry ladder can heal"
        ),
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.module_name.startswith(EXEC_MODULE_PREFIX):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While):
                continue
            waits = False
            bounded = False
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    if _is_wait_call(sub):
                        waits = True
                    if _is_bound_marker(sub):
                        bounded = True
            if waits and not bounded:
                findings.append(
                    self.finding(
                        module,
                        node,
                        "wait loop has no liveness bound: add a poll(timeout) "
                        "or a time.monotonic() deadline/heartbeat check so a "
                        "dead peer surfaces as a supervised failure",
                    )
                )
        return findings
