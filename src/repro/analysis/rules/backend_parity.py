"""Rule ``backend-literal-parity``.

**History.**  ``MPCConfig`` validates its backend-style knobs against
literal tuples (``dp_backend`` in ``auto/numpy/python``, ``exec_backend``
in ``inline/process``, ...).  Every time a PR added a literal (PR 3 added
``treeops_backend="array"``, PR 5 added ``exec_backend="process"``), each
dispatch site in the tree had to be found by hand; a missed site falls
through silently to whatever its ``if`` chain did before the new literal
existed.

**Check.**  The declared literal sets are parsed from ``MPCConfig``'s
``__post_init__`` validation (``if self.<field> not in (...)``) — the
config module stays the single source of truth; the rule never hardcodes a
literal.  A *dispatch* is an ``if``/``elif`` chain whose tests compare a
config field (``cfg.dp_backend == "numpy"``, via attribute access or a
local alias, ``in (...)`` tuples included) against string literals.  A
dispatch is flagged when

* it compares against a literal the config does not declare (typo /
  removed literal), or
* it has no ``else``, covers a **proper subset** of the declared literals,
  and at least one taken branch falls through (does not end in
  ``return``/``raise``/``continue``/``break``) — i.e. a new literal would
  silently get the fall-through behavior.

Guard-style early exits (``if backend != "process": return ...``) and
boolean uses are not dispatches and are ignored.  An intentional "one
literal means *off*" no-op is declared with a justified suppression.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ProjectRule, RuleMeta, register
from repro.analysis.project import ModuleContext, Project, attr_chain

__all__ = ["BackendParityRule", "declared_literals"]

CONFIG_MODULE = "repro.mpc.config"
CONFIG_CLASS = "MPCConfig"


def _str_const(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def declared_literals(config_module: ModuleContext) -> Dict[str, Set[str]]:
    """Parse ``{field: literal-set}`` from MPCConfig's __post_init__ checks.

    Recognizes the validation idiom ``if self.<field> not in ("a", "b"):``.
    """
    out: Dict[str, Set[str]] = {}
    for cls in ast.walk(config_module.tree):
        if not (isinstance(cls, ast.ClassDef) and cls.name == CONFIG_CLASS):
            continue
        for fn in cls.body:
            if not (
                isinstance(fn, ast.FunctionDef) and fn.name == "__post_init__"
            ):
                continue
            for node in ast.walk(fn):
                if not (
                    isinstance(node, ast.Compare)
                    and len(node.ops) == 1
                    and isinstance(node.ops[0], (ast.NotIn, ast.In))
                ):
                    continue
                chain = attr_chain(node.left)
                if not (chain and chain.startswith("self.")):
                    continue
                field = chain.split(".", 1)[1]
                comparator = node.comparators[0]
                if isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
                    values = [_str_const(e) for e in comparator.elts]
                    if values and all(v is not None for v in values):
                        out.setdefault(field, set()).update(values)  # type: ignore[arg-type]
    return out


def _field_of(expr: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Config field a test subject refers to, via attribute or alias."""
    chain = attr_chain(expr)
    if chain and "." in chain:
        return chain.rsplit(".", 1)[1]
    if isinstance(expr, ast.Name):
        return aliases.get(expr.id)
    return None


def _collect_aliases(fn: ast.AST, fields: Set[str]) -> Dict[str, str]:
    """``backend = cfg.dp_backend`` / ``getattr(cfg, "dp_backend", ...)``."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        chain = attr_chain(node.value)
        if chain and "." in chain and chain.rsplit(".", 1)[1] in fields:
            aliases[target.id] = chain.rsplit(".", 1)[1]
        elif (
            isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "getattr"
            and len(node.value.args) >= 2
        ):
            attr = _str_const(node.value.args[1])
            if attr in fields:
                aliases[target.id] = attr
    return aliases


def _branch_literals(
    test: ast.AST, aliases: Dict[str, str], fields: Set[str]
) -> Optional[Tuple[str, Set[str]]]:
    """(field, literals) when ``test`` is an equality/membership dispatch test."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        field: Optional[str] = None
        literals: Set[str] = set()
        for value in test.values:
            sub = _branch_literals(value, aliases, fields)
            if sub is None:
                return None
            if field is not None and sub[0] != field:
                return None
            field = sub[0]
            literals |= sub[1]
        return (field, literals) if field else None
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return None
    op = test.ops[0]
    subject = test.left
    comparator = test.comparators[0]
    field = _field_of(subject, aliases)
    if field is None or field not in fields:
        # Allow ``"numpy" == cfg.dp_backend`` spelling.
        field = _field_of(comparator, aliases)
        if field is None or field not in fields:
            return None
        subject, comparator = comparator, subject
    if isinstance(op, ast.Eq):
        lit = _str_const(comparator)
        return (field, {lit}) if lit is not None else None
    if isinstance(op, ast.In) and isinstance(
        comparator, (ast.Tuple, ast.List, ast.Set)
    ):
        lits = [_str_const(e) for e in comparator.elts]
        if lits and all(v is not None for v in lits):
            return (field, set(lits))  # type: ignore[arg-type]
    return None


def _falls_through(body: List[ast.stmt]) -> bool:
    if not body:
        return True
    return not isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


@register
class BackendParityRule(ProjectRule):
    meta = RuleMeta(
        name="backend-literal-parity",
        summary=(
            "backend-style if/elif dispatches must cover the full literal "
            "set MPCConfig declares (or end in else/raise)"
        ),
        rationale=(
            "PR 3/PR 5 literal additions: dispatch sites missed when a knob "
            "grows a literal silently fall through to pre-existing behavior"
        ),
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        config = project.module(CONFIG_MODULE)
        if config is None:
            return []
        declared = declared_literals(config)
        fields = set(declared)
        if not fields:
            return []

        findings: List[Finding] = []
        for module in project.modules:
            if module.module_name == CONFIG_MODULE:
                continue
            # Chain heads only: an ``elif`` is the sole statement of its
            # parent's orelse and is handled as part of the parent chain.
            elif_nodes = {
                id(stmt.orelse[0])
                for stmt in ast.walk(module.tree)
                if isinstance(stmt, ast.If)
                and len(stmt.orelse) == 1
                and isinstance(stmt.orelse[0], ast.If)
            }
            for fn in module.functions():
                aliases = _collect_aliases(fn, fields)
                for node in ast.walk(fn):
                    if not isinstance(node, ast.If) or id(node) in elif_nodes:
                        continue
                    findings.extend(
                        self._check_chain(module, node, aliases, declared)
                    )
        return findings

    def _check_chain(
        self,
        module: ModuleContext,
        head: ast.If,
        aliases: Dict[str, str],
        declared: Dict[str, Set[str]],
    ) -> Iterable[Finding]:
        fields = set(declared)
        branches: List[Tuple[ast.If, str, Set[str]]] = []
        node: ast.stmt = head
        has_else = False
        while isinstance(node, ast.If):
            parsed = _branch_literals(node.test, aliases, fields)
            if parsed is None:
                return []  # mixed chain: not a pure literal dispatch
            branches.append((node, parsed[0], parsed[1]))
            if not node.orelse:
                break
            if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
                node = node.orelse[0]
            else:
                has_else = True
                break

        field_names = {f for _n, f, _l in branches}
        if len(field_names) != 1:
            return []
        field = field_names.pop()
        declared_set = declared[field]
        covered: Set[str] = set()
        for _n, _f, lits in branches:
            covered |= lits

        findings: List[Finding] = []
        unknown = covered - declared_set
        if unknown:
            findings.append(
                self.finding(
                    module,
                    head,
                    f"dispatch on {field!r} tests literal(s) "
                    f"{sorted(unknown)} that MPCConfig does not declare "
                    f"(declared: {sorted(declared_set)}) — typo or removed "
                    "backend",
                )
            )
        missing = declared_set - covered
        if not has_else and missing and covered:
            if any(_falls_through(n.body) for n, _f, _l in branches):
                findings.append(
                    self.finding(
                        module,
                        head,
                        f"dispatch on {field!r} covers {sorted(covered)} but "
                        f"not {sorted(missing)} and has no else; a new or "
                        "unhandled literal silently falls through — add the "
                        "missing branch or an else that raises",
                    )
                )
        return findings
