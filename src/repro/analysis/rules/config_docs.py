"""Rule ``config-docs-drift``.

**History.**  PR 6 added ``tools/check_config_docs.py``: every ``MPCConfig``
field must appear (backticked) in ``docs/CONFIG.md``, because the config
surface was drifting ahead of its documentation.  This module folds that
standalone script into the analyzer as a first-class rule;
``tools/check_config_docs.py`` remains as a thin shim over it.

**Check.**  Parse the dataclass fields of ``MPCConfig`` from the AST of
``repro.mpc.config`` (annotated class-level assignments, ``init=False``
fields included — they are part of the documented surface) and require each
name to appear as `` `name` `` in ``docs/CONFIG.md`` relative to the
project root.  Findings anchor at the undocumented field's declaration.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from repro.analysis.core import Finding, ProjectRule, RuleMeta, register
from repro.analysis.project import ModuleContext, Project

__all__ = ["ConfigDocsRule", "config_fields"]

CONFIG_MODULE = "repro.mpc.config"
CONFIG_CLASS = "MPCConfig"
DOCS_RELPATH = "docs/CONFIG.md"


def config_fields(config_module: ModuleContext) -> List[ast.AnnAssign]:
    """Annotated class-level field declarations of MPCConfig, in order."""
    for cls in ast.walk(config_module.tree):
        if isinstance(cls, ast.ClassDef) and cls.name == CONFIG_CLASS:
            return [
                stmt
                for stmt in cls.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ]
    return []


@register
class ConfigDocsRule(ProjectRule):
    meta = RuleMeta(
        name="config-docs-drift",
        summary=(
            "every MPCConfig field must be documented (backticked) in "
            "docs/CONFIG.md"
        ),
        rationale=(
            "PR 6 drift class: the config surface grew faster than its "
            "documentation; undocumented knobs are unusable knobs"
        ),
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        config = project.module(CONFIG_MODULE)
        if config is None:
            return []
        fields = config_fields(config)
        if not fields:
            return []
        docs_path = project.root / DOCS_RELPATH
        if not docs_path.is_file():
            return [
                self.finding(
                    config,
                    fields[0],
                    f"{DOCS_RELPATH} not found at the project root; MPCConfig "
                    "fields must be documented there",
                )
            ]
        docs = docs_path.read_text(encoding="utf-8")
        documented = set(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", docs))
        findings: List[Finding] = []
        for field in fields:
            name = field.target.id  # type: ignore[union-attr]
            if name not in documented:
                findings.append(
                    self.finding(
                        config,
                        field,
                        f"MPCConfig field {name!r} is not documented in "
                        f"{DOCS_RELPATH} (expected a backticked `{name}` "
                        "mention)",
                    )
                )
        return findings
