"""Rule ``worker-driver-isolation``.

**History.**  PR 5's process backend imports ``repro.mpc.exec.ops`` inside
worker processes.  Workers must stay cheap to spawn and semantically inert:
they execute array kernels over shared memory and nothing else.  During
bring-up, an import edge from worker-reachable code into the simulator
would have dragged the whole driver (accounting state, cluster caches,
incremental memos) into every worker — wrong (divergent accounting,
un-shared caches) and slow (import cost per spawn).  The seam held by
convention; this rule pins it.

**Check.**  Build the project import graph, take the modules reachable from
the worker entry set (``repro.mpc.exec.ops``), and flag any import edge
from a reachable module into a driver-only module (simulator, machine,
darray, tree ops, DP engine, clustering, incremental layer).  Both
top-level and function-local imports count: a lazy import still executes in
the worker.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.core import Finding, ProjectRule, RuleMeta, register
from repro.analysis.project import ModuleContext, Project

__all__ = ["WorkerIsolationRule"]

#: Modules imported by worker processes (the spawn-side entry surface).
WORKER_ENTRY_MODULES = ("repro.mpc.exec.ops",)

#: Driver-only module prefixes: simulation/accounting state, record-model
#: machinery, and everything holding per-run caches or memos.
DRIVER_ONLY_PREFIXES = (
    "repro.mpc.simulator",
    "repro.mpc.machine",
    "repro.mpc.darray",
    "repro.mpc.primitives",
    "repro.mpc.treeops",
    "repro.dp",
    "repro.dynamic",
    "repro.core",
    "repro.clustering",
    "repro.trees",
)


def _resolve_relative(module_name: str, node: ast.ImportFrom) -> str:
    if not node.level:
        return node.module or ""
    # ``from .x import y`` in module p.q.m -> p.q.x (level counts up from
    # the module's own package, so drop ``level`` trailing components).
    parts = module_name.split(".")
    parts = parts[: -node.level] if node.level <= len(parts) else []
    base = ".".join(parts)
    if node.module:
        return f"{base}.{node.module}" if base else node.module
    return base


def _imports(module: ModuleContext) -> Iterable[Tuple[ast.AST, str]]:
    """Yield (node, imported-module-name) pairs, relative imports resolved."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(module.module_name, node)
            if target:
                yield node, target
            # ``from pkg import sub`` may import a submodule: record both.
            for alias in node.names:
                if target:
                    yield node, f"{target}.{alias.name}"


def _is_driver_only(name: str) -> bool:
    return any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in DRIVER_ONLY_PREFIXES
    )


@register
class WorkerIsolationRule(ProjectRule):
    meta = RuleMeta(
        name="worker-driver-isolation",
        summary=(
            "code reachable from the worker entry (repro.mpc.exec.ops) must "
            "not import driver-only modules (simulator, accounting, caches)"
        ),
        rationale=(
            "PR 5 seam: dragging simulator/accounting state into spawned "
            "workers diverges the word/round books and bloats worker startup"
        ),
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        by_name: Dict[str, ModuleContext] = {m.module_name: m for m in project.modules}
        edges: Dict[str, List[Tuple[ast.AST, str]]] = {
            name: list(_imports(mod)) for name, mod in by_name.items()
        }

        reachable: Set[str] = set()
        frontier = [n for n in WORKER_ENTRY_MODULES if n in by_name]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for _node, target in edges.get(name, ()):  # project-local edges
                if target in by_name and target not in reachable:
                    frontier.append(target)

        findings: List[Finding] = []
        for name in sorted(reachable):
            module = by_name[name]
            seen: Set[int] = set()
            for node, target in edges[name]:
                if not _is_driver_only(target):
                    continue
                if id(node) in seen:  # one finding per import statement
                    continue
                seen.add(id(node))
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"worker-reachable module {name!r} imports driver-only "
                        f"module {target!r}; workers must not load simulator/"
                        "accounting state (PR 5 isolation seam)",
                    )
                )
        return findings
