"""Rule ``raw-extremum``.

**History.**  PR 2 hardened the aggregation layer after two related bugs:
``np.min`` over a value column containing NaN propagated NaN into DP
tables, and builtin ``min()`` over an *empty* record selection raised
``ValueError`` deep inside a superstep.  The package answer is
``mpc_min``/``mpc_max`` (explicit ``nan=`` policy, loud empty-set error at
the boundary); raw extremum folds keep sneaking back in reviews.

**Check.**  In ``repro.mpc`` and ``repro.dp``:

* ``np.min/np.max/np.amin/np.amax`` without an ``initial=`` keyword are
  flagged unconditionally — prefer ``mpc_min``/``mpc_max`` (NaN policy) or
  pass ``initial=``.
* builtin ``min(xs)``/``max(xs)`` over a single iterable are flagged unless
  the call has a ``default=`` keyword, the iterable is a non-empty literal,
  or an *emptiness guard* dominates the call (an earlier
  ``if not xs: return/raise/...`` — recognized by
  :func:`repro.analysis.project.has_empty_guard`).

Multi-argument ``min(a, b)`` is scalar and always safe.  Array-method
reductions (``arr.min(axis=...)``) are out of scope: the kernels call them
on state tables whose shape is guaranteed by construction.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Finding, Rule, RuleMeta, register
from repro.analysis.project import (
    ModuleContext,
    attr_chain,
    has_empty_guard,
    iterable_root_names,
)

__all__ = ["RawExtremumRule"]

SCOPE = ("repro.mpc", "repro.dp")

NUMPY_EXTREMA = {"min", "max", "amin", "amax"}


def _is_nonempty_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)) and node.elts:
        return all(not isinstance(e, ast.Starred) for e in node.elts)
    return False


def _guarded_by_ifexp(module: ModuleContext, call: ast.Call, roots: set) -> bool:
    """``1 + max(xs) if xs else 0``: the call sits in the taken branch of a
    ternary whose test is the iterable itself."""
    child: ast.AST = call
    parent = module.parent_of(call)
    while parent is not None and not isinstance(
        parent, (ast.stmt, ast.FunctionDef, ast.AsyncFunctionDef)
    ):
        if isinstance(parent, ast.IfExp) and child is not parent.orelse:
            test = parent.test
            if isinstance(test, ast.Name) and test.id in roots:
                return True
            if (
                isinstance(test, ast.Call)
                and isinstance(test.func, ast.Name)
                and test.func.id == "len"
                and test.args
                and isinstance(test.args[0], ast.Name)
                and test.args[0].id in roots
            ):
                return True
        child = parent
        parent = module.parent_of(parent)
    return False


@register
class RawExtremumRule(Rule):
    meta = RuleMeta(
        name="raw-extremum",
        summary=(
            "use mpc_min/mpc_max (or default=/initial=/an emptiness guard) "
            "instead of raw min/max over possibly-empty record sets"
        ),
        rationale=(
            "PR 2 NaN/empty class: np.min propagated NaN into DP tables and "
            "builtin min() raised ValueError on empty selections mid-superstep"
        ),
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.in_scope(SCOPE):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain in {f"np.{n}" for n in NUMPY_EXTREMA} or chain in {
                f"numpy.{n}" for n in NUMPY_EXTREMA
            }:
                if not any(kw.arg == "initial" for kw in node.keywords):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"raw {chain}() in MPC/DP code: NaN propagates and "
                            "empty input raises mid-superstep — use "
                            "mpc_min/mpc_max (explicit nan= policy) or pass "
                            "initial=",
                        )
                    )
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ("min", "max")
                and len(node.args) == 1
                and not isinstance(node.args[0], ast.Starred)
            ):
                if any(kw.arg == "default" for kw in node.keywords):
                    continue
                arg = node.args[0]
                if _is_nonempty_literal(arg):
                    continue
                roots = iterable_root_names(arg)
                if roots and (
                    has_empty_guard(module, node, roots)
                    or _guarded_by_ifexp(module, node, roots)
                ):
                    continue
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"builtin {node.func.id}() over a possibly-empty "
                        "iterable raises ValueError (PR 2 class) — use "
                        "mpc_min/mpc_max, pass default=, or guard emptiness "
                        "first",
                    )
                )
        return findings
