"""Rule ``untraced-clock``.

**History.**  PR 10 added the observability layer (:mod:`repro.obs`), whose
span timing only composes when every duration in the stack is read from the
same clock with the same semantics.  Before the migration, timing code was
scattered across ad-hoc ``time.time()`` (wall, jumps on NTP steps),
``time.perf_counter()`` and ``time.monotonic()`` readings — three clocks
with different epochs and drift, silently mixed when one layer's start was
subtracted from another layer's end.  PR 10 funnelled every reading through
:mod:`repro.obs.clock` (``clock.now()`` for durations, ``clock.monotonic()``
for deadlines, ``clock.wall()`` for timestamps); this rule pins that
discipline so the next timing call site cannot quietly reintroduce a
fourth clock.

**Check.**  In modules under ``repro.`` — except :mod:`repro.obs` itself,
which is the one sanctioned reader — flag

* attribute calls ``time.time(...)`` / ``time.perf_counter(...)`` /
  ``time.monotonic(...)`` (and their ``_ns`` variants) on any alias of the
  ``time`` module, and
* ``from time import perf_counter``-style imports of those readers (the
  bare-name call sites they enable are invisible to an attribute check).

``time.sleep`` and every other non-clock member of the module stay legal;
the rule polices *readings*, not delays.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.core import Finding, Rule, RuleMeta, register
from repro.analysis.project import ModuleContext

__all__ = ["UntracedClockRule"]

#: Module prefix the rule watches: the whole package...
WATCHED_PREFIX = "repro."
#: ...except the sanctioned clock readers themselves.
EXEMPT_PREFIX = "repro.obs"

#: The stdlib clock readers that must go through repro.obs.clock.
CLOCK_READERS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
}


def _time_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the ``time`` module (``import time [as t]``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or alias.name)
    return aliases


@register
class UntracedClockRule(Rule):
    meta = RuleMeta(
        name="untraced-clock",
        summary=(
            "repro.* modules outside repro.obs must not read "
            "time.time()/time.perf_counter()/time.monotonic() directly; "
            "go through repro.obs.clock (now/monotonic/wall)"
        ),
        rationale=(
            "PR 10 observability class: span math only adds up when every "
            "duration comes from one clock — an ad-hoc reading mixes "
            "epochs/drift with the tracer's and breaks the timeline"
        ),
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        name = module.module_name
        if not name.startswith(WATCHED_PREFIX) or name.startswith(EXEMPT_PREFIX):
            return []
        aliases = _time_aliases(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in CLOCK_READERS:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"direct clock import `from time import "
                                f"{alias.name}`: read the clock through "
                                "repro.obs.clock (now/monotonic/wall) so "
                                "durations compose with the tracer's",
                            )
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in CLOCK_READERS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases
                ):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"direct clock reading time.{func.attr}(): read "
                            "the clock through repro.obs.clock "
                            "(now/monotonic/wall) so durations compose with "
                            "the tracer's",
                        )
                    )
        return findings
