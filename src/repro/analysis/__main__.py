"""``python -m repro.analysis`` — run mpclint (see :mod:`repro.analysis.cli`)."""

import sys

from repro.analysis.cli import main

sys.exit(main())
