"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage or internal error.  ``--output``
always writes the JSON report (CI uploads it as an artifact) regardless of
the ``--format`` chosen for stdout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import all_rules
from repro.analysis.engine import run_analysis
from repro.analysis.report import render_json, render_rule_list, render_text

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "mpclint: AST-based checks of this repository's MPC-simulation "
            "disciplines (word/round charging, shm view lifetimes, cache "
            "invalidation, worker/driver isolation, extremum safety, backend "
            "dispatch parity)."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout report format (default: text)",
    )
    p.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE",
    )
    p.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules with their historical rationale and exit",
    )
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_list(all_rules()))
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"mpclint: no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    try:
        report = run_analysis(paths, select=select)
    except ValueError as exc:
        print(f"mpclint: {exc}", file=sys.stderr)
        return 2

    if args.output:
        Path(args.output).write_text(render_json(report), encoding="utf-8")
    if args.format == "json":
        sys.stdout.write(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code
