"""Text and JSON reporters for analyzer runs."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.core import Report, Rule

__all__ = ["render_text", "render_json", "render_rule_list"]

#: Bumped when the JSON shape changes; consumers (the CI artifact, the golden
#: test) key on it.
JSON_REPORT_VERSION = 1


def render_text(report: Report) -> str:
    lines: List[str] = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: [{f.rule}] {f.message}")
    counts = report.counts_by_rule()
    if counts:
        summary = ", ".join(f"{rule}: {n}" for rule, n in counts.items())
        lines.append("")
        lines.append(f"{len(report.findings)} finding(s) ({summary})")
    else:
        lines.append(
            f"mpclint: clean — {report.files_scanned} file(s), "
            f"{report.suppressions_used} suppression(s) in use"
        )
    return "\n".join(lines)


def to_json_dict(report: Report) -> Dict[str, object]:
    return {
        "version": JSON_REPORT_VERSION,
        "files_scanned": report.files_scanned,
        "suppressions_used": report.suppressions_used,
        "counts_by_rule": report.counts_by_rule(),
        "findings": [f.to_dict() for f in report.findings],
    }


def render_json(report: Report) -> str:
    return json.dumps(to_json_dict(report), indent=2, sort_keys=True) + "\n"


def render_rule_list(rules: List[Rule]) -> str:
    lines = []
    for rule in sorted(rules, key=lambda r: r.meta.name):
        lines.append(f"{rule.meta.name}")
        lines.append(f"    {rule.meta.summary}")
        lines.append(f"    history: {rule.meta.rationale}")
    return "\n".join(lines)
