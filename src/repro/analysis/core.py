"""Core types of the mpclint static-analysis framework.

The framework is deliberately stdlib-only (``ast`` for rules, ``tokenize``
for suppression comments): the CI lint job runs it without installing the
runtime dependencies via ``tools/mpclint.py``, which loads this package
without executing ``repro/__init__`` (that would import numpy).

A *rule* encodes one discipline of this repository (each shipped rule names
the historical bug class it machine-checks — see ``docs/ANALYSIS.md``).  Two
kinds exist:

* :class:`Rule` — visited once per analyzed module, with the parsed AST and
  per-node parent links available on the :class:`~repro.analysis.project.ModuleContext`;
* :class:`ProjectRule` — visited once per run with the whole
  :class:`~repro.analysis.project.Project`, for checks that need cross-module
  state (import graphs, package-wide call fixpoints, non-Python files).

Rules self-register via :func:`register`; importing
:mod:`repro.analysis.rules` populates the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.analysis.project import ModuleContext, Project

__all__ = [
    "Finding",
    "RuleMeta",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "rule_by_name",
    "UNSUPPRESSABLE",
]

#: Pseudo-rules reported by the framework itself.  They cannot be disabled
#: with an inline suppression: an unused suppression must be deleted, not
#: suppressed, and a file that does not parse cannot be reasoned about.
UNSUPPRESSABLE = ("unused-suppression", "parse-error", "bad-suppression")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violated at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class RuleMeta:
    """Static metadata of one rule.

    ``rationale`` names the historical bug class of this repository the rule
    encodes — it is surfaced by ``--list-rules`` and docs/ANALYSIS.md so a
    flagged developer can judge whether their case is the known-bad pattern
    or a legitimate exception worth a justified suppression.
    """

    name: str
    summary: str
    rationale: str


class Rule:
    """Base class of per-module rules."""

    meta: RuleMeta

    def check_module(self, module: "ModuleContext") -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: "ModuleContext", node, message: str) -> Finding:
        """A finding anchored at an AST node of ``module``."""
        return Finding(
            rule=self.meta.name,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """Base class of whole-project rules (import graphs, non-Python files)."""

    def check_module(self, module: "ModuleContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "Project") -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: List[Rule] = []


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and add a rule to the global registry."""
    rule = rule_cls()
    if any(r.meta.name == rule.meta.name for r in _REGISTRY):
        raise ValueError(f"duplicate rule name {rule.meta.name!r}")
    _REGISTRY.append(rule)
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule (importing the rules package on first use)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return list(_REGISTRY)


def rule_by_name(name: str) -> Optional[Rule]:
    for rule in all_rules():
        if rule.meta.name == name:
            return rule
    return None


@dataclass
class Report:
    """Outcome of one analyzer run (see :mod:`repro.analysis.engine`)."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressions_used: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))
