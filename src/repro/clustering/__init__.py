"""Hierarchical clustering of rooted trees (paper Section 4).

The clustering is the problem-independent heart of the framework: it is
computed once per input topology in O(log D) rounds and can then be reused to
solve *any* dynamic programming problem (and any input values) in O(1) rounds
per layer.

* :mod:`~repro.clustering.model` — the :class:`Cluster` /
  :class:`HierarchicalClustering` data model (Definitions 2 and 3).
* :mod:`~repro.clustering.degree_reduction` — Section 4.4: splitting
  high-degree nodes into O(1)-depth trees of auxiliary nodes.
* :mod:`~repro.clustering.builder` — Section 4.2: the alternating
  indegree-zero / indegree-one construction driven by the distributed
  subroutines of :mod:`repro.mpc.treeops`.
* :mod:`~repro.clustering.invariants` — checkers for the clustering
  invariants, used by tests and the Figure-1 benchmark.
"""

from repro.clustering.model import (
    Cluster,
    ClusterKind,
    Element,
    HierarchicalClustering,
    cluster_element,
    node_element,
)
from repro.clustering.builder import ClusteringBuilder, build_hierarchical_clustering
from repro.clustering.degree_reduction import DegreeReductionResult, reduce_degrees

__all__ = [
    "Cluster",
    "ClusterKind",
    "Element",
    "HierarchicalClustering",
    "cluster_element",
    "node_element",
    "ClusteringBuilder",
    "build_hierarchical_clustering",
    "DegreeReductionResult",
    "reduce_degrees",
]
