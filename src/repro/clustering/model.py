"""Data model of the hierarchical clustering (paper Definitions 2 and 3).

An *element* of a layer is either an original tree node or a cluster created
at a lower layer.  A *cluster* groups elements of the previous layer such
that the grouped vertex set has exactly one outgoing edge and at most one
incoming edge in the original tree, and contains at most ``n^delta`` nodes.

The model deliberately stores, for every cluster, the full structure the DP
engine needs to do its per-cluster local computations (Figures 2 and 3 of the
paper): its elements, the contracted-tree edges internal to it (each tagged
with the original tree edge it corresponds to), the top element carrying the
outgoing edge, and the incoming edge / hole element if the cluster has
indegree one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.trees.tree import RootedTree

__all__ = [
    "Element",
    "node_element",
    "cluster_element",
    "is_node_element",
    "is_cluster_element",
    "ClusterKind",
    "Cluster",
    "HierarchicalClustering",
    "VIRTUAL_PARENT",
]

#: Sentinel used as the parent endpoint of the virtual edge leaving the root.
VIRTUAL_PARENT: Hashable = ("__virtual_root__",)

# An element is a tagged tuple: ("node", node_id) or ("cluster", cluster_id).
Element = Tuple[str, Hashable]


def node_element(v: Hashable) -> Element:
    """The element representing original tree node ``v``."""
    return ("node", v)


def cluster_element(cid: int) -> Element:
    """The element representing cluster ``cid``."""
    return ("cluster", cid)


def is_node_element(e: Element) -> bool:
    return e[0] == "node"


def is_cluster_element(e: Element) -> bool:
    return e[0] == "cluster"


class ClusterKind(enum.Enum):
    """Classification of clusters by their number of incoming edges."""

    INDEGREE_ZERO = "indegree-0"
    INDEGREE_ONE = "indegree-1"
    FINAL = "final"  # the single topmost cluster (also indegree-0)


@dataclass
class Cluster:
    """One cluster of the hierarchical clustering.

    Attributes
    ----------
    cid:
        Unique cluster id (assigned in creation order).
    layer:
        The layer at which this cluster is created (1-based; layer 0 is the
        input tree).
    kind:
        Indegree-zero, indegree-one, or the final top cluster.
    elements:
        The elements of layer ``layer - 1`` grouped into this cluster.
    internal_edges:
        Contracted-tree edges between elements of this cluster, as
        ``(child_element, parent_element, original_edge)`` triples, where
        ``original_edge = (child_node, parent_node)`` in the (degree-reduced)
        input tree.
    top_element:
        The element whose top node carries this cluster's outgoing edge.
    top_node:
        The original node that is the child endpoint of the outgoing edge.
    out_edge:
        The outgoing original edge ``(top_node, parent_node)``; for the final
        cluster the parent endpoint is :data:`VIRTUAL_PARENT`.
    in_edge:
        The incoming original edge ``(child_node_below, node_inside)`` if the
        cluster has indegree one, else ``None``.
    hole_element:
        The element of this cluster to which the incoming edge attaches
        (``None`` for indegree-zero clusters).
    """

    cid: int
    layer: int
    kind: ClusterKind
    elements: List[Element]
    internal_edges: List[Tuple[Element, Element, Tuple[Hashable, Hashable]]]
    top_element: Element
    top_node: Hashable
    out_edge: Tuple[Hashable, Hashable]
    in_edge: Optional[Tuple[Hashable, Hashable]] = None
    hole_element: Optional[Element] = None

    # Lazily built element-tree views.  The DP engine creates one
    # ClusterContext per cluster per pass per problem; caching here is what
    # lets solve_many amortize the traversal structure across all problems
    # sharing one clustering.  Callers must treat the returned containers as
    # read-only.
    _element_children: Optional[Dict[Element, List[Element]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _element_parent: Optional[Dict[Element, Element]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _edge_of_element: Optional[Dict[Element, Tuple[Hashable, Hashable]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _sorted_children: Optional[Dict[Element, List[Element]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _postorder: Optional[List[Element]] = field(
        default=None, init=False, repr=False, compare=False
    )
    # Problem-independent local-solve plan built by ClusterContext.local_plan()
    # (postorder entries with prefetched node inputs / edge infos), the
    # hole-to-top element path (ClusterContext.hole_path()), and the ordered
    # hole-path plan used by the layer-wide batched hole-path evaluation
    # (ClusterContext.hole_plan(): one entry per path element, hole first,
    # each tagged with the path child it absorbs).
    _local_plan: Optional[List[Any]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _hole_path: Optional[frozenset] = field(
        default=None, init=False, repr=False, compare=False
    )
    _hole_plan: Optional[List[Any]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def invalidate_payload_plans(self) -> None:
        """Drop the cached plans that prefetch node/edge *payloads*.

        The local-solve and hole-path plans bake ``NodeInput``/``EdgeInfo``
        objects (including the payloads read from the tree at build time)
        into their entries.  A point update that edits a payload of a node or
        edge owned by this cluster must call this so the next access rebuilds
        the plans against the current tree data.  The purely structural
        caches (children lists, postorder, hole path) are untouched — the
        update model never changes the tree's shape.
        """
        self._local_plan = None
        self._hole_plan = None

    def element_children(self) -> Dict[Element, List[Element]]:
        """Children lists of the element tree inside this cluster (cached)."""
        if self._element_children is None:
            children: Dict[Element, List[Element]] = {e: [] for e in self.elements}
            for child, parent, _edge in self.internal_edges:
                children[parent].append(child)
            self._element_children = children
        return self._element_children

    def element_parent(self) -> Dict[Element, Element]:
        """Parent pointers of the element tree inside this cluster (cached)."""
        if self._element_parent is None:
            parent: Dict[Element, Element] = {}
            for child, par, _edge in self.internal_edges:
                parent[child] = par
            self._element_parent = parent
        return self._element_parent

    def edge_of_element(self) -> Dict[Element, Tuple[Hashable, Hashable]]:
        """For every non-top element, the original edge to its parent element."""
        if self._edge_of_element is None:
            self._edge_of_element = {
                child: edge for child, _parent, edge in self.internal_edges
            }
        return self._edge_of_element

    def element_children_sorted(self) -> Dict[Element, List[Element]]:
        """Children lists in the deterministic (repr) absorption order (cached)."""
        if self._sorted_children is None:
            self._sorted_children = {
                e: sorted(kids, key=repr) for e, kids in self.element_children().items()
            }
        return self._sorted_children

    def element_postorder(self) -> List[Element]:
        """Postorder of the element tree (children before parents; cached)."""
        if self._postorder is None:
            children = self.element_children_sorted()
            order: List[Element] = []
            stack = [self.top_element]
            while stack:
                e = stack.pop()
                order.append(e)
                stack.extend(children.get(e, ()))
            order.reverse()
            self._postorder = order
        return self._postorder

    @property
    def num_elements(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(cid={self.cid}, layer={self.layer}, kind={self.kind.value}, "
            f"elements={len(self.elements)})"
        )


@dataclass
class HierarchicalClustering:
    """The full hierarchical clustering of a rooted tree.

    Attributes
    ----------
    tree:
        The (degree-reduced) rooted tree the clustering was built for.
    clusters:
        All clusters keyed by cluster id.
    layers:
        ``layers[i]`` is the list of cluster ids created at layer ``i``
        (``layers[0]`` is empty: layer 0 is the input tree).
    num_layers:
        Index of the topmost layer (the one containing only the final
        cluster).
    final_cluster_id:
        Id of the single topmost cluster.
    stats:
        Free-form statistics recorded by the builder (iteration counts,
        shrink factors, measured rounds), used by benchmarks.
    """

    tree: RootedTree
    clusters: Dict[int, Cluster]
    layers: List[List[int]]
    num_layers: int
    final_cluster_id: int
    stats: Dict[str, Any] = field(default_factory=dict)

    # Lazily built ownership indices used by the incremental update path
    # (repro.dynamic).  They depend only on the clustering's structure, which
    # is immutable for its lifetime, so they are computed once and shared.
    _element_owner: Optional[Dict[Element, int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _edge_owner: Optional[Dict[Tuple[Hashable, Hashable], int]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _in_edge_owners: Optional[Dict[Tuple[Hashable, Hashable], Tuple[int, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _boundary_dependents: Optional[Dict[Tuple[Hashable, Hashable], Tuple[int, ...]]] = (
        field(default=None, init=False, repr=False, compare=False)
    )

    def cluster(self, cid: int) -> Cluster:
        return self.clusters[cid]

    @property
    def final_cluster(self) -> Cluster:
        return self.clusters[self.final_cluster_id]

    def clusters_at_layer(self, layer: int) -> List[Cluster]:
        return [self.clusters[cid] for cid in self.layers[layer]]

    def max_cluster_size(self) -> int:
        """Largest number of elements in any cluster."""
        return max((c.num_elements for c in self.clusters.values()), default=0)

    def max_cluster_node_count(self) -> int:
        """Largest number of *original nodes* participating in any cluster."""
        counts = self.cluster_node_counts()
        return max(counts.values(), default=0)

    def cluster_node_counts(self) -> Dict[int, int]:
        """Number of original nodes participating in each cluster (V(C))."""
        counts: Dict[int, int] = {}
        # Process clusters in creation (layer) order so lower clusters are done first.
        for cid in sorted(self.clusters.keys()):
            c = self.clusters[cid]
            total = 0
            for e in c.elements:
                if is_node_element(e):
                    total += 1
                else:
                    total += counts[e[1]]
            counts[cid] = total
        return counts

    def parent_cluster_of_element(self) -> Dict[Element, int]:
        """Map from every element to the cluster id that absorbs it (cached).

        Callers must treat the returned mapping as read-only.
        """
        if self._element_owner is None:
            owner: Dict[Element, int] = {}
            for cid, c in self.clusters.items():
                for e in c.elements:
                    owner[e] = cid
            self._element_owner = owner
        return self._element_owner

    # ------------------------------------------------------------------ #
    # Ownership / dirty-set queries (the incremental update path)
    # ------------------------------------------------------------------ #

    def node_owner(self, v: Hashable) -> int:
        """Id of the cluster whose local solve reads node ``v``'s payload.

        Every tree node becomes a node element of exactly one cluster; that
        cluster's per-element computation is the only place the DP framework
        feeds ``v``'s payload into ``node_init``/``transition``/``finalize``
        (through :meth:`~repro.dp.problem.ClusterContext.node_input`).
        """
        return self.parent_cluster_of_element()[node_element(v)]

    def edge_internal_owner(self) -> Dict[Tuple[Hashable, Hashable], int]:
        """For every tree edge, the cluster it is internal to (cached).

        Every edge of the (degree-reduced) tree connects two elements of
        exactly one cluster — the paper's "each edge constraint is counted
        exactly once" invariant — and appears in that cluster's
        ``internal_edges``.
        """
        if self._edge_owner is None:
            owner: Dict[Tuple[Hashable, Hashable], int] = {}
            for cid, c in self.clusters.items():
                for _child, _parent, edge in c.internal_edges:
                    owner[edge] = cid
            self._edge_owner = owner
        return self._edge_owner

    def in_edge_owners(self) -> Dict[Tuple[Hashable, Hashable], Tuple[int, ...]]:
        """Clusters whose *incoming* edge is the given edge (cached).

        Nested indegree-one clusters on one hole path can share the same
        incoming edge, so this is a multimap.  The innermost such cluster is
        the one whose local solve applies the edge's transition constraint
        (the hole pseudo-child is absorbed through it); the others depend on
        that cluster's summary and sit on its parent chain anyway.
        """
        if self._in_edge_owners is None:
            owners: Dict[Tuple[Hashable, Hashable], List[int]] = {}
            for cid, c in self.clusters.items():
                if c.in_edge is not None:
                    owners.setdefault(c.in_edge, []).append(cid)
            self._in_edge_owners = {e: tuple(cids) for e, cids in owners.items()}
        return self._in_edge_owners

    def boundary_dependents(self) -> Dict[Tuple[Hashable, Hashable], Tuple[int, ...]]:
        """Clusters whose top-down boundary labels read the given edge (cached).

        Maps every edge to the clusters having it as ``out_edge`` or
        ``in_edge``: when the edge's label changes during a partial top-down
        pass, exactly these (strictly lower-layer) clusters must re-derive
        their internal labels.  The final cluster's virtual out-edge is not
        indexed — the root label is handled explicitly by the update path.
        """
        if self._boundary_dependents is None:
            deps: Dict[Tuple[Hashable, Hashable], List[int]] = {}
            for cid, c in self.clusters.items():
                if cid != self.final_cluster_id:
                    deps.setdefault(c.out_edge, []).append(cid)
                if c.in_edge is not None:
                    deps.setdefault(c.in_edge, []).append(cid)
            self._boundary_dependents = {e: tuple(cids) for e, cids in deps.items()}
        return self._boundary_dependents

    def parent_chain(self, cid: int) -> List[int]:
        """Cluster ids strictly above ``cid`` on its absorption chain.

        Follows "which cluster absorbs this cluster's element" up to the
        final cluster.  Layers strictly increase along the chain, so its
        length is at most ``num_layers - 1`` — the paper's O(log n) dirty
        chain of a point update.
        """
        owner = self.parent_cluster_of_element()
        chain: List[int] = []
        while cid != self.final_cluster_id:
            cid = owner[cluster_element(cid)]
            chain.append(cid)
        return chain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchicalClustering(n={self.tree.num_nodes}, layers={self.num_layers}, "
            f"clusters={len(self.clusters)})"
        )
