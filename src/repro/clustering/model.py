"""Data model of the hierarchical clustering (paper Definitions 2 and 3).

An *element* of a layer is either an original tree node or a cluster created
at a lower layer.  A *cluster* groups elements of the previous layer such
that the grouped vertex set has exactly one outgoing edge and at most one
incoming edge in the original tree, and contains at most ``n^delta`` nodes.

The model deliberately stores, for every cluster, the full structure the DP
engine needs to do its per-cluster local computations (Figures 2 and 3 of the
paper): its elements, the contracted-tree edges internal to it (each tagged
with the original tree edge it corresponds to), the top element carrying the
outgoing edge, and the incoming edge / hole element if the cluster has
indegree one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.trees.tree import RootedTree

__all__ = [
    "Element",
    "node_element",
    "cluster_element",
    "is_node_element",
    "is_cluster_element",
    "ClusterKind",
    "Cluster",
    "HierarchicalClustering",
    "VIRTUAL_PARENT",
]

#: Sentinel used as the parent endpoint of the virtual edge leaving the root.
VIRTUAL_PARENT: Hashable = ("__virtual_root__",)

# An element is a tagged tuple: ("node", node_id) or ("cluster", cluster_id).
Element = Tuple[str, Hashable]


def node_element(v: Hashable) -> Element:
    """The element representing original tree node ``v``."""
    return ("node", v)


def cluster_element(cid: int) -> Element:
    """The element representing cluster ``cid``."""
    return ("cluster", cid)


def is_node_element(e: Element) -> bool:
    return e[0] == "node"


def is_cluster_element(e: Element) -> bool:
    return e[0] == "cluster"


class ClusterKind(enum.Enum):
    """Classification of clusters by their number of incoming edges."""

    INDEGREE_ZERO = "indegree-0"
    INDEGREE_ONE = "indegree-1"
    FINAL = "final"  # the single topmost cluster (also indegree-0)


@dataclass
class Cluster:
    """One cluster of the hierarchical clustering.

    Attributes
    ----------
    cid:
        Unique cluster id (assigned in creation order).
    layer:
        The layer at which this cluster is created (1-based; layer 0 is the
        input tree).
    kind:
        Indegree-zero, indegree-one, or the final top cluster.
    elements:
        The elements of layer ``layer - 1`` grouped into this cluster.
    internal_edges:
        Contracted-tree edges between elements of this cluster, as
        ``(child_element, parent_element, original_edge)`` triples, where
        ``original_edge = (child_node, parent_node)`` in the (degree-reduced)
        input tree.
    top_element:
        The element whose top node carries this cluster's outgoing edge.
    top_node:
        The original node that is the child endpoint of the outgoing edge.
    out_edge:
        The outgoing original edge ``(top_node, parent_node)``; for the final
        cluster the parent endpoint is :data:`VIRTUAL_PARENT`.
    in_edge:
        The incoming original edge ``(child_node_below, node_inside)`` if the
        cluster has indegree one, else ``None``.
    hole_element:
        The element of this cluster to which the incoming edge attaches
        (``None`` for indegree-zero clusters).
    """

    cid: int
    layer: int
    kind: ClusterKind
    elements: List[Element]
    internal_edges: List[Tuple[Element, Element, Tuple[Hashable, Hashable]]]
    top_element: Element
    top_node: Hashable
    out_edge: Tuple[Hashable, Hashable]
    in_edge: Optional[Tuple[Hashable, Hashable]] = None
    hole_element: Optional[Element] = None

    # Lazily built element-tree views.  The DP engine creates one
    # ClusterContext per cluster per pass per problem; caching here is what
    # lets solve_many amortize the traversal structure across all problems
    # sharing one clustering.  Callers must treat the returned containers as
    # read-only.
    _element_children: Optional[Dict[Element, List[Element]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _element_parent: Optional[Dict[Element, Element]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _edge_of_element: Optional[Dict[Element, Tuple[Hashable, Hashable]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _sorted_children: Optional[Dict[Element, List[Element]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _postorder: Optional[List[Element]] = field(
        default=None, init=False, repr=False, compare=False
    )
    # Problem-independent local-solve plan built by ClusterContext.local_plan()
    # (postorder entries with prefetched node inputs / edge infos), the
    # hole-to-top element path (ClusterContext.hole_path()), and the ordered
    # hole-path plan used by the layer-wide batched hole-path evaluation
    # (ClusterContext.hole_plan(): one entry per path element, hole first,
    # each tagged with the path child it absorbs).
    _local_plan: Optional[List[Any]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _hole_path: Optional[frozenset] = field(
        default=None, init=False, repr=False, compare=False
    )
    _hole_plan: Optional[List[Any]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def element_children(self) -> Dict[Element, List[Element]]:
        """Children lists of the element tree inside this cluster (cached)."""
        if self._element_children is None:
            children: Dict[Element, List[Element]] = {e: [] for e in self.elements}
            for child, parent, _edge in self.internal_edges:
                children[parent].append(child)
            self._element_children = children
        return self._element_children

    def element_parent(self) -> Dict[Element, Element]:
        """Parent pointers of the element tree inside this cluster (cached)."""
        if self._element_parent is None:
            parent: Dict[Element, Element] = {}
            for child, par, _edge in self.internal_edges:
                parent[child] = par
            self._element_parent = parent
        return self._element_parent

    def edge_of_element(self) -> Dict[Element, Tuple[Hashable, Hashable]]:
        """For every non-top element, the original edge to its parent element."""
        if self._edge_of_element is None:
            self._edge_of_element = {
                child: edge for child, _parent, edge in self.internal_edges
            }
        return self._edge_of_element

    def element_children_sorted(self) -> Dict[Element, List[Element]]:
        """Children lists in the deterministic (repr) absorption order (cached)."""
        if self._sorted_children is None:
            self._sorted_children = {
                e: sorted(kids, key=repr) for e, kids in self.element_children().items()
            }
        return self._sorted_children

    def element_postorder(self) -> List[Element]:
        """Postorder of the element tree (children before parents; cached)."""
        if self._postorder is None:
            children = self.element_children_sorted()
            order: List[Element] = []
            stack = [self.top_element]
            while stack:
                e = stack.pop()
                order.append(e)
                stack.extend(children.get(e, ()))
            order.reverse()
            self._postorder = order
        return self._postorder

    @property
    def num_elements(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(cid={self.cid}, layer={self.layer}, kind={self.kind.value}, "
            f"elements={len(self.elements)})"
        )


@dataclass
class HierarchicalClustering:
    """The full hierarchical clustering of a rooted tree.

    Attributes
    ----------
    tree:
        The (degree-reduced) rooted tree the clustering was built for.
    clusters:
        All clusters keyed by cluster id.
    layers:
        ``layers[i]`` is the list of cluster ids created at layer ``i``
        (``layers[0]`` is empty: layer 0 is the input tree).
    num_layers:
        Index of the topmost layer (the one containing only the final
        cluster).
    final_cluster_id:
        Id of the single topmost cluster.
    stats:
        Free-form statistics recorded by the builder (iteration counts,
        shrink factors, measured rounds), used by benchmarks.
    """

    tree: RootedTree
    clusters: Dict[int, Cluster]
    layers: List[List[int]]
    num_layers: int
    final_cluster_id: int
    stats: Dict[str, Any] = field(default_factory=dict)

    def cluster(self, cid: int) -> Cluster:
        return self.clusters[cid]

    @property
    def final_cluster(self) -> Cluster:
        return self.clusters[self.final_cluster_id]

    def clusters_at_layer(self, layer: int) -> List[Cluster]:
        return [self.clusters[cid] for cid in self.layers[layer]]

    def max_cluster_size(self) -> int:
        """Largest number of elements in any cluster."""
        return max((c.num_elements for c in self.clusters.values()), default=0)

    def max_cluster_node_count(self) -> int:
        """Largest number of *original nodes* participating in any cluster."""
        counts = self.cluster_node_counts()
        return max(counts.values(), default=0)

    def cluster_node_counts(self) -> Dict[int, int]:
        """Number of original nodes participating in each cluster (V(C))."""
        counts: Dict[int, int] = {}
        # Process clusters in creation (layer) order so lower clusters are done first.
        for cid in sorted(self.clusters.keys()):
            c = self.clusters[cid]
            total = 0
            for e in c.elements:
                if is_node_element(e):
                    total += 1
                else:
                    total += counts[e[1]]
            counts[cid] = total
        return counts

    def parent_cluster_of_element(self) -> Dict[Element, int]:
        """Map from every element to the cluster id that absorbs it."""
        owner: Dict[Element, int] = {}
        for cid, c in self.clusters.items():
            for e in c.elements:
                owner[e] = cid
        return owner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchicalClustering(n={self.tree.num_nodes}, layers={self.num_layers}, "
            f"clusters={len(self.clusters)})"
        )
