"""Checkers for the hierarchical-clustering invariants (Definitions 2 and 3).

Used by the unit/property tests and by the Figure-1 benchmark:

* every cluster has at most ``cluster_capacity`` elements (and participating
  original nodes),
* every cluster's vertex set has exactly one outgoing edge and at most one
  incoming edge in the original tree,
* the clusters of each layer partition the elements they absorb; every
  element (original node or lower cluster) is absorbed exactly once,
* every original edge is internal to exactly one cluster,
* the topmost layer consists of a single cluster whose outgoing edge is the
  virtual root edge.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set, Tuple

from repro.clustering.model import (
    ClusterKind,
    HierarchicalClustering,
    VIRTUAL_PARENT,
    is_cluster_element,
    is_node_element,
    node_element,
)

__all__ = ["check_clustering", "cluster_vertex_sets", "ClusteringInvariantError"]


class ClusteringInvariantError(AssertionError):
    """Raised when a clustering violates one of the paper's invariants."""


def cluster_vertex_sets(hc: HierarchicalClustering) -> Dict[int, Set[Hashable]]:
    """The participating original-node set V(C) for every cluster."""
    sets: Dict[int, Set[Hashable]] = {}
    for cid in sorted(hc.clusters.keys()):
        c = hc.clusters[cid]
        vs: Set[Hashable] = set()
        for e in c.elements:
            if is_node_element(e):
                vs.add(e[1])
            else:
                vs |= sets[e[1]]
        sets[cid] = vs
    return sets


def check_clustering(
    hc: HierarchicalClustering,
    cluster_capacity: int | None = None,
) -> None:
    """Validate all invariants; raise :class:`ClusteringInvariantError` on failure."""
    tree = hc.tree
    capacity = cluster_capacity or hc.stats.get("cluster_capacity")

    # --- every element absorbed exactly once ------------------------------ #
    absorbed: Dict[Tuple[str, Hashable], int] = {}
    for cid, c in hc.clusters.items():
        for e in c.elements:
            if e in absorbed:
                raise ClusteringInvariantError(
                    f"element {e!r} absorbed by clusters {absorbed[e]} and {cid}"
                )
            absorbed[e] = cid
    for v in tree.nodes():
        if node_element(v) not in absorbed:
            raise ClusteringInvariantError(f"node {v!r} never absorbed by any cluster")
    for cid in hc.clusters:
        if cid == hc.final_cluster_id:
            continue
        if ("cluster", cid) not in absorbed:
            raise ClusteringInvariantError(f"cluster {cid} never absorbed by a higher cluster")

    # --- layer structure --------------------------------------------------- #
    if len(hc.layers[hc.num_layers]) != 1:
        raise ClusteringInvariantError("the topmost layer must contain exactly one cluster")
    if hc.layers[hc.num_layers][0] != hc.final_cluster_id:
        raise ClusteringInvariantError("the topmost layer must contain the final cluster")
    for layer_idx, cids in enumerate(hc.layers):
        for cid in cids:
            if hc.clusters[cid].layer != layer_idx:
                raise ClusteringInvariantError(
                    f"cluster {cid} recorded at layer {layer_idx} "
                f"but labeled {hc.clusters[cid].layer}"
                )
    # A cluster may only absorb clusters from strictly lower layers.
    for cid, c in hc.clusters.items():
        for e in c.elements:
            if is_cluster_element(e):
                inner = hc.clusters[e[1]]
                if inner.layer >= c.layer:
                    raise ClusteringInvariantError(
                        f"cluster {cid} (layer {c.layer}) absorbs cluster {inner.cid} "
                        f"(layer {inner.layer})"
                    )

    # --- per-cluster size and cut-edge structure --------------------------- #
    vertex_sets = cluster_vertex_sets(hc)
    for cid, c in hc.clusters.items():
        if capacity is not None and c.num_elements > capacity:
            raise ClusteringInvariantError(
                f"cluster {cid} has {c.num_elements} elements, exceeding capacity {capacity}"
            )
        vs = vertex_sets[cid]
        outgoing = []
        incoming = []
        for child, parent in tree.edges():
            cin = child in vs
            pin = parent in vs
            if cin and not pin:
                outgoing.append((child, parent))
            elif pin and not cin:
                incoming.append((child, parent))
        is_top = cid == hc.final_cluster_id
        if is_top:
            if outgoing:
                raise ClusteringInvariantError(
                    f"final cluster {cid} has outgoing tree edges {outgoing}"
                )
            if c.out_edge[1] is not VIRTUAL_PARENT and c.out_edge[1] != VIRTUAL_PARENT:
                raise ClusteringInvariantError("final cluster's outgoing edge must be virtual")
        else:
            if len(outgoing) != 1:
                raise ClusteringInvariantError(
                    f"cluster {cid} has {len(outgoing)} outgoing edges (must be exactly 1)"
                )
            if outgoing[0] != c.out_edge:
                raise ClusteringInvariantError(
                    f"cluster {cid} records out edge {c.out_edge} but the cut edge is {outgoing[0]}"
                )
        if len(incoming) > 1:
            raise ClusteringInvariantError(
                f"cluster {cid} has {len(incoming)} incoming edges (must be at most 1)"
            )
        if c.kind == ClusterKind.INDEGREE_ONE:
            if len(incoming) != 1:
                raise ClusteringInvariantError(
                    f"indegree-one cluster {cid} has {len(incoming)} incoming edges"
                )
            if incoming[0] != c.in_edge:
                raise ClusteringInvariantError(
                    f"cluster {cid} records in edge {c.in_edge} but the cut edge is {incoming[0]}"
                )
        if c.kind in (ClusterKind.INDEGREE_ZERO, ClusterKind.FINAL) and incoming:
            raise ClusteringInvariantError(
                f"indegree-zero cluster {cid} has incoming edges {incoming}"
            )

    # --- every original edge internal to exactly one cluster --------------- #
    seen_edges: Dict[Tuple[Hashable, Hashable], int] = {}
    for cid, c in hc.clusters.items():
        for _child_e, _parent_e, edge in c.internal_edges:
            if edge in seen_edges:
                raise ClusteringInvariantError(
                    f"edge {edge} internal to clusters {seen_edges[edge]} and {cid}"
                )
            seen_edges[edge] = cid
    for edge in tree.edges():
        if edge not in seen_edges:
            raise ClusteringInvariantError(f"edge {edge} is internal to no cluster")
