"""High-degree node handling (paper Section 4.4).

If a node has more than ``n^(delta/2)`` children, no small cluster can contain
it together with its children.  The remedy is to replace every high-degree
node ``u`` with an O(1)-depth tree: new *auxiliary* nodes are inserted between
``u`` and batches of its children, so that every node ends up with at most the
threshold number of children.  Edges are tagged as ``original`` or
``auxiliary`` so DP problems can treat them differently (Section 5.3); the
original parent of every auxiliary node is remembered (needed e.g. by the
tree-median problem's don't-care nodes, Section 6.1.1).

The transformation increases the node count and the diameter by at most a
constant factor (each original edge passes through at most
``ceil(log_t(max_degree))`` auxiliary levels, which is O(1) for
``max_degree <= n`` and threshold ``t = n^(delta/2)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.trees.tree import RootedTree

__all__ = ["EdgeKind", "DegreeReductionResult", "reduce_degrees", "AUX_PREFIX"]

#: Auxiliary node ids are tuples ("aux", original_parent, counter) so they can
#: never collide with user node ids.
AUX_PREFIX = "aux"


class EdgeKind:
    """Edge tags used by the DP problems (Section 5.3)."""

    ORIGINAL = "original"
    AUXILIARY = "auxiliary"


@dataclass
class DegreeReductionResult:
    """Outcome of :func:`reduce_degrees`.

    Attributes
    ----------
    tree:
        The degree-reduced tree.  Node data of original nodes is preserved;
        auxiliary nodes have no node data.  Edge data follows the rerouting:
        the payload of an original edge ``(c, p)`` lives on the reduced edge
        from ``c`` to its new (possibly auxiliary) parent; edges between
        auxiliary nodes carry none.
    edge_kinds:
        ``(child, parent) -> EdgeKind`` for every edge of the reduced tree.
    original_parent:
        For every node of the reduced tree, the *original* node that acts as
        its logical parent: for an original node this is its original parent;
        for an auxiliary node it is the high-degree node it was created for.
    aux_nodes:
        The set of auxiliary node ids that were introduced.
    threshold:
        The child-count threshold that was enforced.
    """

    tree: RootedTree
    edge_kinds: Dict[Tuple[Hashable, Hashable], str]
    original_parent: Dict[Hashable, Hashable]
    aux_nodes: set
    threshold: int

    @property
    def is_identity(self) -> bool:
        """True when no auxiliary nodes were needed."""
        return not self.aux_nodes

    def project_labels(
        self, labels: Dict[Tuple[Hashable, Hashable], Any]
    ) -> Dict[Tuple[Hashable, Hashable], Any]:
        """Restrict edge labels of the reduced tree to the original edges.

        An original edge ``(c, p)`` of the input tree may have been rerouted
        through auxiliary nodes as ``(c, aux_i)``; its label is the label of
        the reduced edge whose child endpoint is ``c`` (the label of an edge
        is the output of its child endpoint, so this is exactly the paper's
        projection).
        """
        out: Dict[Tuple[Hashable, Hashable], Any] = {}
        for (child, parent), lab in labels.items():
            if child in self.aux_nodes:
                continue
            orig_parent = self.original_parent.get(child, parent)
            out[(child, orig_parent)] = lab
        return out


def reduce_degrees(
    tree: RootedTree,
    threshold: int,
    edge_kinds: Optional[Dict[Tuple[Hashable, Hashable], str]] = None,
) -> DegreeReductionResult:
    """Split nodes with more than ``threshold`` children into O(1)-depth trees.

    The splitting mirrors the paper's O(1)-round MPC procedure: whenever a
    node has more than ``threshold`` children, the children are grouped into
    batches of at most ``threshold`` and every batch is attached to a fresh
    auxiliary node whose parent is the original node.  The procedure repeats
    (on the auxiliary nodes) until all degrees are at most ``threshold``; the
    number of repetitions is ``ceil(log_threshold(max_degree))`` = O(1).
    """
    if threshold < 2:
        raise ValueError("threshold must be at least 2")

    parent: Dict[Hashable, Hashable] = dict(tree.parent)
    kinds: Dict[Tuple[Hashable, Hashable], str] = {}
    for child, par in tree.parent.items():
        if child != tree.root:
            base_kind = EdgeKind.ORIGINAL
            if edge_kinds is not None:
                base_kind = edge_kinds.get((child, par), EdgeKind.ORIGINAL)
            kinds[(child, par)] = base_kind

    original_parent: Dict[Hashable, Hashable] = {
        v: (v if v == tree.root else tree.parent[v]) for v in tree.nodes()
    }
    aux_nodes: set = set()
    counter = 0

    # children map of the evolving reduced tree
    children: Dict[Hashable, List[Hashable]] = {v: list(tree.children(v)) for v in tree.nodes()}

    work = [v for v in tree.nodes() if len(children[v]) > threshold]
    # Each pass reduces the maximum degree by a factor of `threshold`, so the
    # loop runs O(log_threshold(max_degree)) = O(1) times.
    while work:
        next_work: List[Hashable] = []
        for u in work:
            kids = children[u]
            if len(kids) <= threshold:
                continue
            new_children: List[Hashable] = []
            for i in range(0, len(kids), threshold):
                batch = kids[i : i + threshold]
                if len(batch) == len(kids):
                    new_children.extend(batch)
                    continue
                aux = (AUX_PREFIX, _origin_of(u, original_parent), counter)
                counter += 1
                aux_nodes.add(aux)
                parent[aux] = u
                kinds[(aux, u)] = EdgeKind.AUXILIARY
                original_parent[aux] = _origin_of(u, original_parent)
                children[aux] = []
                for c in batch:
                    old_parent = parent[c]
                    old_kind = kinds.pop((c, old_parent))
                    parent[c] = aux
                    kinds[(c, aux)] = old_kind
                    children[aux].append(c)
                new_children.append(aux)
            children[u] = new_children
            if len(new_children) > threshold:
                next_work.append(u)
        work = next_work

    # Re-key edge payloads to the rerouted edges: the data of an original
    # edge (c, p) belongs to the logical connection between c and p, which in
    # the reduced tree is the edge from c to its (possibly auxiliary) new
    # parent — keeping the dict keyed by the old edge would silently drop
    # the payload (e.g. max-SAT clause weights) for every rerouted child.
    # Auxiliary-to-anything edges carry no payload.
    edge_data = {(c, parent[c]): data for (c, _p), data in tree.edge_data.items()}
    reduced = RootedTree(
        root=tree.root,
        parent=parent,
        node_data=dict(tree.node_data),
        edge_data=edge_data,
    )
    reduced.validate()
    return DegreeReductionResult(
        tree=reduced,
        edge_kinds=kinds,
        original_parent=original_parent,
        aux_nodes=aux_nodes,
        threshold=threshold,
    )


def _origin_of(u: Hashable, original_parent: Dict[Hashable, Hashable]) -> Hashable:
    """The original node an auxiliary node stands in for (or ``u`` itself)."""
    if isinstance(u, tuple) and len(u) == 3 and u[0] == AUX_PREFIX:
        return u[1]
    return u
