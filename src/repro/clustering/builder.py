"""Construction of the hierarchical clustering (paper Section 4.2).

The builder alternates two steps on the *contracted tree* (whose vertices are
the still-unabsorbed elements):

1. **Indegree-zero step** — run the capped subtree-size computation on the
   uncolored part of the contracted tree (``CountSubtreeSizes`` /
   ``GatherSubtrees``); every maximal light subtree (a light element whose
   parent is heavy) becomes an indegree-zero cluster, together with the
   colored elements hanging off it.  The new cluster element is *colored*
   (it is a leaf of the contracted tree).

2. **Indegree-one step** — in the uncolored part of the contracted tree,
   elements with exactly one uncolored child and an uncolored parent form
   maximal paths (``CountDistances``); every path is cut into fragments of at
   most the light threshold, and every fragment — together with the colored
   elements hanging off it — becomes an indegree-one cluster (a caterpillar).

When the whole remaining uncolored tree fits under the cluster capacity, the
remaining elements form the single **final** cluster and the construction
stops.  The number of iterations is O(1) by the shrinkage argument of
Lemmas 5–7 (each pair of steps shrinks the uncolored tree by a factor of
``Omega(n^(delta/2))``); the per-step round cost is O(log D) because the
distributed subroutines converge by doubling.

The distributed subroutines (:mod:`repro.mpc.treeops`) charge their rounds
through the simulator whichever backend implements them — the record-level
reference path on the simulated machines, or the default array backend
(whose op compute may further be placed on the process execution pool, see
:mod:`repro.mpc.exec`); the driver-side bookkeeping that
assembles the :class:`~repro.clustering.model.Cluster` objects corresponds to
per-machine local work plus a constant number of sort/route rounds per step,
which are charged under the label ``"clustering-bookkeeping"``.
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.clustering.model import (
    Cluster,
    ClusterKind,
    Element,
    HierarchicalClustering,
    VIRTUAL_PARENT,
    cluster_element,
    node_element,
)
from repro.mpc.simulator import MPCSimulator
from repro.mpc.treeops import capped_subtree_gather, degree2_path_positions
from repro.trees.tree import RootedTree

__all__ = ["ClusteringBuilder", "build_hierarchical_clustering"]

#: Constant number of bookkeeping rounds charged per construction step
#: (one sort to co-locate every new cluster's elements plus one routing step,
#: as described in Section 5.1 of the paper).
BOOKKEEPING_ROUNDS_PER_STEP = 2

#: Hard safety bound on construction iterations; the analysis guarantees O(1)
#: pairs of steps, this merely converts a hypothetical bug into an exception.
MAX_ITERATIONS = 200


class ClusteringBuilder:
    """Builds a :class:`HierarchicalClustering` for a rooted tree."""

    def __init__(
        self,
        sim: MPCSimulator,
        tree: RootedTree,
        cluster_capacity: Optional[int] = None,
        light_threshold: Optional[int] = None,
    ):
        """
        Parameters
        ----------
        sim:
            The MPC simulator to run (and account) the construction on.
        tree:
            The rooted input tree.  High degrees should already have been
            reduced (Section 4.4) — see
            :func:`repro.clustering.degree_reduction.reduce_degrees`; the
            builder itself only assumes degrees are at most the light
            threshold.
        cluster_capacity:
            Maximum number of elements per cluster (defaults to the
            configuration's ``n^delta`` capacity).
        light_threshold:
            The ``n^(delta/2)`` threshold separating light from heavy
            elements (defaults to the configuration's value).
        """
        self.sim = sim
        self.tree = tree
        cfg = sim.config
        self.cluster_capacity = cluster_capacity or cfg.cluster_capacity()
        self.light_threshold = light_threshold or cfg.light_threshold()
        if self.light_threshold < 2:
            self.light_threshold = 2
        # A cluster holds up to `light_threshold` uncolored elements, each with
        # up to `light_threshold` colored children (after degree reduction), so
        # the element capacity is the square of the light threshold -- the
        # paper's n^delta = (n^(delta/2))^2 relation, kept explicit here
        # because the configured floors/constants can break the exact square.
        self.cluster_capacity = max(
            self.cluster_capacity, self.light_threshold * (self.light_threshold + 1)
        )

        # --- contracted-tree state -------------------------------------- #
        root_elem = node_element(tree.root)
        self.elements: Set[Element] = {node_element(v) for v in tree.nodes()}
        self.parent_elem: Dict[Element, Element] = {}
        self.out_edge_of: Dict[Element, Tuple[Hashable, Hashable]] = {}
        for v in tree.nodes():
            e = node_element(v)
            if v == tree.root:
                self.parent_elem[e] = e
                self.out_edge_of[e] = (v, VIRTUAL_PARENT)
            else:
                self.parent_elem[e] = node_element(tree.parent[v])
                self.out_edge_of[e] = (v, tree.parent[v])
        self.root_elem: Element = root_elem
        self.top_node_of: Dict[Element, Hashable] = {
            node_element(v): v for v in tree.nodes()
        }
        self.colored: Set[Element] = set()
        # Incrementally maintained views of the contracted tree (kept in sync
        # by _make_cluster): the uncolored element set, and the colored
        # elements grouped by their uncolored parent, each group kept in
        # repr-sorted order.  They replace the full rescans and the
        # rebuild-and-sort of _colored_children_map() that earlier versions
        # performed on every construction step.
        self.uncolored: Set[Element] = set(self.elements)
        self.colored_children: Dict[Element, List[Element]] = {}

        # --- outputs ------------------------------------------------------ #
        self.clusters: Dict[int, Cluster] = {}
        self.layers: List[List[int]] = [[]]  # layer 0 = input tree
        self._next_cid = 0
        self.iteration_log: List[Dict[str, int]] = []

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #

    def build(self) -> HierarchicalClustering:
        """Run the construction and return the hierarchical clustering."""
        start = self.sim.snapshot()
        iterations = 0
        while True:
            if len(self.uncolored) <= self.light_threshold:
                self._finalize()
                break
            if iterations >= MAX_ITERATIONS:
                raise RuntimeError(
                    "hierarchical clustering did not converge "
                    f"within {MAX_ITERATIONS} iterations"
                )
            iterations += 1
            before = len(self.uncolored)
            self._indegree_zero_step()
            mid = len(self.uncolored)
            # Re-check the termination condition between the two half-steps.
            if mid <= self.light_threshold:
                self._finalize()
                self.iteration_log.append(
                    {"iteration": iterations, "uncolored_before": before, "uncolored_after": mid}
                )
                break
            self._indegree_one_step()
            after = len(self.uncolored)
            self.iteration_log.append(
                {"iteration": iterations, "uncolored_before": before, "uncolored_after": after}
            )

        rounds = self.sim.stats.diff(start)
        hc = HierarchicalClustering(
            tree=self.tree,
            clusters=self.clusters,
            layers=self.layers,
            num_layers=len(self.layers) - 1,
            final_cluster_id=self._final_cid,
            stats={
                "iterations": iterations,
                "iteration_log": self.iteration_log,
                "rounds": rounds.rounds,
                "charged_rounds": rounds.charged_rounds,
                "total_rounds": rounds.rounds + rounds.charged_rounds,
                "light_threshold": self.light_threshold,
                "cluster_capacity": self.cluster_capacity,
            },
        )
        return hc

    # ------------------------------------------------------------------ #
    # Step 1: indegree-zero clusters
    # ------------------------------------------------------------------ #

    def _indegree_zero_step(self) -> None:
        layer = len(self.layers)
        new_layer: List[int] = []

        uncolored = list(self.uncolored)
        eid = {e: i for i, e in enumerate(uncolored)}
        # Contracted uncolored tree in integer ids for the distributed routine.
        parent_int: Dict[int, int] = {}
        children_int: Dict[int, List[int]] = {i: [] for i in range(len(uncolored))}
        root_int = eid[self.root_elem]
        for e in uncolored:
            p = self.parent_elem[e]
            if e == self.root_elem:
                parent_int[eid[e]] = eid[e]
            else:
                parent_int[eid[e]] = eid[p]
                children_int[eid[p]].append(eid[e])

        info = capped_subtree_gather(
            self.sim, parent_int, children_int, root_int, cap=self.light_threshold
        )

        # Colored children (in the full contracted tree) of each uncolored
        # element.  The incrementally maintained map is safe to read while
        # clusters of this step are created: a new cluster element is colored
        # under a *heavy* parent, and only light elements are absorbed here.
        colored_children = self.colored_children

        # Maximal light subtrees: light element whose parent is heavy.  Select
        # them first (against the pre-step parent map), then create the
        # clusters, so absorbing one subtree cannot confuse the selection of
        # another.
        selected: List[Element] = []
        for e in uncolored:
            i = eid[e]
            if info[i].heavy:
                continue
            if e == self.root_elem:
                # A light root means the whole remaining tree is small; that is
                # handled by the caller's termination check, not here.
                continue
            pi = parent_int[i]
            if not info[pi].heavy:
                continue
            selected.append(e)

        for e in selected:
            i = eid[e]
            members_uncolored = [uncolored[j] for j in sorted(info[i].members)]
            cid = self._make_cluster(
                layer=layer,
                kind=ClusterKind.INDEGREE_ZERO,
                uncolored_members=members_uncolored,
                colored_children=colored_children,
                top_element=e,
                in_edge=None,
                hole_element=None,
            )
            new_layer.append(cid)

        self.sim.charge_rounds(BOOKKEEPING_ROUNDS_PER_STEP, label="clustering-bookkeeping")
        self.layers.append(new_layer)

    # ------------------------------------------------------------------ #
    # Step 2: indegree-one clusters
    # ------------------------------------------------------------------ #

    def _indegree_one_step(self) -> None:
        layer = len(self.layers)
        new_layer: List[int] = []

        uncolored = self.uncolored
        uncolored_children: Dict[Element, List[Element]] = {e: [] for e in uncolored}
        for e in uncolored:
            if e == self.root_elem:
                continue
            p = self.parent_elem[e]
            if p in uncolored:
                uncolored_children[p].append(e)

        # Path elements: exactly one uncolored child and an uncolored parent.
        path_elems = [
            e
            for e in uncolored
            if e != self.root_elem
            and len(uncolored_children[e]) == 1
            and self.parent_elem[e] in uncolored
        ]
        if not path_elems:
            self.layers.append(new_layer)
            self.sim.charge_rounds(BOOKKEEPING_ROUNDS_PER_STEP, label="clustering-bookkeeping")
            return

        path_set = set(path_elems)
        eid = {e: i for i, e in enumerate(path_elems)}
        path_parent: Dict[int, Optional[int]] = {}
        path_child: Dict[int, Optional[int]] = {}
        for e in path_elems:
            i = eid[e]
            p = self.parent_elem[e]
            path_parent[i] = eid[p] if p in path_set else None
            c = uncolored_children[e][0]
            path_child[i] = eid[c] if c in path_set else None

        positions = degree2_path_positions(self.sim, path_parent, path_child)

        # Group path elements into maximal paths by their bottom anchor, then
        # cut each path into fragments of at most `light_threshold` elements.
        by_anchor: Dict[int, List[Tuple[int, int]]] = {}
        for i in eid.values():
            up_t, up_d, dn_t, dn_d = positions[i]
            by_anchor.setdefault(dn_t, []).append((dn_d, i))

        # Safe to read live during fragment creation: indegree-one cluster
        # elements stay uncolored, so the map only loses the absorbed entries.
        colored_children = self.colored_children
        frag = self.light_threshold

        # When a fragment lower on the same path has already been contracted,
        # the element below the next fragment is the new cluster element, not
        # the absorbed path element; `replaced_by` tracks that substitution.
        replaced_by: Dict[Element, Element] = {}

        for _anchor, members in by_anchor.items():
            members.sort()
            # fragment index = dist_to_bottom // frag
            fragments: Dict[int, List[Tuple[int, int]]] = {}
            for dn_d, i in members:
                fragments.setdefault(dn_d // frag, []).append((dn_d, i))
            for _, frag_members in sorted(fragments.items()):
                frag_members.sort()
                elems = [path_elems[i] for _, i in frag_members]
                bottom = elems[0]
                top = elems[-1]
                below_child = uncolored_children[bottom][0]
                below_child = replaced_by.get(below_child, below_child)
                in_edge = self.out_edge_of[below_child]
                cid = self._make_cluster(
                    layer=layer,
                    kind=ClusterKind.INDEGREE_ONE,
                    uncolored_members=elems,
                    colored_children=colored_children,
                    top_element=top,
                    in_edge=in_edge,
                    hole_element=bottom,
                    below_child=below_child,
                )
                replaced_by[top] = cluster_element(cid)
                new_layer.append(cid)

        self.sim.charge_rounds(BOOKKEEPING_ROUNDS_PER_STEP, label="clustering-bookkeeping")
        self.layers.append(new_layer)

    # ------------------------------------------------------------------ #
    # Final cluster
    # ------------------------------------------------------------------ #

    def _finalize(self) -> None:
        layer = len(self.layers)
        colored_children = self.colored_children
        uncolored_members = list(self.uncolored)
        # Order does not matter; make it deterministic.
        uncolored_members.sort(key=lambda e: repr(e))
        cid = self._make_cluster(
            layer=layer,
            kind=ClusterKind.FINAL,
            uncolored_members=uncolored_members,
            colored_children=colored_children,
            top_element=self.root_elem,
            in_edge=None,
            hole_element=None,
        )
        self.layers.append([cid])
        self._final_cid = cid
        self.sim.charge_rounds(BOOKKEEPING_ROUNDS_PER_STEP, label="clustering-bookkeeping")

    # ------------------------------------------------------------------ #
    # Cluster assembly and contraction
    # ------------------------------------------------------------------ #

    def _colored_children_map(self) -> Dict[Element, List[Element]]:
        """Colored elements grouped by their (uncolored) parent element.

        Recomputed from scratch — the incremental ``self.colored_children``
        is the view the construction uses; this method is kept as the
        reference for the equivalence tests.
        """
        out: Dict[Element, List[Element]] = {}
        for e in self.colored:
            p = self.parent_elem[e]
            out.setdefault(p, []).append(e)
        for p in out:
            out[p].sort(key=lambda x: repr(x))
        return out

    def _make_cluster(
        self,
        layer: int,
        kind: ClusterKind,
        uncolored_members: List[Element],
        colored_children: Dict[Element, List[Element]],
        top_element: Element,
        in_edge: Optional[Tuple[Hashable, Hashable]],
        hole_element: Optional[Element],
        below_child: Optional[Element] = None,
    ) -> int:
        member_set: Set[Element] = set(uncolored_members)
        all_members: List[Element] = list(uncolored_members)
        for u in uncolored_members:
            for c in colored_children.get(u, []):
                all_members.append(c)
                member_set.add(c)

        internal_edges = []
        for e in all_members:
            if e == top_element:
                continue
            p = self.parent_elem[e]
            if p in member_set:
                internal_edges.append((e, p, self.out_edge_of[e]))

        cid = self._next_cid
        self._next_cid += 1
        cluster = Cluster(
            cid=cid,
            layer=layer,
            kind=kind,
            elements=all_members,
            internal_edges=internal_edges,
            top_element=top_element,
            top_node=self.top_node_of[top_element],
            out_edge=self.out_edge_of[top_element],
            in_edge=in_edge,
            hole_element=hole_element,
        )
        self.clusters[cid] = cluster

        # --- contract the cluster into a single element ------------------- #
        ce = cluster_element(cid)
        parent_of_top = self.parent_elem[top_element]
        for e in all_members:
            del self.parent_elem[e]
            self.elements.discard(e)
            self.colored.discard(e)
            self.uncolored.discard(e)
        for u in uncolored_members:
            # Every colored child of an absorbed element is absorbed with it.
            self.colored_children.pop(u, None)
        self.elements.add(ce)
        self.top_node_of[ce] = cluster.top_node
        self.out_edge_of[ce] = cluster.out_edge
        if top_element == self.root_elem:
            self.parent_elem[ce] = ce
            self.root_elem = ce
        else:
            self.parent_elem[ce] = parent_of_top

        # Re-hang elements whose parent was absorbed.  For an indegree-zero
        # cluster nothing outside pointed into it; for an indegree-one cluster
        # only the below child did; the final cluster has no outside.
        if below_child is not None:
            self.parent_elem[below_child] = ce

        if kind in (ClusterKind.INDEGREE_ZERO, ClusterKind.FINAL):
            self.colored.add(ce)
            parent = self.parent_elem[ce]
            if parent != ce:
                siblings = self.colored_children.setdefault(parent, [])
                bisect.insort(siblings, ce, key=repr)
        else:
            self.uncolored.add(ce)
        return cid


def build_hierarchical_clustering(
    sim: MPCSimulator,
    tree: RootedTree,
    cluster_capacity: Optional[int] = None,
    light_threshold: Optional[int] = None,
) -> HierarchicalClustering:
    """Convenience wrapper around :class:`ClusteringBuilder`."""
    return ClusteringBuilder(
        sim, tree, cluster_capacity=cluster_capacity, light_threshold=light_threshold
    ).build()
