"""The always-on serving layer: concurrent updates and reads over one tree.

``repro.serving`` turns a :class:`~repro.core.pipeline.PreparedTree` plus a
batch of problems into a long-running asyncio server
(:class:`TreeServer`): point updates are coalesced into batches applied
through one shared :class:`~repro.dynamic.IncrementalSolverGroup` pass per
tick, and reads are snapshot-isolated — a query sees the complete pre- or
post-batch solved state, never a torn one.  Construct via
:meth:`PreparedTree.serve() <repro.core.pipeline.PreparedTree.serve>`.

See ``docs/ARCHITECTURE.md`` (serving layer) for the data flow and
``docs/CONFIG.md`` for the knobs.
"""

from repro.serving.batcher import ServerClosedError, UpdateBatcher
from repro.serving.config import ServerConfig
from repro.serving.health import ServerHealth
from repro.serving.server import BatchApplied, TreeServer
from repro.serving.snapshots import Snapshot, SnapshotStore

__all__ = [
    "BatchApplied",
    "ServerClosedError",
    "ServerConfig",
    "ServerHealth",
    "Snapshot",
    "SnapshotStore",
    "TreeServer",
    "UpdateBatcher",
]
