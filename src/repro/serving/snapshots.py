"""Versioned, snapshot-isolated read side of the serving layer.

A :class:`Snapshot` pairs one problem's immutable
:class:`~repro.dynamic.SolvedView` with the server's batch version; the
:class:`SnapshotStore` publishes them with a single reference swap, so a
reader — running in the event loop while the writer thread applies the next
batch — always sees a complete pre- or post-batch state, never a torn one.

The store relies on the single-writer discipline of the serving layer:
only the batcher's apply path publishes, readers only ever call
:meth:`SnapshotStore.current`.  Publication atomicity comes from Python
reference assignment (a reader holds either the old dict or the new one);
no locks are needed because snapshots are immutable once published.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, Mapping, Tuple

from repro.dynamic import SolvedView

__all__ = ["Snapshot", "SnapshotStore"]


@dataclass(frozen=True)
class Snapshot:
    """One problem's solved state at one batch boundary."""

    problem: str
    version: int
    view: SolvedView

    @property
    def value(self) -> Any:
        return self.view.value

    @property
    def root_label(self) -> Any:
        return self.view.root_label

    @property
    def node_labels(self) -> Mapping[Hashable, Any]:
        return self.view.node_labels

    @property
    def edge_labels(self) -> Mapping[Tuple[Hashable, Hashable], Any]:
        return self.view.edge_labels

    @property
    def output(self) -> Any:
        return self.view.output


class SnapshotStore:
    """Current snapshot per problem, swapped atomically per batch."""

    def __init__(self) -> None:
        self._current: Dict[str, Snapshot] = {}

    def publish_all(self, snapshots: Iterable[Snapshot]) -> None:
        """Swap in a batch's snapshots for every problem at once.

        Built as a fresh dict and assigned in one reference store, so a
        reader iterating several problems within one event-loop step sees
        them all at the same version.  Versions must advance monotonically —
        a regression means two writers raced, which the batcher forbids.
        """
        staged = dict(self._current)
        for snap in snapshots:
            cur = staged.get(snap.problem)
            if cur is not None and snap.version <= cur.version:
                raise ValueError(
                    f"snapshot version regression for {snap.problem!r}: "
                    f"{cur.version} -> {snap.version} (two writers?)"
                )
            staged[snap.problem] = snap
        self._current = staged

    def current(self, problem: str) -> Snapshot:
        """The latest published snapshot of ``problem``."""
        try:
            return self._current[problem]
        except KeyError:
            raise KeyError(
                f"no snapshot for problem {problem!r}; "
                f"published: {tuple(self._current)!r}"
            ) from None

    def problems(self) -> Tuple[str, ...]:
        return tuple(self._current)

    def versions(self) -> Dict[str, int]:
        """Current version per problem (equal across problems between batches)."""
        return {name: snap.version for name, snap in self._current.items()}
