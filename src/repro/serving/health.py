"""Liveness/throughput counters of a running server (:class:`ServerHealth`).

The serving-layer analogue of the exec layer's
:class:`~repro.mpc.exec.faults.ExecHealth`, and built on it: a server's
full health report embeds the exec pool's supervision counters (retries,
rebuilds, worker deaths) under ``"exec"`` when the deployment runs the
process backend, so one JSON document answers both "is the server keeping
up" and "is the pool under it healthy".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["ServerHealth"]


@dataclass
class ServerHealth:
    """Monotonic counters of one :class:`~repro.serving.TreeServer` lifetime."""

    #: Update batches applied successfully (== the current snapshot version).
    batches_applied: int = 0
    #: Batches whose solver pass raised; their submitters got the exception
    #: and the next successful batch healed the pending dirty chains.
    batch_failures: int = 0
    #: Point updates accepted into the queue (pre-coalescing).
    updates_enqueued: int = 0
    #: Point updates applied by successful batches.
    updates_applied: int = 0
    #: Point updates rejected at submission (bad descriptor; never queued).
    updates_rejected: int = 0
    #: Snapshot reads served (value/label queries and raw snapshots).
    queries_served: int = 0
    #: Snapshots published (problems x successful batches, + the initial set).
    snapshots_published: int = 0
    #: Most recent per-problem update reports, as dicts (diagnostic detail).
    last_batch: Dict[str, Any] = field(default_factory=dict)

    def as_dict(
        self,
        exec_health: Optional[Dict[str, Any]] = None,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """JSON-ready report; ``exec_health`` embeds the pool's supervision
        counters (``None`` under the inline backend) and ``metrics`` the
        run's :meth:`~repro.obs.MetricsRegistry.to_json` exposition
        (``None`` under ``obs="off"``)."""
        return {
            "server": {
                "batches_applied": self.batches_applied,
                "batch_failures": self.batch_failures,
                "updates_enqueued": self.updates_enqueued,
                "updates_applied": self.updates_applied,
                "updates_rejected": self.updates_rejected,
                "queries_served": self.queries_served,
                "snapshots_published": self.snapshots_published,
                "last_batch": dict(self.last_batch),
            },
            "exec": exec_health,
            "metrics": metrics,
        }
