"""The single-writer coalescing queue between clients and the solver.

Concurrent ``update()`` calls enqueue *submissions* (each a list of point
updates that must apply atomically); the batcher's run loop drains the
queue into one batch per tick — bounded by ``max_batch`` updates, optionally
lingering ``max_delay`` seconds to coalesce more — and hands the combined
list to the server's apply callable.  Every submitter awaits a future
resolved with the batch result, so a client returns exactly when the batch
containing its updates has been applied and its snapshots published.

Failure containment: if the apply raises (a payload the problem's rules
reject only mid-pass, an injected chaos fault), every submission in that
batch gets the exception — the updates' payloads are written but their
chains unsolved, which the incremental layer's pending-dirty set folds into
the next batch (see :mod:`repro.dynamic.incremental`).  Later submissions
are unaffected.

Shutdown is graceful by construction: :meth:`UpdateBatcher.shutdown` posts
a sentinel behind all accepted work, the run loop finishes every batch
before it and exits, and anything enqueued after the sentinel (a racing
submit) is failed with :class:`ServerClosedError`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, List, Optional, Sequence, Tuple

from repro.dynamic import PointUpdate
from repro.obs import DEFAULT_SIZE_BUCKETS, clock
from repro.obs.context import OBS_OFF

__all__ = ["ServerClosedError", "UpdateBatcher"]


class ServerClosedError(RuntimeError):
    """The server is stopped (or stopping) and accepts no more work."""


_Submission = Tuple[List[PointUpdate], "asyncio.Future[Any]"]
_STOP: Any = object()


class UpdateBatcher:
    """Coalesces concurrent update submissions into per-tick solver batches."""

    def __init__(
        self,
        apply_batch: Callable[[List[PointUpdate]], Awaitable[Any]],
        *,
        max_batch: int,
        max_delay: float,
        queue_limit: int,
        obs: Optional[Any] = None,
    ) -> None:
        self._apply_batch = apply_batch
        self._max_batch = max_batch
        self._max_delay = max_delay
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=queue_limit)
        self._closed = False
        self.obs = obs if obs is not None else OBS_OFF
        if self.obs.enabled:
            # Pull-style: a metrics scrape reads the live queue depth.
            self.obs.metrics.gauge_fn(
                "repro_serving_queue_depth", lambda: float(self._queue.qsize())
            )

    @property
    def pending(self) -> int:
        """Queued submissions not yet picked up by the run loop."""
        return self._queue.qsize()

    async def submit(self, updates: Sequence[PointUpdate]) -> Any:
        """Enqueue one atomic submission; await its batch's result.

        Applies backpressure: blocks while the queue is at its limit.
        """
        if self._closed:
            raise ServerClosedError("the server is stopped; updates are not accepted")
        fut: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        obs = self.obs
        t0 = clock.now() if obs.enabled else 0.0
        await self._queue.put((list(updates), fut))
        result = await fut
        if obs.enabled:
            # Per-request latency: enqueue to batch-result resolution
            # (coalescing linger + queue wait + the solver pass).
            obs.metrics.histogram("repro_serving_request_seconds").observe(
                clock.now() - t0
            )
        return result

    async def run(self) -> None:
        """The single-writer loop; returns after :meth:`shutdown`'s sentinel."""
        while True:
            item = await self._queue.get()
            if item is _STOP:
                return
            batch: List[_Submission] = [item]
            if self._max_delay > 0:
                await asyncio.sleep(self._max_delay)
            stopped = self._drain_into(batch)
            updates = [up for subs, _fut in batch for up in subs]
            futures = [fut for _subs, fut in batch]
            if self.obs.enabled:
                self.obs.metrics.counter("repro_serving_ticks_total").inc()
                self.obs.metrics.histogram(
                    "repro_serving_batch_submissions", DEFAULT_SIZE_BUCKETS
                ).observe(len(batch))
            try:
                result = await self._apply_batch(updates)
            except asyncio.CancelledError:
                self._fail(futures, ServerClosedError("server cancelled mid-batch"))
                raise
            except BaseException as exc:
                self._fail(futures, exc)
            else:
                for fut in futures:
                    if not fut.done():
                        fut.set_result(result)
            if stopped:
                return

    def _drain_into(self, batch: List[_Submission]) -> bool:
        """Pull queued submissions into ``batch`` up to the update bound.

        Returns True if the shutdown sentinel was consumed while draining.
        """
        count = sum(len(subs) for subs, _fut in batch)
        while count < self._max_batch:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return False
            if item is _STOP:
                return True
            batch.append(item)
            count += len(item[0])
        return False

    @staticmethod
    def _fail(futures: List["asyncio.Future[Any]"], exc: BaseException) -> None:
        for fut in futures:
            if not fut.done():
                fut.set_exception(exc)

    async def shutdown(self) -> None:
        """Refuse new work and post the run loop's stop sentinel."""
        self._closed = True
        await self._queue.put(_STOP)

    def drain_rejected(self) -> int:
        """Fail submissions stranded behind the sentinel; return the count.

        Called by the server after the run loop exits: a submit racing the
        shutdown may have enqueued behind the sentinel, and its future must
        not dangle.
        """
        rejected = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return rejected
            if item is _STOP:
                continue
            _subs, fut = item
            if not fut.done():
                fut.set_exception(
                    ServerClosedError("the server stopped before this update was applied")
                )
            rejected += 1
