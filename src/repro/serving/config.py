"""Tunables of the serving layer (:class:`ServerConfig`).

Defaults follow the repo's env-fallback idiom (cf.
:class:`~repro.mpc.config.MPCConfig`): a field left at ``None`` reads its
``REPRO_SERVING_*`` environment variable, then falls back to the built-in
default — so a deployment can retune a server without touching code.  All
knobs are documented in ``docs/CONFIG.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

__all__ = ["ServerConfig"]

DEFAULT_MAX_BATCH = 256
DEFAULT_MAX_DELAY = 0.0
DEFAULT_QUEUE_LIMIT = 10_000


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


@dataclass(frozen=True)
class ServerConfig:
    """How a :class:`~repro.serving.TreeServer` batches, caches and queues.

    Attributes
    ----------
    max_batch:
        Most point updates coalesced into one solver pass.  A submission is
        never split (its updates apply atomically), so one oversized
        submission still forms a single batch.  Env:
        ``REPRO_SERVING_MAX_BATCH``.
    max_delay:
        Seconds the batcher lingers after the first queued submission to
        coalesce more before applying (``0`` applies as soon as the writer
        is free — queue pressure alone then sets the batch size).  Env:
        ``REPRO_SERVING_MAX_DELAY``.
    queue_limit:
        Backpressure bound on queued submissions; ``update()`` calls beyond
        it wait for the writer to drain.  Env:
        ``REPRO_SERVING_QUEUE_LIMIT``.
    cache_entries:
        LRU bound forwarded to each member solver's payload-value-keyed
        rule caches; ``None`` keeps the ``REPRO_DP_CACHE_ENTRIES`` default.
    trace_entries:
        LRU bound forwarded to each member solver's bottom-up trace memo;
        ``None`` keeps it bounded by the clustering's cluster count.
    """

    max_batch: Optional[int] = None
    max_delay: Optional[float] = None
    queue_limit: Optional[int] = None
    cache_entries: Optional[int] = None
    trace_entries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch is None:
            object.__setattr__(
                self, "max_batch", _env_int("REPRO_SERVING_MAX_BATCH", DEFAULT_MAX_BATCH)
            )
        if self.max_delay is None:
            object.__setattr__(
                self, "max_delay", _env_float("REPRO_SERVING_MAX_DELAY", DEFAULT_MAX_DELAY)
            )
        if self.queue_limit is None:
            object.__setattr__(
                self, "queue_limit", _env_int("REPRO_SERVING_QUEUE_LIMIT", DEFAULT_QUEUE_LIMIT)
            )
        if self.max_batch < 1:  # type: ignore[operator]
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay < 0:  # type: ignore[operator]
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.queue_limit < 1:  # type: ignore[operator]
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        for name in ("cache_entries", "trace_entries"):
            bound = getattr(self, name)
            if bound is not None and bound < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {bound}")
