"""The always-on serving front-end over a prepared tree (:class:`TreeServer`).

Architecture (one server = one prepared tree + N problems):

* **Write path.**  ``update()`` validates the submission against the tree
  (bad descriptors are rejected alone, before they can poison a shared
  batch), then enqueues it on the :class:`~repro.serving.UpdateBatcher`.
  The single writer task coalesces queued submissions into one batch per
  tick and applies it through the
  :class:`~repro.dynamic.IncrementalSolverGroup` in a worker thread
  (``asyncio.to_thread``), so the event loop keeps serving reads while the
  dirty chains re-solve.  The group writes the batch's payloads and
  computes its dirty seed set once for all problems.
* **Read path.**  Queries never touch the solvers: they read the
  :class:`~repro.serving.SnapshotStore`, whose per-batch publication is a
  single reference swap of immutable :class:`~repro.dynamic.SolvedView`
  snapshots.  A read therefore sees the complete pre-batch or post-batch
  state — never a torn one — even while a batch is mid-flight.
* **Barrier placement.**  The MPC driver barrier stays where the engine
  put it: inside the solver pass, between cluster layers.  The server adds
  exactly one serialization point above it (the writer task); nothing in
  the serving layer communicates between simulated machines, so rounds and
  words accounting is untouched and still charged under ``"dp-update"``.

Every served answer is bit-identical to a from-scratch ``solve()`` on the
tree at the same batch boundary; the differential stress suite asserts
this under concurrent read/write load, on both exec backends, with chaos
faults injected mid-batch.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.pipeline import PreparedTree
from repro.dynamic import IncrementalSolverGroup, PointUpdate, UpdateReport
from repro.obs import DEFAULT_SIZE_BUCKETS, clock
from repro.serving.batcher import ServerClosedError, UpdateBatcher
from repro.serving.config import ServerConfig
from repro.serving.health import ServerHealth
from repro.serving.snapshots import Snapshot, SnapshotStore

__all__ = ["BatchApplied", "TreeServer"]


@dataclass(frozen=True)
class BatchApplied:
    """What ``update()`` resolves to: the publication the batch produced."""

    #: Snapshot version the batch published (0 is the initial solve).
    version: int
    #: Total point updates in the batch (yours plus coalesced neighbours').
    updates: int
    #: Per-problem solver reports.
    reports: Dict[str, UpdateReport]


class TreeServer:
    """Serves concurrent point updates and snapshot reads over one tree.

    Parameters
    ----------
    prepared:
        The :class:`~repro.core.pipeline.PreparedTree` to own.  The
        clustering is reused unchanged for the server's whole lifetime
        (structural edits require a new ``prepare()`` and a new server).
    problems:
        One problem instance or a sequence; each is solved on construction
        and served under its ``name``.
    backend / fault_plan:
        Forwarded to every member :class:`~repro.dynamic.IncrementalSolver`
        (``fault_plan`` is the chaos hook used by the fault-injection
        suite).
    config:
        A :class:`~repro.serving.ServerConfig`; ``None`` reads the
        ``REPRO_SERVING_*`` environment.

    Use as an async context manager (or call :meth:`start`/:meth:`stop`):

    >>> async with prepared.serve([mwis, msat]) as server:     # doctest: +SKIP
    ...     await server.update(node_update("v7", {"weight": 2.0}))
    ...     snap = server.snapshot("max-weight-independent-set")
    """

    def __init__(
        self,
        prepared: PreparedTree,
        problems: Union[Any, Sequence[Any]],
        backend: Optional[str] = None,
        config: Optional[ServerConfig] = None,
        fault_plan: Optional[Any] = None,
    ) -> None:
        self.prepared = prepared
        self.config = config if config is not None else ServerConfig()
        if not isinstance(problems, (list, tuple)):
            problems = [problems]
        self.group = IncrementalSolverGroup(
            prepared,
            list(problems),
            backend=backend,
            fault_plan=fault_plan,
            cache_entries=self.config.cache_entries,
            trace_entries=self.config.trace_entries,
        )
        self.health = ServerHealth()
        self.store = SnapshotStore()
        self.obs = prepared.sim.obs
        self._version = 0
        self._publish_views()
        self._batcher = UpdateBatcher(
            self._apply_batch,
            max_batch=self.config.max_batch,  # type: ignore[arg-type]
            max_delay=self.config.max_delay,  # type: ignore[arg-type]
            queue_limit=self.config.queue_limit,  # type: ignore[arg-type]
            obs=self.obs,
        )
        self._writer: Optional["asyncio.Task[None]"] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "TreeServer":
        """Launch the writer task; reads work even before this is called."""
        if self._closed:
            raise ServerClosedError("a stopped TreeServer cannot be restarted")
        if self._writer is None:
            self._writer = asyncio.get_running_loop().create_task(
                self._batcher.run(), name="tree-server-writer"
            )
        return self

    async def stop(self) -> None:
        """Drain accepted batches, then stop the writer.

        Graceful by construction: every submission accepted before the stop
        is applied and answered; submissions racing the stop get
        :class:`~repro.serving.ServerClosedError`.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        await self._batcher.shutdown()
        if self._writer is not None:
            await self._writer
            self._writer = None
        self._batcher.drain_rejected()
        if self.obs.enabled:
            self.obs.dump(tag="server")

    async def __aenter__(self) -> "TreeServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._writer is not None and not self._writer.done()

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    async def update(self, *updates: Union[PointUpdate, Sequence[PointUpdate]]) -> BatchApplied:
        """Submit point updates; returns once their batch is applied.

        Accepts updates directly (``update(u1, u2)``) or as one sequence
        (``update([u1, u2])``).  The whole submission applies atomically in
        one batch — possibly coalesced with concurrent submissions — and
        the call resolves to that batch's :class:`BatchApplied` after its
        snapshots are published, so a subsequent read through any problem
        sees the update.  Invalid descriptors raise here, before queueing,
        and affect nobody else.
        """
        ups = self._flatten(updates)
        if not self.running:
            raise ServerClosedError(
                "the server is not running; use `async with server:` or await start()"
            )
        try:
            self.group.validate(ups)
        except (KeyError, ValueError):
            self.health.updates_rejected += len(ups)
            raise
        self.health.updates_enqueued += len(ups)
        result = await self._batcher.submit(ups)
        assert isinstance(result, BatchApplied)
        return result

    @staticmethod
    def _flatten(
        updates: Tuple[Union[PointUpdate, Sequence[PointUpdate]], ...],
    ) -> List[PointUpdate]:
        ups: List[PointUpdate] = []
        for item in updates:
            if isinstance(item, PointUpdate):
                ups.append(item)
            else:
                ups.extend(item)
        if not ups:
            raise ValueError("update() needs at least one PointUpdate")
        return ups

    async def _apply_batch(self, updates: List[PointUpdate]) -> BatchApplied:
        """Writer-side: one solver pass + one snapshot publication.

        Runs the solver pass in a thread so readers stay live; the group
        serializes overlapping applies below us (ConcurrentUpdateError), but
        the single writer task means that can only trip for out-of-band
        callers touching the group directly.
        """
        obs = self.obs
        t0 = clock.now() if obs.enabled else 0.0
        try:
            reports = await asyncio.to_thread(self.group.apply_updates, updates)
        except BaseException:
            self.health.batch_failures += 1
            raise
        self._version += 1
        self._publish_views()
        if obs.enabled:
            obs.metrics.histogram("repro_serving_update_seconds").observe(
                clock.now() - t0
            )
            obs.metrics.histogram(
                "repro_serving_batch_updates", DEFAULT_SIZE_BUCKETS
            ).observe(len(updates))
        self.health.batches_applied += 1
        self.health.updates_applied += len(updates)
        self.health.last_batch = {
            name: {
                "clusters_resolved": rep.clusters_resolved,
                "clusters_relabeled": rep.clusters_relabeled,
                "full_resolve": rep.full_resolve,
                "value_changed": rep.value_changed,
                "seconds": rep.seconds,
            }
            for name, rep in reports.items()
        }
        return BatchApplied(version=self._version, updates=len(updates), reports=reports)

    def _publish_views(self) -> None:
        self.store.publish_all(
            Snapshot(problem=name, version=self._version, view=view)
            for name, view in self.group.views().items()
        )
        self.health.snapshots_published += len(self.group.solvers)

    # ------------------------------------------------------------------ #
    # Read path (snapshot-isolated)
    # ------------------------------------------------------------------ #

    def _name(self, problem: Optional[str]) -> str:
        if problem is not None:
            return problem
        names = self.group.problems
        if len(names) != 1:
            raise ValueError(f"server hosts {len(names)} problems {names!r}; name one")
        return names[0]

    def snapshot(self, problem: Optional[str] = None) -> Snapshot:
        """The latest published snapshot (synchronous: one dict read)."""
        obs = self.obs
        if obs.enabled:
            t0 = clock.now()
            snap = self.store.current(self._name(problem))
            obs.metrics.histogram("repro_serving_read_seconds").observe(
                clock.now() - t0
            )
        else:
            snap = self.store.current(self._name(problem))
        self.health.queries_served += 1
        return snap

    async def query_value(self, problem: Optional[str] = None) -> Any:
        """The problem's optimum at the latest batch boundary."""
        return self.snapshot(problem).value

    async def query_label(self, node: Hashable, problem: Optional[str] = None) -> Any:
        """One node's label at the latest batch boundary.

        Labels are on *original* tree nodes (degree-reduction projected
        away); raises ``KeyError`` for unknown nodes of label-producing
        problems.
        """
        snap = self.snapshot(problem)
        labels = snap.node_labels
        if node not in labels:
            raise KeyError(f"node {node!r} has no label in {snap.problem!r}")
        return labels[node]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def problems(self) -> Tuple[str, ...]:
        return self.group.problems

    @property
    def version(self) -> int:
        """The latest published batch version."""
        return self._version

    def health_report(self) -> Dict[str, Any]:
        """Server counters plus the exec pool's supervision report.

        When observability is on (``MPCConfig.obs != "off"``) the report
        also embeds the run's metric exposition under ``"metrics"``.
        """
        metrics = self.obs.metrics.to_json() if self.obs.enabled else None
        return self.health.as_dict(
            exec_health=self.prepared.exec_health(), metrics=metrics
        )

    def metrics(self, format: str = "prometheus") -> Any:
        """The run's metric exposition (``"prometheus"`` text or ``"json"``).

        Empty under ``obs="off"`` — the server never pays for metrics the
        deployment did not ask for.
        """
        if format == "prometheus":
            return self.obs.metrics.to_prometheus()
        if format == "json":
            return self.obs.metrics.to_json()
        raise ValueError(f"unknown metrics format {format!r}; use 'prometheus' or 'json'")
