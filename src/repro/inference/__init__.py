"""Bayesian tree inference / Gaussian belief propagation (paper Section 6.2).

A linear-Gaussian tree model assigns every node ``i`` a hidden state
``x_i`` with conditional ``p(x_i | x_children) = N(x_i; sum_j F_j x_j + c_i,
Q_i)`` and an observation ``p(y_i | x_i) = N(y_i; H_i x_i + d_i, R_i)``.  The
inference task is the posterior of the root given all observations.

* :mod:`~repro.inference.gaussian` — Gaussian factors in information form
  (multiplication, marginalisation); the O(1)-word cluster summaries are
  factors over one or two boundary variables, equivalent to the paper's
  ``(A, b, C, eta, J)`` parameterisation.
* :mod:`~repro.inference.model` — model container and random generators.
* :mod:`~repro.inference.sequential_bp` — dense-joint reference posterior.
* :mod:`~repro.inference.mpc_inference` — the framework problem
  (:class:`GaussianTreeInference`, a raw ClusterDP).
"""

from repro.inference.gaussian import GaussianFactor
from repro.inference.model import LinearGaussianTreeModel, random_gaussian_tree_model
from repro.inference.sequential_bp import root_posterior_reference
from repro.inference.mpc_inference import GaussianTreeInference

__all__ = [
    "GaussianFactor",
    "LinearGaussianTreeModel",
    "random_gaussian_tree_model",
    "root_posterior_reference",
    "GaussianTreeInference",
]
