"""Reference root posterior via the dense joint information form.

Builds the joint canonical-form Gaussian over all hidden states (prior
potentials plus measurement likelihoods) and marginalises everything except
the root.  Cubic in ``n * dim`` and therefore only suitable as ground truth
for moderate test sizes; the framework computation in
:mod:`repro.inference.mpc_inference` never materialises anything larger than
one cluster.
"""

from __future__ import annotations

from typing import Hashable, Tuple

import numpy as np

from repro.inference.gaussian import GaussianFactor
from repro.inference.model import LinearGaussianTreeModel

__all__ = ["root_posterior_reference", "node_prior_factor", "node_measurement_factor"]


def node_prior_factor(model: LinearGaussianTreeModel, v: Hashable) -> GaussianFactor:
    """The clique potential p(x_v | x_children) in information form."""
    tree = model.tree
    children = tree.children(v)
    variables = [v] + list(children)
    f = GaussianFactor(variables, model.dim)
    Qinv = np.linalg.inv(model.Q[v])
    f.add_quadratic(v, v, Qinv)
    f.add_linear(v, Qinv @ model.c[v])
    for ch in children:
        F = model.F[(ch, v)]
        f.add_quadratic(v, ch, -Qinv @ F)
        f.add_quadratic(ch, ch, F.T @ Qinv @ F)
        f.add_linear(ch, -F.T @ Qinv @ model.c[v])
    return f


def node_measurement_factor(model: LinearGaussianTreeModel, v: Hashable) -> GaussianFactor:
    """The likelihood p(y_v | x_v) in information form."""
    f = GaussianFactor([v], model.dim)
    Rinv = np.linalg.inv(model.R[v])
    H = model.H[v]
    f.add_quadratic(v, v, H.T @ Rinv @ H)
    f.add_linear(v, H.T @ Rinv @ (model.y[v] - model.d[v]))
    return f


def root_posterior_reference(model: LinearGaussianTreeModel) -> Tuple[np.ndarray, np.ndarray]:
    """Posterior mean and covariance of the root given all observations."""
    tree = model.tree
    joint = GaussianFactor(list(tree.nodes()), model.dim)
    for v in tree.nodes():
        joint = joint.multiply(node_prior_factor(model, v))
        joint = joint.multiply(node_measurement_factor(model, v))
    marginal = joint.marginalize_out([v for v in tree.nodes() if v != tree.root])
    return marginal.mean_and_cov()
