"""Gaussian tree inference on the DP framework (paper Section 6.2).

The problem is a raw :class:`~repro.dp.problem.ClusterDP`:

* an **indegree-zero** cluster is summarised by the Gaussian factor over its
  top node's hidden state obtained by multiplying all clique potentials and
  likelihoods of the cluster's nodes and integrating out every other hidden
  state — this is exactly the repeated *leaf elimination* the paper
  describes, performed locally inside one machine;
* an **indegree-one** cluster is summarised by the factor over (top state,
  below-boundary state) — an O(dim²)-word object equivalent to the paper's
  ``N(x_1; A x_j + b, C) · NI(x_j; eta, J)`` factorisation obtained from the
  associative Kalman-filter rule.

The per-cluster computation uses O(|C|) additional space (the joint
information form over the cluster's variables), as permitted by
Definition 1.  The objective value is the posterior mean and covariance of
the root; per-node posteriors are available from the sequential reference.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple


from repro.dp.problem import ClusterContext, ClusterDP
from repro.inference.gaussian import GaussianFactor
from repro.inference.model import LinearGaussianTreeModel
from repro.inference.sequential_bp import node_measurement_factor, node_prior_factor

__all__ = ["GaussianTreeInference"]


class GaussianTreeInference(ClusterDP):
    """Root-posterior inference in a linear-Gaussian tree model."""

    produces_labels = False
    name = "Bayesian tree inference (Gaussian belief propagation)"

    def __init__(self, model: LinearGaussianTreeModel):
        self.model = model

    # ------------------------------------------------------------------ #

    def summarize(self, ctx: ClusterContext) -> Any:
        factor = self._cluster_factor(ctx)
        keep = [("x", ctx.top_node)]
        if ctx.is_indegree_one:
            keep.append(("x", ctx.cluster.in_edge[0]))
        drop = [v for v in factor.vars if v not in keep]
        reduced = factor.marginalize_out(drop)
        return {"kind": "factor", "factor": reduced}

    def label_virtual_root(self, ctx: ClusterContext, summary: Any) -> Tuple[Any, Any]:
        factor: GaussianFactor = summary["factor"]
        mean, cov = factor.mean_and_cov()
        return None, {"mean": mean, "cov": cov}

    def extract(self, tree, edge_labels, root_label, value):
        return {"root_posterior": value}

    # ------------------------------------------------------------------ #

    def _cluster_factor(self, ctx: ClusterContext) -> GaussianFactor:
        """Multiply every potential owned by this cluster's elements."""
        model = self.model
        factor: Optional[GaussianFactor] = None

        def mul(f: GaussianFactor) -> None:
            nonlocal factor
            factor = f if factor is None else factor.multiply(f)

        for e in ctx.elements:
            if e[0] == "node":
                v = e[1]
                mul(_rename(node_prior_factor(model, v)))
                mul(_rename(node_measurement_factor(model, v)))
            else:
                mul(ctx.summary_of(e)["factor"])
        assert factor is not None
        return factor


def _rename(f: GaussianFactor) -> GaussianFactor:
    """Prefix variable names with "x" so they cannot collide with node ids."""
    g = GaussianFactor([("x", v) for v in f.vars], f.dim)
    g.J = f.J.copy()
    g.h = f.h.copy()
    return g
