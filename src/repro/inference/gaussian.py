"""Gaussian factors in information (canonical) form.

A factor over variables ``v_1 .. v_k`` (each of dimension ``d``) is

    phi(x) ∝ exp(-1/2 x^T J x + h^T x)

with a block precision matrix ``J`` and potential vector ``h``.  Products of
factors add their ``(J, h)`` blocks; marginalising a variable out is a Schur
complement.  Factors over one or two boundary variables are the O(1)-word
cluster summaries used by :class:`repro.inference.mpc_inference.GaussianTreeInference`;
they are algebraically equivalent to the ``(A, b, C, eta, J)`` form the paper
derives from the parallel-Kalman literature.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["GaussianFactor"]


class GaussianFactor:
    """An information-form Gaussian factor over named vector variables."""

    def __init__(self, variables: Sequence[Hashable], dim: int):
        self.vars: List[Hashable] = list(variables)
        self.dim = dim
        k = len(self.vars) * dim
        self.J = np.zeros((k, k))
        self.h = np.zeros(k)

    # ------------------------------------------------------------------ #

    def _slice(self, var: Hashable) -> slice:
        i = self.vars.index(var)
        return slice(i * self.dim, (i + 1) * self.dim)

    def add_quadratic(self, var_a: Hashable, var_b: Hashable, block: np.ndarray) -> None:
        """Add ``block`` to the (var_a, var_b) block of J (and its transpose)."""
        sa, sb = self._slice(var_a), self._slice(var_b)
        self.J[sa, sb] += block
        if var_a != var_b:
            self.J[sb, sa] += block.T

    def add_linear(self, var: Hashable, vec: np.ndarray) -> None:
        self.h[self._slice(var)] += vec

    # ------------------------------------------------------------------ #

    def multiply(self, other: "GaussianFactor") -> "GaussianFactor":
        """Product of two factors (union of variables, blocks added)."""
        variables = list(self.vars)
        for v in other.vars:
            if v not in variables:
                variables.append(v)
        out = GaussianFactor(variables, self.dim)
        for f in (self, other):
            idx = [variables.index(v) for v in f.vars]
            for a_local, a_global in enumerate(idx):
                sa_l = slice(a_local * f.dim, (a_local + 1) * f.dim)
                sa_g = slice(a_global * f.dim, (a_global + 1) * f.dim)
                out.h[sa_g] += f.h[sa_l]
                for b_local, b_global in enumerate(idx):
                    sb_l = slice(b_local * f.dim, (b_local + 1) * f.dim)
                    sb_g = slice(b_global * f.dim, (b_global + 1) * f.dim)
                    out.J[sa_g, sb_g] += f.J[sa_l, sb_l]
        return out

    def marginalize_out(self, variables: Iterable[Hashable]) -> "GaussianFactor":
        """Integrate the given variables out (Schur complement)."""
        drop = [v for v in variables if v in self.vars]
        if not drop:
            return self
        keep = [v for v in self.vars if v not in drop]
        d = self.dim
        keep_idx = (
            np.concatenate(
                [np.arange(self.vars.index(v) * d, (self.vars.index(v) + 1) * d) for v in keep]
            )
            if keep
            else np.array([], dtype=int)
        )
        drop_idx = np.concatenate(
            [np.arange(self.vars.index(v) * d, (self.vars.index(v) + 1) * d) for v in drop]
        )

        Jaa = self.J[np.ix_(keep_idx, keep_idx)] if keep else np.zeros((0, 0))
        Jab = self.J[np.ix_(keep_idx, drop_idx)] if keep else np.zeros((0, len(drop_idx)))
        Jbb = self.J[np.ix_(drop_idx, drop_idx)]
        ha = self.h[keep_idx] if keep else np.zeros(0)
        hb = self.h[drop_idx]

        Jbb_inv = np.linalg.inv(Jbb)
        out = GaussianFactor(keep, self.dim)
        if keep:
            out.J = Jaa - Jab @ Jbb_inv @ Jab.T
            out.h = ha - Jab @ Jbb_inv @ hb
        return out

    def mean_and_cov(self) -> Tuple[np.ndarray, np.ndarray]:
        """Normalise the factor into a Gaussian (mean, covariance)."""
        cov = np.linalg.inv(self.J)
        return cov @ self.h, cov

    def word_size(self) -> int:
        """Number of machine words (floats) this factor stores."""
        return self.J.size + self.h.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GaussianFactor(vars={self.vars}, dim={self.dim})"
