"""Linear-Gaussian tree models (paper Section 6.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

import numpy as np

from repro.trees.tree import RootedTree

__all__ = ["LinearGaussianTreeModel", "random_gaussian_tree_model"]


@dataclass
class LinearGaussianTreeModel:
    """Per-node parameters of a linear-Gaussian tree model.

    ``p(x_i | x_children) = N(x_i; sum_j F[(j, i)] x_j + c[i], Q[i])`` and
    ``p(y_i | x_i) = N(y_i; H[i] x_i + d[i], R[i])``.
    """

    tree: RootedTree
    dim: int
    obs_dim: int
    F: Dict[Tuple[Hashable, Hashable], np.ndarray]  # keyed by (child, parent)
    c: Dict[Hashable, np.ndarray]
    Q: Dict[Hashable, np.ndarray]
    H: Dict[Hashable, np.ndarray]
    d: Dict[Hashable, np.ndarray]
    R: Dict[Hashable, np.ndarray]
    y: Dict[Hashable, np.ndarray]

    def node_words(self, v: Hashable) -> int:
        """Words of model data stored with node ``v`` (for memory accounting)."""
        total = self.c[v].size + self.Q[v].size + self.H[v].size
        total += self.d[v].size + self.R[v].size + self.y[v].size
        for ch in self.tree.children(v):
            total += self.F[(ch, v)].size
        return total


def random_gaussian_tree_model(
    tree: RootedTree,
    dim: int = 1,
    obs_dim: int = 1,
    seed: int = 0,
) -> LinearGaussianTreeModel:
    """Generate a well-conditioned random model and sample observations."""
    rng = np.random.default_rng(seed)
    F: Dict[Tuple[Hashable, Hashable], np.ndarray] = {}
    c: Dict[Hashable, np.ndarray] = {}
    Q: Dict[Hashable, np.ndarray] = {}
    H: Dict[Hashable, np.ndarray] = {}
    d: Dict[Hashable, np.ndarray] = {}
    R: Dict[Hashable, np.ndarray] = {}
    y: Dict[Hashable, np.ndarray] = {}

    for v in tree.nodes():
        c[v] = rng.normal(size=dim)
        a = rng.normal(size=(dim, dim)) * 0.2
        Q[v] = a @ a.T + np.eye(dim)
        H[v] = rng.normal(size=(obs_dim, dim)) * 0.7
        d[v] = rng.normal(size=obs_dim) * 0.3
        b = rng.normal(size=(obs_dim, obs_dim)) * 0.2
        R[v] = b @ b.T + np.eye(obs_dim) * 0.5
        for ch in tree.children(v):
            # Mild contraction keeps the joint covariance well conditioned.
            F[(ch, v)] = rng.normal(size=(dim, dim)) * (0.4 / max(1, len(tree.children(v))))

    # Sample hidden states bottom-up and observations per node.
    x: Dict[Hashable, np.ndarray] = {}
    for v in tree.postorder():
        mean = c[v].copy()
        for ch in tree.children(v):
            mean = mean + F[(ch, v)] @ x[ch]
        x[v] = rng.multivariate_normal(mean, Q[v])
        y[v] = rng.multivariate_normal(H[v] @ x[v] + d[v], R[v])

    return LinearGaussianTreeModel(
        tree=tree, dim=dim, obs_dim=obs_dim, F=F, c=c, Q=Q, H=H, d=d, R=R, y=y
    )
