"""Baselines the paper compares against.

* :mod:`~repro.baselines.rake_compress` — an O(log n)-round randomized
  tree-contraction DP in the spirit of Bateni, Behnezhad, Derakhshan,
  Hajiaghayi and Mirrokni [ICALP'18]: the prior-work comparator whose round
  count grows with log n regardless of the diameter.
* :mod:`~repro.baselines.sequential_dp` re-exports the single-machine
  reference solvers (ground truth and a serial-time baseline).
"""

from repro.baselines.rake_compress import RakeCompressDP, EdgeMatrixProblem, max_is_edge_problem
from repro.baselines import sequential_dp

__all__ = ["RakeCompressDP", "EdgeMatrixProblem", "max_is_edge_problem", "sequential_dp"]
