"""Single-machine baselines (re-exported reference solvers).

These are the same reference implementations the tests use as ground truth;
they double as the "one big machine" baseline in benchmark reports.
"""

from repro.dp.sequential import SequentialResult, brute_force_best, solve_sequential
from repro.problems.max_weight_independent_set import sequential_max_weight_independent_set
from repro.problems.min_weight_vertex_cover import sequential_min_weight_vertex_cover
from repro.problems.min_weight_dominating_set import sequential_min_weight_dominating_set
from repro.problems.max_weight_matching import sequential_max_weight_matching
from repro.problems.longest_path import sequential_longest_path
from repro.problems.tree_median import sequential_tree_median

__all__ = [
    "SequentialResult",
    "solve_sequential",
    "brute_force_best",
    "sequential_max_weight_independent_set",
    "sequential_min_weight_vertex_cover",
    "sequential_min_weight_dominating_set",
    "sequential_max_weight_matching",
    "sequential_longest_path",
    "sequential_tree_median",
]
