"""Randomized rake-and-compress tree-contraction DP (the prior-work baseline).

Bateni et al. [ICALP'18] solve tree DP in O(log n) MPC rounds via randomized
tree contraction for *binary adaptable* problems: per-node state vectors and
per-edge transition matrices over a semiring.  This module implements that
style of algorithm so the benchmarks can compare its round count (growing
with log n, independent of the diameter) against the framework's O(log D).

Each contraction phase performs

* **rake** — every leaf folds its vector into its parent through its edge
  matrix, and
* **compress** — an independent set of chain nodes (degree-2, selected by
  independent coin flips as in Miller–Reif) is spliced out by composing the
  two incident edge matrices with the node's vector.

Every phase costs a constant number of MPC rounds (charged on the simulator
under the label ``"rake-compress"``); with constant probability a constant
fraction of the nodes disappears per phase, so the number of phases is
O(log n) w.h.p. — exactly the baseline behaviour the paper improves on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.dp.semiring import MAX_PLUS, Semiring
from repro.mpc.simulator import MPCSimulator
from repro.trees.tree import RootedTree

__all__ = ["EdgeMatrixProblem", "RakeCompressDP", "max_is_edge_problem"]

#: Rounds charged per contraction phase (one for rake, one for compress).
ROUNDS_PER_PHASE = 2


@dataclass
class EdgeMatrixProblem:
    """A binary-adaptable tree DP: per-node vectors and per-edge matrices."""

    name: str
    semiring: Semiring
    states: Tuple[Hashable, ...]
    node_vector: Callable[[RootedTree, Hashable], Dict[Hashable, Any]]
    edge_matrix: Callable[
        [RootedTree, Tuple[Hashable, Hashable]], Dict[Tuple[Hashable, Hashable], Any]
    ]
    root_feasible: Callable[[Hashable], Any]


def max_is_edge_problem(tree: RootedTree) -> EdgeMatrixProblem:
    """Maximum-weight independent set in the edge-matrix form."""

    def node_vector(t: RootedTree, v: Hashable) -> Dict[Hashable, float]:
        return {"in": t.weight(v), "out": 0.0}

    def edge_matrix(t: RootedTree, edge) -> Dict[Tuple[Hashable, Hashable], float]:
        return {
            ("in", "in"): float("-inf"),
            ("in", "out"): 0.0,
            ("out", "in"): 0.0,
            ("out", "out"): 0.0,
        }

    return EdgeMatrixProblem(
        name="maximum-weight independent set (rake-compress)",
        semiring=MAX_PLUS,
        states=("in", "out"),
        node_vector=node_vector,
        edge_matrix=edge_matrix,
        root_feasible=lambda s: 0.0,
    )


class RakeCompressDP:
    """Run the rake-and-compress contraction for an :class:`EdgeMatrixProblem`."""

    def __init__(self, sim: Optional[MPCSimulator] = None, seed: int = 0):
        self.sim = sim
        self.seed = seed
        self.phases = 0

    def solve(self, tree: RootedTree, problem: EdgeMatrixProblem) -> Any:
        sr = problem.semiring
        rng = random.Random(self.seed)
        parent: Dict[Hashable, Hashable] = dict(tree.parent)
        children: Dict[Hashable, set] = {v: set(tree.children(v)) for v in tree.nodes()}
        vec: Dict[Hashable, Dict[Hashable, Any]] = {
            v: dict(problem.node_vector(tree, v)) for v in tree.nodes()
        }
        mat: Dict[Hashable, Dict[Tuple[Hashable, Hashable], Any]] = {
            v: dict(problem.edge_matrix(tree, (v, tree.parent[v])))
            for v in tree.nodes()
            if v != tree.root
        }
        alive = set(tree.nodes())
        root = tree.root
        self.phases = 0

        while len(alive) > 1:
            self.phases += 1
            if self.sim is not None:
                self.sim.charge_rounds(ROUNDS_PER_PHASE, label="rake-compress")

            # ---- rake: absorb all leaves into their parents ----------------- #
            leaves = [v for v in alive if not children[v] and v != root]
            for v in leaves:
                p = parent[v]
                m = mat[v]
                new_parent_vec = {}
                for ps, pval in vec[p].items():
                    best = sr.zero
                    for cs, cval in vec[v].items():
                        best = sr.plus(best, sr.times(cval, m.get((cs, ps), sr.zero)))
                    new_parent_vec[ps] = sr.times(pval, best)
                vec[p] = new_parent_vec
                children[p].discard(v)
                alive.discard(v)

            # ---- compress: splice an independent set of chain nodes --------- #
            chain = [
                v
                for v in alive
                if v != root and len(children[v]) == 1 and parent[v] in alive
            ]
            coins = {v: rng.random() < 0.5 for v in chain}
            chain_set = set(chain)
            for v in chain:
                p = parent[v]
                if not coins[v]:
                    continue
                if p in chain_set and coins.get(p, False):
                    continue  # keep an independent set of spliced nodes
                c = next(iter(children[v]))
                if c in chain_set and coins.get(c, False) and c != v:
                    # the child will be handled in a later phase
                    pass
                # Compose: new matrix for edge (c, p) through v's vector.
                m_cv = mat[c]
                m_vp = mat[v]
                new_m: Dict[Tuple[Hashable, Hashable], Any] = {}
                for cs in problem.states:
                    for ps in problem.states:
                        best = sr.zero
                        for vs, vval in vec[v].items():
                            term = sr.times(
                                m_cv.get((cs, vs), sr.zero),
                                sr.times(vval, m_vp.get((vs, ps), sr.zero)),
                            )
                            best = sr.plus(best, term)
                        new_m[(cs, ps)] = best
                mat[c] = new_m
                parent[c] = p
                children[p].discard(v)
                children[p].add(c)
                alive.discard(v)

        # Only the root remains: finish with the virtual-edge feasibility.
        best = sr.zero
        for s, val in vec[root].items():
            best = sr.plus(best, sr.times(val, problem.root_feasible(s)))
        return best
