"""A single simulated MPC machine.

A machine owns a local store of *records* (arbitrary Python tuples) whose
total size in words is bounded by the machine capacity.  During a superstep a
machine's compute function reads its own store (and the messages delivered at
the start of the round) and emits messages addressed to other machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List

from repro.mpc.words import record_words

__all__ = ["Machine"]


@dataclass
class Machine:
    """One machine of the simulated deployment.

    Attributes
    ----------
    mid:
        Machine identifier in ``range(num_machines)``.
    capacity:
        Local memory capacity in words.
    store:
        The machine's local records.  The simulator treats records as opaque;
        higher layers (e.g. :class:`~repro.mpc.darray.DistributedArray`)
        impose structure.
    inbox:
        Messages delivered at the start of the current superstep.
    sizer:
        The record-iterable word sizer used for memory accounting; the
        simulator injects the one selected by
        :attr:`~repro.mpc.config.MPCConfig.accounting` (defaults to the exact
        reference walker for directly constructed machines).
    """

    mid: int
    capacity: int
    store: List[Any] = field(default_factory=list)
    inbox: List[Any] = field(default_factory=list)
    sizer: Callable[[Iterable[Any]], int] = record_words

    def __post_init__(self) -> None:
        # A zero/negative capacity would make every superstep a violation
        # and a negative mid would corrupt scatter placement arithmetic;
        # both are construction bugs worth failing on immediately.
        if self.mid < 0:
            raise ValueError(f"machine mid must be >= 0, got {self.mid}")
        if self.capacity < 1:
            raise ValueError(f"machine capacity must be >= 1, got {self.capacity}")

    def load_words(self) -> int:
        """Current store size in words."""
        return self.sizer(self.store)

    def load_records(self) -> int:
        """Current store size in number of records."""
        return len(self.store)

    def clear_inbox(self) -> None:
        self.inbox = []

    def receive(  # mpclint: disable=uncharged-communication -- mailbox primitive; superstep() prices every message as it is emitted
        self, messages: Iterable[Any]
    ) -> None:
        self.inbox.extend(messages)

    def replace_store(self, records: Iterable[Any]) -> None:
        self.store = list(records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(mid={self.mid}, records={len(self.store)}, capacity={self.capacity})"
