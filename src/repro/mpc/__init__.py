"""MPC (Massively Parallel Computation) simulation substrate.

The paper analyses algorithms in the MPC model of Karloff, Suri and
Vassilvitskii: the input of ``n`` words is distributed over ``Theta(n^(1-delta))``
machines with ``Theta(n^delta)`` words of local memory each, computation
proceeds in synchronous communication rounds, and in each round a machine may
send and receive at most ``Theta(n^delta)`` words.

This package provides a deterministic, round-accounted simulator of that
model:

* :class:`~repro.mpc.config.MPCConfig` fixes ``delta`` and the capacity
  constants.
* :class:`~repro.mpc.simulator.MPCSimulator` owns the machines, executes
  supersteps, counts rounds, and tracks communication volume and peak
  per-machine memory.
* :class:`~repro.mpc.darray.DistributedArray` is a partitioned collection of
  records with the standard MPC primitives (sample sort, group-by-key, join,
  prefix sums, broadcast, reduce), each implemented as a constant number of
  genuine supersteps.
* :mod:`~repro.mpc.treeops` implements the distributed tree subroutines the
  clustering construction relies on (depth via pointer doubling, capped
  subtree gathering, degree-2 path positions), all converging in
  ``O(log D)`` doubling iterations.  Each has two backends selected by
  ``MPCConfig.treeops_backend``: the record-level reference path and the
  vectorized integer-array path of :mod:`~repro.mpc.treeops_array`
  (bit-identical outputs and round accounting, evaluated driver-side).
* :mod:`~repro.mpc.words` prices records in machine words; the
  ``MPCConfig.accounting`` mode chooses between the exact reference walker,
  the structural fast sizer (default) and no accounting.
"""

from repro.mpc.config import MPCConfig
from repro.mpc.machine import Machine
from repro.mpc.simulator import MPCSimulator, RoundStats
from repro.mpc.darray import DistributedArray

__all__ = [
    "MPCConfig",
    "Machine",
    "MPCSimulator",
    "RoundStats",
    "DistributedArray",
]
