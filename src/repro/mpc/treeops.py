"""Distributed tree subroutines used by the hierarchical clustering.

The clustering construction (Section 4.2 of the paper) relies on three
subroutines which the paper imports from Balliu, Latypov, Maus, Olivetti and
Uitto [SODA'23]:

* ``CountSubtreeSizes`` — every node learns either the exact size of its
  subtree or that the size exceeds ``n^(delta/2)`` (their Lemma 6.13),
* ``GatherSubtrees`` — the subtree of every *light* node whose parent is
  *heavy* is collected onto one machine (their Lemma 6.14),
* ``CountDistances`` — every degree-2 node learns its distance to both
  endpoints of the maximal degree-2 path containing it (their Lemma 6.17).

This module implements all three with **doubling** algorithms on the
distributed-array layer:

* :func:`compute_depths` — parent-pointer doubling; converges in
  ``ceil(log2 depth) + 1`` iterations, i.e. O(log D).
* :func:`capped_subtree_gather` — frontier doubling that simultaneously
  realises ``CountSubtreeSizes`` and ``GatherSubtrees``: a node stops growing
  its gathered set as soon as it exceeds the cap, so the work per node stays
  within the machine-memory budget and the iteration count is
  O(log min(D, cap)) ⊆ O(log D).
* :func:`degree2_path_positions` — bidirectional pointer doubling along
  maximal degree-2 paths (any simple path in a tree has length at most D, so
  this is again O(log D) iterations).

These are faithful in round complexity and output to the paper's black-box
lemmas even though they do not reproduce the [SODA'23] machinery line by
line; see DESIGN.md §2.

Each subroutine has two interchangeable backends, selected by
:attr:`~repro.mpc.config.MPCConfig.treeops_backend`:

* ``"records"`` — the reference path in this module: per-record state shipped
  through the simulated machines with the distributed-array primitives.
* ``"array"`` (default) — :mod:`repro.mpc.treeops_array`: the same doubling
  schedules evaluated on flat NumPy integer arrays, with bit-identical
  outputs and bit-identical round/label accounting (see that module's
  fidelity contract).

In both backends the per-iteration convergence test ("is any machine still
active?") is a one-round convergecast in the model; the driver evaluates the
predicate directly and counts the round via
:meth:`~repro.mpc.simulator.MPCSimulator.tick_rounds` instead of routing a
count through the machines — same rounds, none of the per-message pricing.

Rooting of an *undirected* edge list is provided by
:func:`orient_tree_charged`, which is a documented substitution: the
orientation itself is computed by the driver and the O(log D) rounds the
[SODA'23] rooting algorithm would take are charged explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.mpc.darray import DistributedArray
from repro.mpc.simulator import MPCSimulator

__all__ = [
    "compute_depths",
    "capped_subtree_gather",
    "SubtreeInfo",
    "degree2_path_positions",
    "orient_tree_charged",
]


def _use_array_backend(sim: MPCSimulator) -> bool:
    return sim.config.treeops_backend == "array"


def _replay_records_loads(sim: MPCSimulator, run_records) -> None:
    """Feed the records path's peak load into ``sim`` (array load model).

    The array backend keeps its state in driver-side NumPy arrays, so it has
    no per-machine loads to observe; with
    ``MPCConfig.treeops_load_model="records"`` each subroutine additionally
    replays its record-level reference implementation on a *shadow*
    deployment (same n/delta/capacity/machine count, records backend) purely
    for sizing.  The shadow's rounds, messages and outputs are discarded —
    only its peak per-machine load is observed on the real simulator, which
    makes ``peak_machine_words`` match a records-backend run exactly (the
    peak statistic is a running max over identical observation sets).
    Violation *counts* are coarser than the records path's (at most one per
    subroutine call rather than one per violating observation); strict-mode
    raising still triggers through the real simulator's ``observe_loads``.
    """
    import dataclasses

    shadow = MPCSimulator(
        dataclasses.replace(
            sim.config,
            treeops_backend="records",
            treeops_load_model="none",
            strict_memory=False,
            strict_bandwidth=False,
        )
    )
    run_records(shadow)
    sim.observe_loads([shadow.stats.peak_machine_words])


def _with_load_model(sim: MPCSimulator, run_records) -> None:
    # mpclint: disable-next-line=backend-literal-parity -- "none" disables load replay; the silent fall-through IS the none behavior
    if sim.config.treeops_load_model == "records":
        _replay_records_loads(sim, run_records)


# --------------------------------------------------------------------------- #
# Depth computation by pointer doubling
# --------------------------------------------------------------------------- #


def compute_depths(
    sim: MPCSimulator,
    parent: Dict[int, int],
    root: int,
    max_iterations: Optional[int] = None,
) -> Dict[int, int]:
    """Compute the depth of every node by parent-pointer doubling.

    ``parent`` maps every node to its parent; the root maps to itself.  After
    iteration ``t`` every node knows its ancestor at distance ``2^t`` (or the
    root) together with the distance to it, so ``ceil(log2 depth) + 1``
    iterations suffice — O(log D) rounds in total.
    """
    if _use_array_backend(sim):
        from repro.mpc.treeops_array import compute_depths_array

        _with_load_model(
            sim, lambda shadow: _compute_depths_records(shadow, parent, root, max_iterations)
        )
        return compute_depths_array(sim, parent, root, max_iterations)
    return _compute_depths_records(sim, parent, root, max_iterations)


def _compute_depths_records(
    sim: MPCSimulator,
    parent: Dict[int, int],
    root: int,
    max_iterations: Optional[int] = None,
) -> Dict[int, int]:
    """Record-level reference implementation of :func:`compute_depths`."""
    if root not in parent or parent[root] != root:
        parent = dict(parent)
        parent[root] = root

    records = [(v, parent[v], 0 if v == root else 1) for v in parent]
    arr = DistributedArray.from_records(sim, records)

    n = len(records)
    if max_iterations is not None:
        limit = max_iterations
    else:
        limit = max(1, 2 + int(math.ceil(math.log2(max(2, n)))))

    for _ in range(limit):
        joined = arr.join(
            arr,
            key_self=lambda r: r[1],   # my jump target
            key_other=lambda r: r[0],  # the jump target's own record
        )

        def advance(rec):
            _, me, target = rec
            v, jump, dist = me
            t_v, t_jump, t_dist = target
            if jump == v:  # already at the root
                return (v, jump, dist)
            return (v, t_jump, dist + t_dist)

        new_arr = joined.map(advance)
        # Convergence test: one convergecast round, driver-evaluated (see the
        # module docstring).
        unfinished = sum(
            1 for p in new_arr.parts for r in p if not (r[0] == r[1] or r[1] == root)
        )
        sim.tick_rounds(1, label="reduce")
        arr = new_arr
        if unfinished == 0:
            break

    depths = {}
    for v, _jump, dist in arr.collect():
        depths[v] = dist
    depths[root] = 0
    return depths


# --------------------------------------------------------------------------- #
# Capped subtree gathering (CountSubtreeSizes + GatherSubtrees)
# --------------------------------------------------------------------------- #


@dataclass
class SubtreeInfo:
    """Result of :func:`capped_subtree_gather` for one node."""

    node: int
    heavy: bool
    size: Optional[int]              # exact size if light, None if heavy
    members: Optional[FrozenSet[int]]  # the gathered subtree if light


def capped_subtree_gather(
    sim: MPCSimulator,
    parent: Dict[int, int],
    children: Dict[int, List[int]],
    root: int,
    cap: int,
) -> Dict[int, SubtreeInfo]:
    """Gather every subtree of size at most ``cap``; mark larger ones heavy.

    Implements the combination of ``CountSubtreeSizes`` and
    ``GatherSubtrees``: a *light* node (subtree size ≤ cap) ends up knowing
    the full vertex set of its subtree; a *heavy* node only learns that it is
    heavy.  The frontier-doubling loop runs for O(log min(D, cap)) iterations.
    """
    if _use_array_backend(sim):
        from repro.mpc.treeops_array import capped_subtree_gather_array

        _with_load_model(
            sim,
            lambda shadow: _capped_subtree_gather_records(shadow, parent, children, root, cap),
        )
        return capped_subtree_gather_array(sim, parent, children, root, cap)
    return _capped_subtree_gather_records(sim, parent, children, root, cap)


def _capped_subtree_gather_records(
    sim: MPCSimulator,
    parent: Dict[int, int],
    children: Dict[int, List[int]],
    root: int,
    cap: int,
) -> Dict[int, SubtreeInfo]:
    """Record-level reference implementation of :func:`capped_subtree_gather`."""
    nodes = list(parent.keys())
    if root not in children:
        children = dict(children)
        children.setdefault(root, [])

    # state record: (v, known_frozenset, frontier_frozenset, heavy)
    states = []
    for v in nodes:
        kids = tuple(children.get(v, ()))
        known = frozenset((v,) + kids)
        frontier = frozenset(kids)
        heavy = len(known) > cap
        if heavy:
            known, frontier = frozenset(), frozenset()
        states.append((v, known, frontier, heavy))
    arr = DistributedArray.from_records(sim, states)

    limit = max(1, 2 + int(math.ceil(math.log2(max(2, cap + 2)))))
    # The frontier depth doubles each iteration and a light subtree has depth
    # at most its size <= cap, so log2(cap)+2 iterations always suffice.

    def is_active(s) -> bool:
        return (not s[3]) and len(s[2]) > 0

    for _ in range(limit):
        # Convergence test: in the model this is a one-round convergecast
        # ("does any machine still hold an active record?"); the driver
        # evaluates the predicate over the partitions directly and counts the
        # round, instead of routing a full count() through the machines.
        any_active = any(is_active(s) for p in arr.parts for s in p)
        sim.tick_rounds(1, label="reduce")
        if not any_active:
            break
        active = arr.filter(is_active)

        # Requests: (requester v, target u) keyed by target u.
        requests = active.flat_map(lambda s: [(s[0], u) for u in s[2]])
        # Join requests with the target's state.
        responses = requests.join(
            arr,
            key_self=lambda r: r[1],
            key_other=lambda s: s[0],
        ).map(lambda rec: (rec[1][0], rec[2]))  # (requester, target_state)

        # Merge the responses into each requester's state.
        tagged_states = arr.map(lambda s: ("state", s[0], s))
        tagged_resps = responses.map(lambda r: ("resp", r[0], r[1]))
        merged = tagged_states.concat(tagged_resps).group_by(lambda rec: rec[1])

        def combine(group):
            _, members = group
            base = None
            resps = []
            for tag, _, payload in members:
                if tag == "state":
                    base = payload
                else:
                    resps.append(payload)
            assert base is not None
            v, known, frontier, heavy = base
            if heavy or not frontier:
                return (v, known, frontier, heavy)
            new_known = set(known)
            new_frontier: Set[int] = set()
            for (_u, u_known, u_frontier, u_heavy) in resps:
                if u_heavy:
                    heavy = True
                    break
                new_known |= u_known
                new_frontier |= u_frontier
            if heavy or len(new_known) > cap:
                return (v, frozenset(), frozenset(), True)
            return (v, frozenset(new_known), frozenset(new_frontier), False)

        arr = merged.map(combine)

    result: Dict[int, SubtreeInfo] = {}
    for v, known, frontier, heavy in arr.collect():
        if heavy:
            result[v] = SubtreeInfo(node=v, heavy=True, size=None, members=None)
        else:
            # If the frontier is non-empty the iteration cap was hit; this can
            # only happen for subtrees deeper than `cap`, which are heavy.
            if frontier:
                result[v] = SubtreeInfo(node=v, heavy=True, size=None, members=None)
            else:
                result[v] = SubtreeInfo(
                    node=v, heavy=False, size=len(known), members=frozenset(known)
                )
    return result


# --------------------------------------------------------------------------- #
# Degree-2 path positions (CountDistances)
# --------------------------------------------------------------------------- #


def degree2_path_positions(
    sim: MPCSimulator,
    path_parent: Dict[int, Optional[int]],
    path_child: Dict[int, Optional[int]],
) -> Dict[int, Tuple[int, int, int, int]]:
    """Positions of nodes on maximal degree-2 paths, by bidirectional doubling.

    Parameters
    ----------
    path_parent:
        For every path node ``v``: its parent **if the parent is also a path
        node**, else ``None`` (then ``v`` is the top endpoint of its path).
    path_child:
        For every path node ``v``: its unique path child if that child is a
        path node, else ``None`` (then ``v`` is the bottom endpoint).

    Returns
    -------
    dict
        ``v -> (top_anchor, dist_to_top, bottom_anchor, dist_to_bottom)``
        where the anchors are the endpoint path nodes of ``v``'s maximal
        degree-2 path.  Distances are counted in edges along the path.
    """
    if _use_array_backend(sim):
        from repro.mpc.treeops_array import degree2_path_positions_array

        _with_load_model(
            sim,
            lambda shadow: _degree2_path_positions_records(shadow, path_parent, path_child),
        )
        return degree2_path_positions_array(sim, path_parent, path_child)
    return _degree2_path_positions_records(sim, path_parent, path_child)


def _degree2_path_positions_records(
    sim: MPCSimulator,
    path_parent: Dict[int, Optional[int]],
    path_child: Dict[int, Optional[int]],
) -> Dict[int, Tuple[int, int, int, int]]:
    """Record-level reference implementation of :func:`degree2_path_positions`."""
    nodes = list(path_parent.keys())
    if not nodes:
        return {}

    # record: (v, up_target, up_dist, up_done, down_target, down_dist, down_done)
    records = []
    for v in nodes:
        up = path_parent.get(v)
        down = path_child.get(v)
        if up is None:
            up_t, up_d, up_done = v, 0, True
        else:
            up_t, up_d, up_done = up, 1, False
        if down is None:
            dn_t, dn_d, dn_done = v, 0, True
        else:
            dn_t, dn_d, dn_done = down, 1, False
        records.append((v, up_t, up_d, up_done, dn_t, dn_d, dn_done))
    arr = DistributedArray.from_records(sim, records)

    limit = max(1, 2 + int(math.ceil(math.log2(max(2, len(nodes))))))
    for _ in range(limit):
        # Convergence test: one convergecast round, driver-evaluated (see the
        # module docstring).
        unfinished = sum(1 for p in arr.parts for r in p if not (r[3] and r[6]))
        sim.tick_rounds(1, label="reduce")
        if unfinished == 0:
            break

        # Upward doubling.
        joined_up = arr.join(arr, key_self=lambda r: r[1], key_other=lambda r: r[0])

        def advance_up(rec):
            _, me, tgt = rec
            v, up_t, up_d, up_done, dn_t, dn_d, dn_done = me
            if up_done:
                return me
            t_v, t_up_t, t_up_d, t_up_done = tgt[0], tgt[1], tgt[2], tgt[3]
            if t_up_done:
                # The target is an endpoint: we are done, anchored at the target.
                return (v, t_v if t_up_d == 0 else t_up_t, up_d + t_up_d, True, dn_t, dn_d, dn_done)
            return (v, t_up_t, up_d + t_up_d, False, dn_t, dn_d, dn_done)

        arr = joined_up.map(advance_up)

        # Downward doubling.
        joined_dn = arr.join(arr, key_self=lambda r: r[4], key_other=lambda r: r[0])

        def advance_dn(rec):
            _, me, tgt = rec
            v, up_t, up_d, up_done, dn_t, dn_d, dn_done = me
            if dn_done:
                return me
            t_v, t_dn_t, t_dn_d, t_dn_done = tgt[0], tgt[4], tgt[5], tgt[6]
            if t_dn_done:
                return (v, up_t, up_d, up_done, t_v if t_dn_d == 0 else t_dn_t, dn_d + t_dn_d, True)
            return (v, up_t, up_d, up_done, t_dn_t, dn_d + t_dn_d, False)

        arr = joined_dn.map(advance_dn)

    out: Dict[int, Tuple[int, int, int, int]] = {}
    for v, up_t, up_d, _up_done, dn_t, dn_d, _dn_done in arr.collect():
        out[v] = (up_t, up_d, dn_t, dn_d)
    return out


# --------------------------------------------------------------------------- #
# Rooting / orientation (documented substitution)
# --------------------------------------------------------------------------- #


def orient_tree_charged(
    sim: MPCSimulator,
    undirected_edges: Sequence[Tuple[int, int]],
    root: Optional[int] = None,
) -> Tuple[Dict[int, int], int]:
    """Orient an undirected tree towards ``root`` and charge O(log D) rounds.

    The paper uses the rooting algorithm of [SODA'23] as a black box; rather
    than reproducing that machinery we compute the orientation on the driver
    (a BFS from the root) and charge ``2 * ceil(log2(D + 2)) + 4`` rounds,
    the asymptotic cost the black box would incur.  This substitution is
    documented in DESIGN.md §2; all benchmarks that include it report the
    charge under the ``"rooting"`` label so it can be separated out.

    Returns the parent map (root maps to itself) and the chosen root.
    """
    adj: Dict[int, List[int]] = {}
    for a, b in undirected_edges:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, []).append(a)
    if not adj:
        raise ValueError("empty edge list")
    if root is None:
        root = min(adj.keys())
    if root not in adj:
        raise ValueError(f"root {root} does not appear in the edge list")

    parent = {root: root}
    depth = {root: 0}
    frontier = [root]
    max_depth = 0
    while frontier:
        nxt = []
        for u in frontier:
            for w in adj[u]:
                if w not in parent:
                    parent[w] = u
                    depth[w] = depth[u] + 1
                    max_depth = max(max_depth, depth[w])
                    nxt.append(w)
        frontier = nxt

    if len(parent) != len(adj):
        raise ValueError("the input edge list is not a connected tree")

    charged = 2 * int(math.ceil(math.log2(max_depth + 2))) + 4
    sim.charge_rounds(charged, label="rooting")
    return parent, root
