"""Word-size accounting helpers.

The MPC model measures memory in *words* (machine words of O(log n) bits).
The paper requires dynamic programming tables to occupy ``O(1)`` words
(Definition 1, property 2) and machines to hold ``Theta(n^delta)`` words.

These helpers provide a conservative, deterministic estimate of how many
words a Python record occupies when serialized into the model.  They are used
by the simulator for memory accounting and by tests that check the
constant-size-table requirement for every shipped problem.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["word_size", "record_words"]


def word_size(obj: Any) -> int:
    """Return the number of machine words needed to store ``obj``.

    The estimate is intentionally simple and conservative:

    * ``None`` and booleans cost 1 word.
    * Integers cost 1 word per 64 bits (so ordinary ids and weights cost 1).
    * Floats cost 1 word.
    * Strings cost 1 word per 8 characters (rounded up), minimum 1.
    * Tuples, lists, sets and dicts cost the sum of their elements plus one
      word of structural overhead.
    * NumPy arrays cost one word per 8 bytes of data.
    """
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, np.integer)):
        bits = int(obj).bit_length()
        return max(1, (bits + 63) // 64)
    if isinstance(obj, (float, np.floating)):
        return 1
    if isinstance(obj, str):
        return max(1, (len(obj) + 7) // 8)
    if isinstance(obj, bytes):
        return max(1, (len(obj) + 7) // 8)
    if isinstance(obj, np.ndarray):
        return max(1, (obj.nbytes + 7) // 8)
    if isinstance(obj, dict):
        return 1 + sum(word_size(k) + word_size(v) for k, v in obj.items())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return 1 + sum(word_size(x) for x in obj)
    # Fall back to the object's __dict__ if it has one, else one word.
    d = getattr(obj, "__dict__", None)
    if d:
        return 1 + sum(word_size(v) for v in d.values())
    return 1


def record_words(records) -> int:
    """Total word size of an iterable of records."""
    return sum(word_size(r) for r in records)
