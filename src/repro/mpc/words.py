"""Word-size accounting helpers.

The MPC model measures memory in *words* (machine words of O(log n) bits).
The paper requires dynamic programming tables to occupy ``O(1)`` words
(Definition 1, property 2) and machines to hold ``Theta(n^delta)`` words.

Two sizers implement the same pricing rules:

* :func:`word_size` — the **exact** reference walker.  It recursively visits
  every element of every container and prices each scalar individually
  (integers by bit length, strings by length, and so on).
* :func:`fast_word_size` — the **structural** sizer used by the default
  ``accounting="fast"`` mode (:class:`~repro.mpc.config.MPCConfig`).  It
  prices the same rules but exploits the shape of the records the substrate
  actually ships: exact ``type()`` dispatch instead of ``isinstance`` chains,
  a flat (non-recursive) loop over tuple/list elements, and an O(1)
  ``1 + len(...)`` fast path for homogeneous scalar sets (the up-to-``cap``
  element frozensets carried by ``capped_subtree_gather`` are the motivating
  case).  The homogeneity assumption is *peeked*, not verified: a set whose
  first iterated element is a machine-word scalar is priced at one word per
  element.  All payloads shipped by this repository satisfy the assumption
  (node ids, weights); the equivalence test-suite asserts that exact and fast
  accounting observe identical peak words on full pipeline runs.

Records may also carry an explicit pre-computed size in an ``__mpc_words__``
attribute; both sizers treat it as authoritative, which gives higher layers
an O(1) accounting path for large composite records.

The per-mode record sizers are selected with :func:`record_sizer`
(``"exact"``, ``"fast"`` or ``"off"``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

__all__ = [
    "word_size",
    "fast_word_size",
    "record_words",
    "fast_record_words",
    "record_sizer",
    "scalar_sizer",
    "ACCOUNTING_MODES",
]

ACCOUNTING_MODES = ("exact", "fast", "off")

#: Machine-word bounds: integers inside this range cost exactly one word.
_WORD_MIN = -(2**63)
_WORD_MAX = 2**63 - 1


def word_size(obj: Any) -> int:
    """Return the number of machine words needed to store ``obj`` (exact walk).

    The estimate is intentionally simple and conservative:

    * ``None`` and booleans cost 1 word.
    * Integers cost 1 word per 64 bits (so ordinary ids and weights cost 1).
    * Floats cost 1 word.
    * Strings cost 1 word per 8 characters (rounded up), minimum 1.
    * Tuples, lists, sets and dicts cost the sum of their elements plus one
      word of structural overhead.
    * NumPy arrays cost one word per 8 bytes of data.
    * Objects carrying an integer ``__mpc_words__`` attribute cost exactly
      that (an explicitly maintained cached size).  The cache wins over every
      structural rule — including for container/scalar *subclasses* — so the
      exact and fast sizers agree on cached records: plain builtins cannot
      carry the attribute, and everything else reaches a cache lookup before
      structural pricing in both sizers.
    """
    cached = getattr(obj, "__mpc_words__", None)
    if cached is not None:
        return int(cached)
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, np.integer)):
        bits = int(obj).bit_length()
        return max(1, (bits + 63) // 64)
    if isinstance(obj, (float, np.floating)):
        return 1
    if isinstance(obj, str):
        return max(1, (len(obj) + 7) // 8)
    if isinstance(obj, bytes):
        return max(1, (len(obj) + 7) // 8)
    if isinstance(obj, np.ndarray):
        return max(1, (obj.nbytes + 7) // 8)
    if isinstance(obj, dict):
        return 1 + sum(word_size(k) + word_size(v) for k, v in obj.items())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return 1 + sum(word_size(x) for x in obj)
    # Fall back to the object's __dict__ if it has one, else one word.
    d = getattr(obj, "__dict__", None)
    if d:
        return 1 + sum(word_size(v) for v in d.values())
    return 1


def fast_word_size(obj: Any) -> int:
    """Structural word size of ``obj`` — same pricing rules, cheaper dispatch.

    See the module docstring for the (documented) homogeneity assumption on
    sets; everything else prices identically to :func:`word_size`.
    """
    t = type(obj)
    if t is int:
        if _WORD_MIN <= obj <= _WORD_MAX:
            return 1
        return (obj.bit_length() + 63) // 64
    if t is bool or t is float or obj is None:
        return 1
    if t is tuple or t is list:
        total = 1
        for x in obj:
            tx = type(x)
            if tx is int:
                total += 1 if _WORD_MIN <= x <= _WORD_MAX else (x.bit_length() + 63) // 64
            elif tx is bool or tx is float:
                total += 1
            else:
                total += fast_word_size(x)
        return total
    if t is frozenset or t is set:
        if not obj:
            return 1
        first = next(iter(obj))
        tf = type(first)
        if (tf is int and _WORD_MIN <= first <= _WORD_MAX) or tf is bool or tf is float:
            # Homogeneous machine-word scalar set: one word per element.
            return 1 + len(obj)
        return 1 + sum(fast_word_size(x) for x in obj)
    if t is str or t is bytes:
        return max(1, (len(obj) + 7) // 8)
    if t is dict:
        return 1 + sum(fast_word_size(k) + fast_word_size(v) for k, v in obj.items())
    cached = getattr(obj, "__mpc_words__", None)
    if cached is not None:
        return int(cached)
    # Exotic records (NumPy scalars/arrays, dataclasses): exact walker rules.
    return word_size(obj)


def record_words(records: Iterable[Any]) -> int:
    """Total exact word size of an iterable of records."""
    return sum(word_size(r) for r in records)


def fast_record_words(records: Iterable[Any]) -> int:
    """Total structural word size of an iterable of records."""
    return sum(fast_word_size(r) for r in records)


def _zero_words(_records: Iterable[Any]) -> int:
    return 0


def _zero_word(_obj: Any) -> int:
    return 0


def scalar_sizer(mode: str) -> Callable[[Any], int]:
    """The per-object sizer for an accounting mode."""
    if mode == "exact":
        return word_size
    if mode == "fast":
        return fast_word_size
    if mode == "off":
        return _zero_word
    raise ValueError(f"accounting mode must be one of {ACCOUNTING_MODES}, got {mode!r}")


def record_sizer(mode: str) -> Callable[[Iterable[Any]], int]:
    """The record-iterable sizer for an accounting mode."""
    if mode == "exact":
        return record_words
    if mode == "fast":
        return fast_record_words
    if mode == "off":
        return _zero_words
    raise ValueError(f"accounting mode must be one of {ACCOUNTING_MODES}, got {mode!r}")
