"""Distributed arrays of records with the standard MPC primitives.

A :class:`DistributedArray` is a collection of records partitioned over the
machines of an :class:`~repro.mpc.simulator.MPCSimulator`.  Purely local
transformations (``map``, ``filter``, ``flat_map``) cost no communication
rounds; the data-movement primitives are implemented as a constant number of
genuine supersteps and therefore show up in the simulator's round count:

===================  ==========================================  ========
primitive            implementation                               rounds
===================  ==========================================  ========
``sort_by``          deterministic sample sort                    4
``rebalance``        prefix-sums of part sizes + routing          3
``group_by``         sort + boundary hand-off                     5
``join``             tagged union sort + co-grouping              5
``prefix_sum``       local sums -> exclusive scan -> broadcast    3
``reduce``           convergecast to machine 0                    1
``broadcast``        one-to-all                                    1
===================  ==========================================  ========

These match the classical results cited by the paper (Goodrich et al.):
sorting and prefix sums are O(1)-round deterministic MPC primitives.

The record payloads are arbitrary (hashable keys recommended for group/join);
word-size accounting uses :mod:`repro.mpc.words` through the sizer selected
by :attr:`~repro.mpc.config.MPCConfig.accounting`.

Memory accounting is **incremental**: every array carries its per-part word
totals.  Internally built partitions (transform outputs, routed inboxes) are
adopted without the defensive deep copy of the public constructor, and a
primitive only sizes the records it *creates* — routed parts inherit the
totals the simulator already priced on the wire, and partition-preserving
steps (local sorts, rebalance framing) reuse the existing totals outright.
Only the public ``__init__`` still copies and walks caller-supplied parts.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.mpc.simulator import MPCSimulator

__all__ = ["DistributedArray", "SORT_ROUNDS", "GROUP_ROUNDS", "JOIN_ROUNDS"]

SORT_ROUNDS = 4
GROUP_ROUNDS = 5
JOIN_ROUNDS = 5


class DistributedArray:
    """A partitioned collection of records living on a simulated MPC cluster.

    Parameters
    ----------
    sim:
        The deployment whose machines hold the parts; all rounds and words
        the primitives cost are charged to ``sim.stats``.
    parts:
        One list of records per machine (``sim.num_machines`` lists), or
        ``None`` for an empty array.  The public constructor deep-copies
        and sizes caller-supplied parts; internal construction goes through
        the trusted no-copy :meth:`_from_owned` path.

    Attributes
    ----------
    parts:
        The per-machine record lists (index = machine id).
    part_words:
        Incrementally maintained word total of each part, per the sizer
        selected by :attr:`~repro.mpc.config.MPCConfig.accounting`.

    Notes
    -----
    Transformations (``map``/``filter``/``flat_map``) are local and free;
    the movement primitives (``sort_by``, ``group_by``, ``join``,
    ``rebalance``, ``prefix_sum``, ``reduce``, ``broadcast``) are genuine
    supersteps with the round costs listed in the module docstring.
    """

    def __init__(self, sim: MPCSimulator, parts: Optional[List[List[Any]]] = None):
        self.sim = sim
        m = sim.num_machines
        if parts is None:
            parts = [[] for _ in range(m)]
        if len(parts) != m:
            raise ValueError(f"expected {m} parts, got {len(parts)}")
        self.parts: List[List[Any]] = [list(p) for p in parts]
        self.part_words: List[int] = [sim.record_words(p) for p in self.parts]
        self._observe()

    # ------------------------------------------------------------------ #
    # Construction and inspection
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_owned(
        cls,
        sim: MPCSimulator,
        parts: List[List[Any]],
        part_words: Optional[List[int]] = None,
    ) -> "DistributedArray":
        """Adopt freshly built partition lists without copying them.

        Trusted-ownership constructor for internal use: ``parts`` must be a
        list of exactly ``sim.num_machines`` lists that the caller hands over
        (no aliasing afterwards).  ``part_words`` carries per-part word totals
        when the caller already knows them (e.g. from wire pricing); otherwise
        the configured sizer walks each part once.
        """
        self = object.__new__(cls)
        self.sim = sim
        self.parts = parts
        if part_words is None:
            part_words = [sim.record_words(p) for p in parts]
        self.part_words = part_words
        self._observe()
        return self

    @classmethod
    def from_records(cls, sim: MPCSimulator, records: Sequence[Any]) -> "DistributedArray":
        """Create a distributed array from driver-side records (even split)."""
        m = sim.num_machines
        parts: List[List[Any]] = [[] for _ in range(m)]
        n = len(records)
        if n:
            per = max(1, (n + m - 1) // m)
            for i, rec in enumerate(records):
                parts[min(i // per, m - 1)].append(rec)
        return cls._from_owned(sim, parts)

    def collect(self) -> List[Any]:
        """Gather all records to the driver (no rounds; output collection)."""
        out: List[Any] = []
        for p in self.parts:
            out.extend(p)
        return out

    def __len__(self) -> int:
        return sum(len(p) for p in self.parts)

    def num_parts(self) -> int:
        return len(self.parts)

    def _observe(self) -> None:
        self.sim.observe_loads(self.part_words)

    def _like(
        self, parts: List[List[Any]], part_words: Optional[List[int]] = None
    ) -> "DistributedArray":
        return DistributedArray._from_owned(self.sim, parts, part_words)

    # ------------------------------------------------------------------ #
    # Local (zero-round) transformations
    # ------------------------------------------------------------------ #

    def map(self, fn: Callable[[Any], Any]) -> "DistributedArray":
        return self._like([[fn(r) for r in p] for p in self.parts])

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "DistributedArray":
        return self._like([[x for r in p for x in fn(r)] for p in self.parts])

    def filter(self, fn: Callable[[Any], bool]) -> "DistributedArray":
        return self._like([[r for r in p if fn(r)] for p in self.parts])

    def map_partitions(self, fn: Callable[[List[Any]], List[Any]]) -> "DistributedArray":
        return self._like([list(fn(list(p))) for p in self.parts])

    def concat(self, other: "DistributedArray") -> "DistributedArray":
        """Partition-wise union with ``other`` (zero rounds, no data movement).

        Records stay on the machine they already occupy, so the per-part word
        totals of the operands simply add.
        """
        if other.sim is not self.sim:
            raise ValueError("cannot concat arrays from different simulators")
        m = self.sim.num_machines
        parts = [list(self.parts[i]) + list(other.parts[i]) for i in range(m)]
        words = [self.part_words[i] + other.part_words[i] for i in range(m)]
        return self._like(parts, words)

    # ------------------------------------------------------------------ #
    # Internal routing helper
    # ------------------------------------------------------------------ #

    def _route(
        self, destinations: List[List[Tuple[int, Any]]], label: str
    ) -> Tuple[List[List[Any]], List[int]]:
        """Send (dest, record) pairs through the simulator in one superstep.

        Returns the received parts together with their word totals, which the
        superstep already priced on the wire (send side) — the routed records
        are the same objects, so no re-walk is needed.
        """
        m = self.sim.num_machines
        out_parts: List[List[Any]] = [[] for _ in range(m)]

        plan = destinations  # captured by the compute closure

        def compute(machine):
            return plan[machine.mid]

        self.sim.superstep(compute, label=label)
        recv_words = self.sim.last_recv_words
        for machine in self.sim.machines:
            out_parts[machine.mid] = list(machine.inbox)
            machine.clear_inbox()
        out_words = [recv_words.get(i, 0) for i in range(m)]
        return out_parts, out_words

    # ------------------------------------------------------------------ #
    # Data movement primitives
    # ------------------------------------------------------------------ #

    def rebalance(self) -> "DistributedArray":
        """Evenly redistribute records over machines (3 rounds)."""
        m = self.sim.num_machines
        sizes = [len(p) for p in self.parts]
        total = sum(sizes)

        # Round 1: every machine reports its size to machine 0.
        def report(machine):
            return [(0, ("size", machine.mid, sizes[machine.mid]))]

        self.sim.superstep(report, label="rebalance")

        # Round 2: machine 0 broadcasts the exclusive prefix sums (offsets).
        offsets = [0] * m
        acc = 0
        for i in range(m):
            offsets[i] = acc
            acc += sizes[i]

        def bcast(machine):
            if machine.mid == 0:
                return [(d, ("offsets", tuple(offsets), total)) for d in range(m)]
            return []

        self.sim.superstep(bcast, label="rebalance")

        # Round 3: every machine routes each of its records to its target slot.
        per = max(1, (total + m - 1) // m) if total else 1
        plan: List[List[Tuple[int, Any]]] = [[] for _ in range(m)]
        for mid, part in enumerate(self.parts):
            for j, rec in enumerate(part):
                global_idx = offsets[mid] + j
                dest = min(global_idx // per, m - 1)
                plan[mid].append((dest, rec))
        parts, words = self._route(plan, label="rebalance")
        return self._like(parts, words)

    def sort_by(self, key: Callable[[Any], Any]) -> "DistributedArray":
        """Deterministic sample sort (4 rounds).

        Every machine sorts locally and sends evenly spaced pivot candidates
        to machine 0; machine 0 selects global splitters and broadcasts them;
        every machine partitions its records by splitter and routes them; the
        receivers sort locally.  The result is globally sorted by ``key``
        across machines in machine-id order.
        """
        m = self.sim.num_machines
        local_sorted = [sorted(p, key=key) for p in self.parts]

        # Round 1: send samples to machine 0.
        samples_plan: List[List[Tuple[int, Any]]] = [[] for _ in range(m)]
        for mid, part in enumerate(local_sorted):
            if part:
                step = max(1, len(part) // m)
                samples = [key(part[i]) for i in range(0, len(part), step)]
                samples_plan[mid].append((0, ("samples", samples)))
        self._route(samples_plan, label="sort")

        # Driver mirrors machine 0's local computation of splitters.
        all_samples: List[Any] = []
        for part in local_sorted:
            if part:
                step = max(1, len(part) // m)
                all_samples.extend(key(part[i]) for i in range(0, len(part), step))
        all_samples.sort()
        splitters: List[Any] = []
        if all_samples and m > 1:
            for i in range(1, m):
                idx = min(len(all_samples) - 1, (i * len(all_samples)) // m)
                splitters.append(all_samples[idx])

        # Round 2: broadcast splitters.
        bcast_plan: List[List[Tuple[int, Any]]] = [[] for _ in range(m)]
        bcast_plan[0] = [(d, ("splitters", splitters)) for d in range(m)]
        self._route(bcast_plan, label="sort")

        # Round 3: partition and route records to their destination machine.
        import bisect

        route_plan: List[List[Tuple[int, Any]]] = [[] for _ in range(m)]
        for mid, part in enumerate(local_sorted):
            for rec in part:
                k = key(rec)
                dest = bisect.bisect_right(splitters, k) if splitters else 0
                route_plan[mid].append((min(dest, m - 1), rec))
        routed, routed_words = self._route(route_plan, label="sort")

        # Round 4 (local sort + acknowledgement round for synchronisation).
        # Sorting permutes within parts, so the routed word totals carry over.
        sorted_parts = [sorted(p, key=key) for p in routed]

        def ack(machine):
            return []

        self.sim.superstep(ack, label="sort")
        return self._like(sorted_parts, routed_words)

    def group_by(self, key: Callable[[Any], Any]) -> "DistributedArray":
        """Group records by key; each group ends up whole on one machine.

        The result records are ``(key, [records...])`` tuples.  Records are
        routed to the machine determined by a deterministic partitioning of
        the key space (so that all records with the same key meet on one
        machine) and grouped locally there.  Together with the synchronisation
        round this is a constant number of rounds; group sizes must fit in one
        machine, which the paper guarantees for all uses (clusters have at
        most ``n^delta`` elements, node degrees are reduced to ``n^(delta/2)``).
        """
        m = self.sim.num_machines
        plan: List[List[Tuple[int, Any]]] = [[] for _ in range(m)]
        for mid, p in enumerate(self.parts):
            for rec in p:
                dest = _deterministic_partition(key(rec), m)
                plan[mid].append((dest, rec))
        routed, _ = self._route(plan, label="group_by")

        def ack(machine):
            return []

        self.sim.superstep(ack, label="group_by")

        grouped_parts: List[List[Any]] = []
        for p in routed:
            buckets: Dict[Any, List[Any]] = {}
            order: List[Any] = []
            for rec in p:
                k = key(rec)
                if k not in buckets:
                    buckets[k] = []
                    order.append(k)
                buckets[k].append(rec)
            grouped_parts.append([(k, buckets[k]) for k in order])
        # The (key, [records]) wrappers are new structure; size the output.
        return self._like(grouped_parts)

    def join(
        self,
        other: "DistributedArray",
        key_self: Callable[[Any], Any],
        key_other: Callable[[Any], Any],
    ) -> "DistributedArray":
        """Inner join on key; result records are ``(key, left_rec, right_rec)``.

        Implemented by tagging both sides, grouping the tagged union by key and
        emitting the cross product within each group (5 rounds).
        """
        union = self.map(lambda r: ("L", r)).concat(other.map(lambda r: ("R", r)))

        def k(rec):
            tag, r = rec
            return key_self(r) if tag == "L" else key_other(r)

        grouped = union.group_by(k)

        def expand(group_rec):
            gkey, members = group_rec
            lefts = [r for tag, r in members if tag == "L"]
            rights = [r for tag, r in members if tag == "R"]
            return [(gkey, l, r) for l in lefts for r in rights]

        return grouped.flat_map(expand)

    def prefix_sum(self, value: Callable[[Any], float]) -> "DistributedArray":
        """Exclusive prefix sums over the records in global order (3 rounds).

        Returns records ``(original_record, prefix)`` where ``prefix`` is the
        sum of ``value`` over all records strictly before it (in the current
        global order: machine id, then position within the machine).
        """
        m = self.sim.num_machines
        local_sums = [sum(value(r) for r in p) for p in self.parts]

        def report(machine):
            return [(0, ("psum", machine.mid, local_sums[machine.mid]))]

        self.sim.superstep(report, label="prefix_sum")

        offsets = [0.0] * m
        acc = 0.0
        for i in range(m):
            offsets[i] = acc
            acc += local_sums[i]

        def bcast(machine):
            if machine.mid == 0:
                return [(d, ("offsets", offsets[d])) for d in range(m)]
            return []

        self.sim.superstep(bcast, label="prefix_sum")

        def ack(machine):
            return []

        self.sim.superstep(ack, label="prefix_sum")

        new_parts: List[List[Any]] = []
        for mid, p in enumerate(self.parts):
            run = offsets[mid]
            out = []
            for r in p:
                out.append((r, run))
                run += value(r)
            new_parts.append(out)
        return self._like(new_parts)

    def reduce(
        self, value: Callable[[Any], Any], combine: Callable[[Any, Any], Any], init: Any
    ) -> Any:
        """Reduce all records to a single value on machine 0 (1 round)."""
        local = []
        for p in self.parts:
            acc = init
            for r in p:
                acc = combine(acc, value(r))
            local.append(acc)

        def report(machine):
            return [(0, ("reduce", machine.mid, local[machine.mid]))]

        self.sim.superstep(report, label="reduce")
        total = init
        for v in local:
            total = combine(total, v)
        return total

    def count(self) -> int:
        """Number of records (1 round convergecast)."""
        return int(self.reduce(lambda r: 1, lambda a, b: a + b, 0))

    def broadcast(self, small_value: Any) -> Any:
        """Broadcast a small driver-known value to every machine (1 round)."""
        self.sim.broadcast_to_all(small_value)
        return small_value


def _deterministic_partition(key: Any, m: int) -> int:
    """Deterministically map a key to a machine id in ``range(m)``.

    Uses a simple stable hash (not Python's salted ``hash``) so that runs are
    reproducible across processes.
    """
    s = repr(key)
    h = 2166136261
    for ch in s:
        h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return h % m


def _orderable(k: Any) -> Any:
    """Make heterogeneous keys comparable by prefixing a type rank."""
    if isinstance(k, tuple):
        return tuple(_orderable(x) for x in k)
    if isinstance(k, bool):
        return (0, int(k))
    if isinstance(k, (int, float)):
        return (0, k)
    if isinstance(k, str):
        return (1, k)
    return (2, repr(k))
