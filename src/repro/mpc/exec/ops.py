"""Superstep op kernels shared by the inline and process execution backends.

Each op is one machine-local compute step of a §4.2 treeops superstep,
expressed over a *row slice* ``[lo, hi)`` of the flat driver arrays: the op
reads whole input arrays (fancy indexing may reach any row, exactly like a
machine reading the messages routed to it) but writes only its own slice of
the output arrays — plus, for reduce-style partial sums, its own slot row of
a scratch array.  Because every op is a pure function of the *previous*
iteration's arrays (double-buffered as ``new_*``), the result is bit-identical
however the rows are partitioned across workers; the driver performs the
barrier (copy-back, convergence predicates, ``tick_rounds``) between ops,
exactly where :class:`~repro.mpc.simulator.MPCSimulator` charges the rounds.

The integer-exactness argument for the partitioned ``bincount`` in
``gather_step``: the weights are integer-valued floats far below 2^53, so
each slice's float64 partial sum is exact, and the int64 sum of partials
equals the unpartitioned bincount.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["OPS"]


def _depths_step(arrays: Dict[str, np.ndarray], lo: int, hi: int, slot: int) -> None:
    """One parent-pointer doubling step of ``compute_depths_array``."""
    jump = arrays["jump"]
    dist = arrays["dist"]
    j = jump[lo:hi]
    d = dist[lo:hi]
    ids = np.arange(lo, hi, dtype=np.int64)
    at_self = j == ids
    arrays["new_dist"][lo:hi] = np.where(at_self, d, d + dist[j])
    arrays["new_jump"][lo:hi] = np.where(at_self, j, jump[j])


def _gather_step(arrays: Dict[str, np.ndarray], lo: int, hi: int, slot: int, n: int) -> None:
    """One binary-lifting step of ``capped_subtree_gather_array``.

    Writes the slice's ancestor advance into ``new_anc`` and its partial
    size-contribution histogram into row ``slot`` of the ``contrib`` scratch
    array; the driver sums the rows (the model's reduce) before applying
    ``s += contrib``.
    """
    anc = arrays["anc"]
    s = arrays["s"]
    a = anc[lo:hi]
    valid = a >= 0
    tgt = a[valid]
    arrays["contrib"][slot] = np.bincount(
        tgt, weights=(s[lo:hi][valid] - 1).astype(np.float64), minlength=n
    ).astype(np.int64)
    nxt = np.full(hi - lo, -1, dtype=np.int64)
    nxt[valid] = anc[tgt]
    arrays["new_anc"][lo:hi] = nxt


def _degree2_advance(
    arrays: Dict[str, np.ndarray], lo: int, hi: int, slot: int, prefix: str
) -> None:
    """One doubling step of one direction of ``degree2_path_positions_array``.

    ``prefix`` is ``"up"`` or ``"dn"``; the advance rule transcribes the
    record path's ``advance_up``/``advance_dn`` element-wise (see
    :mod:`repro.mpc.treeops_array`).
    """
    t_arr = arrays[prefix + "_t"]
    d_arr = arrays[prefix + "_d"]
    done = arrays[prefix + "_done"]
    t = t_arr[lo:hi]
    t_done = done[t]
    t_d = d_arr[t]
    t_t = t_arr[t]
    anchored = np.where(t_d == 0, t, t_t)
    arrays["new_" + prefix + "_t"][lo:hi] = np.where(
        done[lo:hi], t, np.where(t_done, anchored, t_t)
    )
    arrays["new_" + prefix + "_d"][lo:hi] = np.where(done[lo:hi], d_arr[lo:hi], d_arr[lo:hi] + t_d)
    arrays["new_" + prefix + "_done"][lo:hi] = done[lo:hi] | t_done


#: Registry of op name -> kernel; both backends dispatch through it, so an
#: op behaves identically inline and in a worker by construction.
OPS: Dict[str, Callable] = {
    "depths_step": _depths_step,
    "gather_step": _gather_step,
    "degree2_advance": _degree2_advance,
}
