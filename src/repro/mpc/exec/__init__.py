"""Pluggable execution backends for the MPC substrate.

``MPCConfig.exec_backend`` selects where the driver-evaluated superstep
compute runs: ``"inline"`` (in-process, the default and reference) or
``"process"`` (a persistent shared-memory multiprocessing pool, one worker
per simulated machine group).  Accounting always stays with
:class:`~repro.mpc.simulator.MPCSimulator`; the backends must be — and are
tested to be — bit-identical in outputs, labels and
:class:`~repro.mpc.simulator.RoundStats`.

The process pool is *supervised*: worker failures (death, hang past the
heartbeat window, a raised exception, a failed shm attach) are retried with
exponential backoff, rebuilding the pool when the pipe protocol is gone,
and degrade to a warn-once inline fallback when the ladder is exhausted —
all without changing a bit of the result.  :mod:`repro.mpc.exec.faults`
holds the deterministic fault-injection plan (:class:`FaultPlan`) and the
structured :class:`ExecHealth` report of the transitions taken.

See :mod:`repro.mpc.exec.base` for the interface, :mod:`repro.mpc.exec.pool`
for the process pool and :mod:`repro.mpc.exec.shm` for the shared-memory
part registry.
"""

from repro.mpc.exec.base import (
    INLINE,
    ArraySession,
    ExecBackend,
    ExecBackendError,
    ExecWorkerFailure,
    ExecWorkerRaised,
    InlineBackend,
    default_workers,
    resolve_backend,
)
from repro.mpc.exec.faults import ExecHealth, FaultPlan, InjectedFault
from repro.mpc.exec.ops import OPS

__all__ = [
    "ExecBackend",
    "ExecBackendError",
    "ExecWorkerFailure",
    "ExecWorkerRaised",
    "ExecHealth",
    "FaultPlan",
    "InjectedFault",
    "InlineBackend",
    "INLINE",
    "ArraySession",
    "resolve_backend",
    "default_workers",
    "OPS",
]
