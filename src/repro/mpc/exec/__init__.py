"""Pluggable execution backends for the MPC substrate.

``MPCConfig.exec_backend`` selects where the driver-evaluated superstep
compute runs: ``"inline"`` (in-process, the default and reference) or
``"process"`` (a persistent shared-memory multiprocessing pool, one worker
per simulated machine group).  Accounting always stays with
:class:`~repro.mpc.simulator.MPCSimulator`; the backends must be — and are
tested to be — bit-identical in outputs, labels and
:class:`~repro.mpc.simulator.RoundStats`.

See :mod:`repro.mpc.exec.base` for the interface, :mod:`repro.mpc.exec.pool`
for the process pool and :mod:`repro.mpc.exec.shm` for the shared-memory
part registry.
"""

from repro.mpc.exec.base import (
    INLINE,
    ArraySession,
    ExecBackend,
    ExecBackendError,
    InlineBackend,
    default_workers,
    resolve_backend,
)
from repro.mpc.exec.ops import OPS

__all__ = [
    "ExecBackend",
    "ExecBackendError",
    "InlineBackend",
    "INLINE",
    "ArraySession",
    "resolve_backend",
    "default_workers",
    "OPS",
]
