"""Supervised multiprocessing worker pool — the ``"process"`` exec backend.

One worker per simulated *machine group*: the pool holds ``W`` long-lived
processes, each connected to the driver by a duplex pipe, and each owning a
contiguous block of the simulated machines.  Treeops superstep state is
shipped once per subroutine as shared-memory NumPy views (never pickled);
per-layer DP batches ship their deltas (new summaries in, new summaries /
labels out) over the pipes.  The driver remains the synchronisation barrier:
it applies copy-backs, evaluates convergence predicates and charges rounds
through :class:`~repro.mpc.simulator.MPCSimulator` exactly as the inline
backend does, which is what keeps the two backends' `RoundStats`
bit-identical.

Failure model — the supervision ladder.  Every session operation (a
superstep call, an shm attach, a DP layer batch) is *idempotent*: its
inputs live driver-side or in driver-owned shared memory, so re-dispatching
it cannot change a bit of the result.  Supervision exploits that:

1. **Retry within the pool** — a worker that raises a Python exception
   reports its traceback and stays alive; the batch is re-dispatched on the
   same workers after an exponential backoff.
2. **Rebuild the pool** — a worker that dies (killed, OOM, segfault), goes
   silent past the heartbeat window, or exceeds the hard call deadline
   leaves the pipe protocol undefined; the pool is torn down, respawned,
   the session re-established (shm re-attached, tree state and DP session
   re-shipped) and the batch re-dispatched.
3. **Inline fallback** — after ``retries`` failed attempts the session
   degrades, with a once-per-process :class:`RuntimeWarning`, to executing
   the remaining work inline on the driver over the *same* machine-group
   partition — still bit-identical, just no longer parallel.

Liveness is heartbeat-based, not deadline-based: workers ack progress every
``heartbeat`` seconds while executing a command, so a hang is detected
after a few silent intervals (seconds) while a slow-but-alive worker can
run all the way to the generous hard ``call_timeout``.  Every ladder
transition is counted in the backend's
:class:`~repro.mpc.exec.faults.ExecHealth` report, and deterministic
failures can be injected with a :class:`~repro.mpc.exec.faults.FaultPlan`
(env ``REPRO_EXEC_FAULTS``): the driver attaches a fault directive to the
one matching message and the worker kills itself / hangs / delays / drops
the reply / raises at exactly that coordinate.

Lifetime: pools are process-global singletons keyed by every exec knob
(worker count, start method, timeouts, retry policy, fault plan), so
changing any of them mid-process yields a distinct pool instead of being
silently ignored.  ``atexit`` stops every pool; workers are daemonic as a
backstop.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import signal
import threading
import time
import traceback
import warnings
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.mpc.exec.base import (
    ArraySession,
    ExecBackend,
    ExecBackendError,
    ExecWorkerFailure,
    ExecWorkerRaised,
    InlineArraySession,
    machine_group_bounds,
)
from repro.mpc.exec.faults import ExecHealth, FaultPlan, InjectedFault
from repro.mpc.exec.ops import OPS
from repro.mpc.exec.shm import SharedArrayRegistry, attach_view, detach_view
from repro.obs import clock
from repro.obs.context import OBS_OFF
from repro.obs.dump import dump_file
from repro.obs.spans import worker_span

__all__ = ["ProcessBackend", "ProcessArraySession", "ProcessDPSession"]

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL

#: Supervision defaults (overridden per pool via MPCConfig / environment).
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF = 0.05
DEFAULT_HEARTBEAT = 0.25
DEFAULT_CALL_TIMEOUT = 300.0

#: Most recently shipped clusterings kept per worker (driver mirrors this).
_TREE_CACHE_SLOTS = 4


def _default_call_timeout() -> float:
    """The hard per-call deadline — read per pool build, never at import."""
    return float(os.environ.get("REPRO_EXEC_TIMEOUT", str(DEFAULT_CALL_TIMEOUT)))


def _hang_window(heartbeat: float) -> float:
    """Silence (no reply, no heartbeat) after which a worker counts as hung.

    Several intervals of slack absorb scheduler jitter; the floor keeps a
    tiny test heartbeat from false-killing workers on loaded CI runners.
    """
    return max(12.0 * heartbeat, 1.0)


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #


def _build_solver(spec: Tuple[str, Any, Any]) -> Any:
    if spec[0] == "finite":
        from repro.dp.local_solver import FiniteStateClusterSolver

        return FiniteStateClusterSolver(spec[1], backend=spec[2])
    return spec[1]


def _worker_context(state: Dict[str, Any], summaries: Dict[int, Any], cid: int) -> Any:
    from repro.dp.problem import ClusterContext

    hc = state["clustering"]
    return ClusterContext(
        cluster=hc.clusters[cid],
        tree=hc.tree,
        summaries=summaries,
        clusters=hc.clusters,
        edge_kinds=state["edge_kinds"],
        aux_nodes=state["aux_nodes"],
        original_parent=state["original_parent"],
    )


def _worker_main(
    conn: Any, slot: int, inherited: Sequence[Any], heartbeat: float
) -> None:  # pragma: no cover - runs in child
    """Command loop of one pool worker (see module docstring for protocol)."""
    # Fork inherits every pipe end created before this worker started; close
    # them so a dead driver reliably surfaces as EOF on our own pipe (a
    # sibling holding a copy of the driver end would otherwise keep it open
    # and orphan the pool).
    for other in inherited:
        if other is not conn:
            try:
                other.close()
            except Exception:
                pass
    parent = os.getppid()
    arrays: Dict[str, np.ndarray] = {}
    segments: Dict[str, Any] = {}
    tree_states: Dict[Any, Dict[str, Any]] = {}
    dp_sessions: Dict[Any, Dict[str, Any]] = {}

    # Liveness protocol: while `busy` (a command is executing) and not
    # `quiet` (an injected hang/drop suppresses liveness), a daemon thread
    # sends ("hb", None) every `heartbeat` seconds.  `send_lock` keeps
    # heartbeats and replies from interleaving mid-pickle on the pipe.
    send_lock = threading.Lock()
    busy = threading.Event()
    quiet = threading.Event()
    hb_stop = threading.Event()

    def _hb_loop() -> None:
        while not hb_stop.wait(heartbeat):
            if busy.is_set() and not quiet.is_set():
                try:
                    with send_lock:
                        conn.send(("hb", None))
                except Exception:
                    return

    threading.Thread(target=_hb_loop, daemon=True, name="repro-exec-hb").start()

    running = True
    while running:
        try:
            # Poll so a re-parented (orphaned) worker notices and exits even
            # if its pipe was leaked into another process.
            while not conn.poll(0.25):
                if os.getppid() != parent:
                    return
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        cmd, payload = msg[0], msg[1]
        fault = msg[2] if len(msg) > 2 else None
        want_spans = bool(msg[3]) if len(msg) > 3 else False
        kind = fault.get("kind") if fault else None
        drop_reply = False
        if kind == "kill":
            # Simulated SIGKILL mid-superstep: no reply, no cleanup.
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            # Go silent: no pickup ack, no heartbeats, just sleep.  The
            # driver's hang window fires long before the sleep ends and the
            # teardown SIGTERMs this process out of it.
            quiet.set()
            time.sleep(fault.get("duration", 20.0) if fault else 20.0)
            quiet.clear()
        elif kind == "drop":
            drop_reply = True
            quiet.set()
        if not quiet.is_set():
            # Pickup ack: resets the driver's silence clock immediately so
            # a tiny heartbeat interval cannot false-kill a worker that was
            # still in its idle poll when the command landed.
            try:
                with send_lock:
                    conn.send(("hb", None))
            except Exception:
                break
        busy.set()
        t_cmd = clock.now() if want_spans else 0.0
        try:
            if kind == "delay":
                # Slow-but-alive: heartbeats keep flowing, then the command
                # completes normally.  The driver must NOT kill this worker.
                time.sleep(fault.get("duration", 20.0) if fault else 20.0)
            result: Any = None
            if kind == "raise":
                raise InjectedFault(
                    f"injected fault on worker {slot} handling {cmd!r}"
                )
            if cmd == "op":
                op, lo, hi, extra = payload
                OPS[op](arrays, lo, hi, slot, **extra)
            elif cmd == "attach":
                for logical, shm_name, shape, dtype_str in payload:
                    stale = segments.pop(logical, None)
                    if stale is not None:
                        # Re-attach after a retry: drop the previous handle
                        # first so nothing keeps the old mapping alive.
                        arrays.pop(logical, None)
                        detach_view(stale)
                    seg, view = attach_view(shm_name, shape, dtype_str)
                    # mpclint: disable-next-line=shm-view-escape -- worker session cache; the matching "detach" command drops both before close
                    segments[logical] = seg
                    # mpclint: disable-next-line=shm-view-escape -- worker session cache; the matching "detach" command drops both before close
                    arrays[logical] = view
            elif cmd == "detach":
                for logical in payload:
                    arrays.pop(logical, None)
                    seg = segments.pop(logical, None)
                    if seg is not None:
                        detach_view(seg)
            elif cmd == "tree_state":
                key, blob = payload
                tree_states[key] = pickle.loads(blob)
            elif cmd == "tree_drop":
                tree_states.pop(payload, None)
            elif cmd == "dp_open":
                skey, tree_key, solver_blob = payload
                dp_sessions[skey] = {
                    "solver": _build_solver(pickle.loads(solver_blob)),
                    "tree_key": tree_key,
                    "summaries": {},
                }
            elif cmd == "dp_solve":
                skey, cids, extra_summaries = payload
                sess = dp_sessions[skey]
                state = tree_states[sess["tree_key"]]
                summaries = sess["summaries"]
                summaries.update(extra_summaries)
                ctxs = [_worker_context(state, summaries, cid) for cid in cids]
                out = sess["solver"].summarize_layer(ctxs)
                for cid, summary in zip(cids, out):
                    summaries[cid] = summary
                result = list(zip(cids, out))
            elif cmd == "dp_labels":
                skey, items, extra_summaries = payload
                sess = dp_sessions[skey]
                state = tree_states[sess["tree_key"]]
                sess["summaries"].update(extra_summaries)
                solver = sess["solver"]
                result = [
                    (
                        cid,
                        solver.assign_internal_labels(
                            _worker_context(state, sess["summaries"], cid),
                            out_label,
                            in_label,
                        ),
                    )
                    for cid, out_label, in_label in items
                ]
            elif cmd == "dp_close":
                dp_sessions.pop(payload, None)
            elif cmd == "ping":
                result = slot
            elif cmd == "stop":
                running = False
            else:
                raise ValueError(f"unknown pool command {cmd!r}")
            busy.clear()
            if not drop_reply:
                reply: Tuple[Any, ...] = ("ok", result)
                if want_spans:
                    # One span per command, shipped back on the reply; the
                    # driver re-bases it onto its own clock (rel=0 pins the
                    # span at the driver's send time) and re-parents it.
                    attrs: Dict[str, Any] = {"slot": slot}
                    if cmd == "op":
                        attrs["op"] = payload[0]
                        attrs["rows"] = payload[2] - payload[1]
                    elif cmd in ("dp_solve", "dp_labels"):
                        attrs["n"] = len(payload[1])
                    span = worker_span(
                        f"worker.{cmd}", 0.0, clock.now() - t_cmd, **attrs
                    )
                    reply = ("ok", result, [span])
                try:
                    with send_lock:
                        conn.send(reply)
                except Exception:
                    break
        except BaseException:
            busy.clear()
            if drop_reply:
                continue
            try:
                with send_lock:
                    conn.send(("error", traceback.format_exc()))
            except Exception:
                break
    hb_stop.set()
    for seg in segments.values():
        detach_view(seg)
    try:
        conn.close()
    except Exception:
        pass


# --------------------------------------------------------------------------- #
# Driver side
# --------------------------------------------------------------------------- #


class _Worker:
    """Driver handle on one pool worker: process + pipe + liveness checks."""

    def __init__(
        self,
        ctx: Any,
        slot: int,
        conn: Any,
        child_conn: Any,
        inherited: Sequence[Any],
        heartbeat: float,
        call_timeout: float,
    ) -> None:
        self.slot = slot
        self.conn = conn
        self.call_timeout = call_timeout
        self.hang_after = _hang_window(heartbeat)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, slot, inherited, heartbeat),
            daemon=True,
            name=f"repro-exec-{slot}",
        )
        self.proc.start()
        child_conn.close()

    def send(
        self,
        cmd: str,
        payload: Any,
        fault: Optional[Dict[str, Any]] = None,
        want_spans: bool = False,
    ) -> None:
        message: Tuple[Any, ...] = (
            (cmd, payload)
            if fault is None and not want_spans
            else (cmd, payload, fault, want_spans)
        )
        try:
            self.conn.send(message)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise ExecWorkerFailure(
                f"exec worker {self.slot} (pid {self.proc.pid}) is gone: {exc}",
                slot=self.slot,
                kind="died",
            ) from exc

    def recv_reply(self) -> Tuple[str, Any, Any]:
        """The next ``("ok" | "error", result, spans)`` reply, heartbeat-aware.

        ``spans`` is the worker's piggybacked span-dict list when the command
        requested tracing, else ``None``.  Heartbeats — the pickup ack and
        the periodic progress acks a busy worker sends — reset the silence
        clock without satisfying the call; a worker silent for longer than
        the hang window counts as hung even though it is alive, and the hard
        ``call_timeout`` bounds the call even while heartbeats keep arriving.
        """
        start = clock.monotonic()
        deadline = start + self.call_timeout
        last_signal = start
        while True:
            if self.conn.poll(0.02):
                try:
                    msg = self.conn.recv()
                except (EOFError, OSError) as exc:
                    raise ExecWorkerFailure(
                        f"exec worker {self.slot} (pid {self.proc.pid}) closed its pipe",
                        slot=self.slot,
                        kind="died",
                    ) from exc
                if msg[0] == "hb":
                    last_signal = clock.monotonic()
                    continue
                return msg[0], msg[1], (msg[2] if len(msg) > 2 else None)
            now = clock.monotonic()
            if not self.proc.is_alive():
                raise ExecWorkerFailure(
                    f"exec worker {self.slot} (pid {self.proc.pid}) died "
                    f"mid-superstep (exitcode {self.proc.exitcode})",
                    slot=self.slot,
                    kind="died",
                )
            if now - last_signal > self.hang_after:
                raise ExecWorkerFailure(
                    f"exec worker {self.slot} (pid {self.proc.pid}) went silent: "
                    f"no heartbeat for {self.hang_after:.1f}s",
                    slot=self.slot,
                    kind="hung",
                )
            if now > deadline:
                raise ExecWorkerFailure(
                    f"exec worker {self.slot} (pid {self.proc.pid}) did not "
                    f"finish within the {self.call_timeout:.0f}s call deadline",
                    slot=self.slot,
                    kind="timeout",
                )

    def stop(self) -> None:
        try:
            self.conn.send(("stop", None))
        except Exception:
            pass
        self.proc.join(timeout=1.0)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.terminate()
            self.proc.join(timeout=1.0)
        try:
            self.conn.close()
        except Exception:
            pass


def _mp_context(start_method: Optional[str] = None) -> Any:
    import multiprocessing as mp

    method = start_method or os.environ.get("REPRO_EXEC_START_METHOD")
    if method:
        return mp.get_context(method)
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return mp.get_context("spawn")


_UNSHIPPABLE_WARNED: Set[str] = set()

_DEGRADE_WARNED = False


def _warn_inline_fallback(what: str, exc: BaseException) -> None:
    """Once per process: the supervision ladder ran out and went inline."""
    global _DEGRADE_WARNED
    if not _DEGRADE_WARNED:
        _DEGRADE_WARNED = True
        warnings.warn(
            f"exec supervision exhausted its retries for {what} ({exc}); "
            "continuing inline on the driver — results are bit-identical, "
            "only the placement changed",
            RuntimeWarning,
            stacklevel=4,
        )


#: Pool-cache key: every knob that changes pool behaviour.
_PoolKey = Tuple[int, str, float, int, float, float, str]


class ProcessBackend(ExecBackend):
    """The supervised ``"process"`` execution backend (see module docstring)."""

    name = "process"

    _shared: Dict[_PoolKey, "ProcessBackend"] = {}

    def __init__(
        self,
        workers: int,
        *,
        start_method: Optional[str] = None,
        call_timeout: Optional[float] = None,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
        heartbeat: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.num_slots = max(1, int(workers))
        self.start_method = start_method
        self.call_timeout = call_timeout if call_timeout is not None else _default_call_timeout()
        self.retries = DEFAULT_RETRIES if retries is None else max(0, int(retries))
        self.backoff = DEFAULT_BACKOFF if backoff is None else max(0.0, float(backoff))
        self.heartbeat = DEFAULT_HEARTBEAT if heartbeat is None else float(heartbeat)
        self.fault_plan = fault_plan
        #: The structured supervision report (one per backend lifetime).
        self.health = ExecHealth()
        self._workers: List[_Worker] = []
        self._generation = 0
        #: True between a failure teardown and the next rebuild (rebuild
        #: accounting: the *first* build of a pool is not a rebuild).
        self._dirty = False
        self._ever_built = False
        #: Supervised messages sent per slot — the FaultPlan coordinate
        #: space.  Driver-side and monotonic across rebuilds, so plans are
        #: deterministic and every entry fires exactly once.
        self._fault_calls: Dict[int, int] = {}
        #: Worker-side tree-state cache mirror: key -> None (ordered LRU).
        self._tree_mirror: "OrderedDict[Any, None]" = OrderedDict()
        self._live_tree_keys: set = set()
        self._session_ids = itertools.count()
        self._tree_tokens = itertools.count()

    @classmethod
    def shared(
        cls,
        workers: int,
        *,
        start_method: Optional[str] = None,
        call_timeout: Optional[float] = None,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
        heartbeat: Optional[float] = None,
        faults: Optional[str] = None,
    ) -> "ProcessBackend":
        """The process-global pool for this exact knob combination.

        Keyed by every behavioural knob — worker count, start method,
        timeouts, retry policy, heartbeat cadence and the fault-plan spec —
        so changing ``REPRO_EXEC_START_METHOD`` or any timeout mid-process
        yields a fresh pool instead of silently reusing a stale one.
        """
        method = start_method or os.environ.get("REPRO_EXEC_START_METHOD") or ""
        timeout = call_timeout if call_timeout is not None else _default_call_timeout()
        retries_v = DEFAULT_RETRIES if retries is None else max(0, int(retries))
        backoff_v = DEFAULT_BACKOFF if backoff is None else max(0.0, float(backoff))
        heartbeat_v = DEFAULT_HEARTBEAT if heartbeat is None else float(heartbeat)
        spec = faults or ""
        key: _PoolKey = (
            max(1, int(workers)),
            method,
            timeout,
            retries_v,
            backoff_v,
            heartbeat_v,
            spec,
        )
        backend = cls._shared.get(key)
        if backend is None:
            backend = cls._shared[key] = cls(
                workers,
                start_method=method or None,
                call_timeout=timeout,
                retries=retries_v,
                backoff=backoff_v,
                heartbeat=heartbeat_v,
                fault_plan=FaultPlan.parse(spec),
            )
        return backend

    # -- pool lifecycle ------------------------------------------------- #

    def _ensure_pool(self) -> List[_Worker]:
        if not self._workers:
            if self._dirty:
                self.health.record_rebuild("pool")
                self._dirty = False
            ctx = _mp_context(self.start_method)
            self._generation += 1
            self._tree_mirror.clear()
            self._live_tree_keys.clear()
            # All pipes are created before any fork so every child can close
            # the ends it inherited from its siblings (see _worker_main).
            pipes = [ctx.Pipe(duplex=True) for _ in range(self.num_slots)]
            # Spawned children inherit nothing; shipping the list would dup
            # the handles into them instead.
            fork = ctx.get_start_method() == "fork"
            inherited = [end for pair in pipes for end in pair] if fork else []
            self._workers = [
                _Worker(
                    ctx,
                    slot,
                    conn,
                    child_conn,
                    inherited,
                    self.heartbeat,
                    self.call_timeout,
                )
                for slot, (conn, child_conn) in enumerate(pipes)
            ]
            self._ever_built = True
        return self._workers

    def worker_pids(self) -> List[int]:
        """PIDs of the live pool (starts the pool if needed); for tests."""
        return [w.proc.pid for w in self._ensure_pool()]

    def _teardown(self) -> None:
        workers, self._workers = self._workers, []
        self._dirty = True
        for w in workers:
            try:
                w.proc.terminate()
            except Exception:
                pass
        for w in workers:
            try:
                w.proc.join(timeout=1.0)
            except Exception:
                pass
            try:
                w.conn.close()
            except Exception:
                pass
        self._tree_mirror.clear()
        self._live_tree_keys.clear()

    def close(self) -> None:
        workers, self._workers = self._workers, []
        for w in workers:
            w.stop()
        self._dirty = False
        self._tree_mirror.clear()
        self._live_tree_keys.clear()
        self._write_health_report()

    def _write_health_report(self) -> None:
        """Dump the ExecHealth report as JSON when REPRO_EXEC_HEALTH_DIR is set.

        One file per backend close; the CI chaos job uploads the directory
        as its artifact, so a surviving-but-degraded run is inspectable.

        Delegates naming to :func:`repro.obs.dump.dump_file` (shared with
        the ``REPRO_OBS_DIR`` trace/metric dumps): filenames carry the pid,
        the pool generation and a sequence number, writes are
        exclusive-create with collision retry — so several pipelines in one
        process, or a restarted server whose pid the OS reused, can never
        silently overwrite an earlier report — and the oldest reports beyond
        the GC cap are pruned.
        """
        out_dir = os.environ.get("REPRO_EXEC_HEALTH_DIR")
        if not out_dir or not self._ever_built:
            return
        dump_file(
            out_dir,
            f"exec-health-{os.getpid()}-g{self._generation}",
            ".json",
            "exec-health-",
            lambda path: self.health.write_json(path, exclusive=True),
        )

    # -- calls ----------------------------------------------------------- #

    def _next_fault(self, slot: int, cmd: str) -> Optional[Dict[str, Any]]:
        """Advance slot's call counter; the fault directive due now, if any."""
        n = self._fault_calls.get(slot, 0)
        self._fault_calls[slot] = n + 1
        if self.fault_plan is None:
            return None
        return self.fault_plan.take(slot, n, cmd)

    def _call_each(
        self,
        messages: Sequence[Optional[Tuple[str, Any]]],
        obs: Optional[Any] = None,
    ) -> List[Any]:
        """Send one message per worker (None = skip), then collect replies.

        Sends complete before any receive, so workers genuinely overlap.  A
        dead/hung worker tears the pool down and raises
        :class:`ExecWorkerFailure`; a worker-side exception drains every
        other reply first (the pipes stay protocol-clean), keeps the pool
        intact and raises :class:`ExecWorkerRaised`.  Callers that want the
        supervision ladder wrap this in :meth:`supervised`.

        ``obs`` (an enabled :class:`~repro.obs.ObsContext`) asks workers to
        time their command handling: durations land in the run's metrics,
        and in ``trace`` mode the worker spans are ingested re-based on this
        driver's send time and re-parented under the caller's current span.
        """
        workers = self._ensure_pool()
        want_spans = obs is not None and obs.enabled
        base = clock.now() if want_spans else 0.0
        try:
            active: List[_Worker] = []
            for worker, message in zip(workers, messages):
                if message is None:
                    continue
                worker.send(
                    message[0],
                    message[1],
                    self._next_fault(worker.slot, message[0]),
                    want_spans=want_spans,
                )
                active.append(worker)
            replies = [worker.recv_reply() for worker in active]
        except ExecWorkerFailure:
            self._teardown()
            raise
        for worker, (status, result, _spans) in zip(active, replies):
            if status == "error":
                raise ExecWorkerRaised(
                    f"exec worker {worker.slot} raised:\n{result}", slot=worker.slot
                )
        if want_spans:
            self._observe_workers(obs, active, replies, base)
        return [reply[1] for reply in replies]

    def _observe_workers(
        self,
        obs: Any,
        active: Sequence[_Worker],
        replies: Sequence[Tuple[str, Any, Any]],
        base: float,
    ) -> None:
        """Attribute the workers' piggybacked timings to the run's obs."""
        for worker, (_status, _result, spans) in zip(active, replies):
            if not spans:
                continue
            for sd in spans:
                cmd = str(sd.get("name", "worker")).rsplit(".", 1)[-1]
                obs.metrics.histogram(
                    "repro_exec_worker_seconds", cmd=cmd, slot=worker.slot
                ).observe(float(sd.get("duration", 0.0)))
            if obs.tracing:
                obs.recorder.ingest(spans, base=base)

    def _call_all(self, cmd: str, payload: Any) -> List[Any]:
        return self._call_each([(cmd, payload)] * len(self._ensure_pool()))

    def supervised(
        self,
        what: str,
        attempt: Callable[[], Any],
        reestablish: Optional[Callable[[], None]] = None,
    ) -> Any:
        """Run ``attempt`` under the retry/rebuild ladder.

        ``attempt`` must be safe to re-run from scratch (the calls are
        idempotent by construction) and should rebuild its messages each
        time; ``reestablish`` restores worker-side session state before a
        retry (re-attach shm, re-ship tree state, re-open the DP session)
        and runs whether the pool survived (worker raised) or was rebuilt
        (worker died/hung).  Raises the last error once attempts are
        exhausted — callers then take the inline-fallback rung.
        """
        last: Optional[ExecBackendError] = None
        for i in range(self.retries + 1):
            if i:
                self.health.record_retry(what, i)
                delay = self.backoff * (2 ** (i - 1))
                if delay > 0:
                    time.sleep(delay)
                if reestablish is not None:
                    try:
                        reestablish()
                    except ExecBackendError as exc:
                        self._record_failure(what, exc, i)
                        last = exc
                        continue
            try:
                return attempt()
            except ExecBackendError as exc:
                self._record_failure(what, exc, i)
                last = exc
        assert last is not None
        raise last

    def _record_failure(self, what: str, exc: ExecBackendError, attempt: int) -> None:
        self.health.record_failure(
            what,
            getattr(exc, "kind", "error"),
            getattr(exc, "slot", None),
            attempt,
            str(exc),
        )

    def register_health_gauges(self, obs: Any) -> None:
        """Pull-style gauges over the supervision-ladder counters.

        Evaluated at metrics-snapshot time, so a scrape always sees the
        current retry/rebuild/fallback totals without any hot-path hook.
        """
        health = self.health
        for stat in ("retries", "rebuilds", "inline_fallbacks"):
            obs.metrics.gauge_fn(
                "repro_exec_health",
                lambda s=stat: float(getattr(health, s)),
                stat=stat,
            )

    # -- array sessions --------------------------------------------------- #

    def array_session(
        self,
        arrays: Dict[str, np.ndarray],
        rows: int,
        num_machines: int,
        scratch: Optional[Dict[str, Tuple[Tuple[int, ...], Any]]] = None,
        obs: Optional[Any] = None,
    ) -> ArraySession:
        if rows <= 0:
            return InlineArraySession(arrays, rows, scratch)
        return ProcessArraySession(self, arrays, rows, num_machines, scratch, obs)

    # -- DP sessions ------------------------------------------------------ #

    def _solver_spec(self, solver: Any) -> Tuple[str, Any, Any]:
        from repro.dp.local_solver import FiniteStateClusterSolver

        if isinstance(solver, FiniteStateClusterSolver):
            return ("finite", solver.problem, solver.backend)
        return ("raw", solver, None)

    def _tree_key(self, engine_state: Dict[str, Any]) -> Any:
        hc = engine_state["clustering"]
        token = getattr(hc, "_exec_token", None)
        if token is None:
            token = next(self._tree_tokens)
            try:
                hc._exec_token = token
            except Exception:  # pragma: no cover - slotted clustering
                token = id(hc)
        epoch = getattr(hc, "_exec_payload_epoch", 0)
        return (self._generation, token, epoch)

    def _ship_tree_state(self, engine_state: Dict[str, Any]) -> Any:
        key = self._tree_key(engine_state)
        if key in self._tree_mirror:
            self._tree_mirror.move_to_end(key)
            return key
        while len(self._tree_mirror) >= _TREE_CACHE_SLOTS:
            stale = next(
                (k for k in self._tree_mirror if k not in self._live_tree_keys), None
            )
            if stale is None:  # pragma: no cover - all slots pinned
                break
            del self._tree_mirror[stale]
            self._call_all("tree_drop", stale)
        blob = pickle.dumps(
            {
                "clustering": engine_state["clustering"],
                "edge_kinds": engine_state["edge_kinds"],
                "aux_nodes": engine_state["aux_nodes"],
                "original_parent": engine_state["original_parent"],
            },
            protocol=_PICKLE_PROTO,
        )
        self._call_all("tree_state", (key, blob))
        self._tree_mirror[key] = None
        return key

    def dp_session(
        self, engine_state: Dict[str, Any], solver: Any, obs: Optional[Any] = None
    ) -> Optional["ProcessDPSession"]:
        """Open a :class:`ProcessDPSession`, or ``None`` for inline layers.

        Two graceful declines: a solver/problem that cannot be pickled
        (e.g. defined in a local scope) and a pool whose supervision ladder
        exhausted during the open — both degrade to inline layer execution
        with a one-time :class:`RuntimeWarning`; results are identical
        either way.
        """
        spec = self._solver_spec(solver)
        try:
            solver_blob = pickle.dumps(spec, protocol=_PICKLE_PROTO)
        except Exception as exc:
            tag = type(getattr(solver, "problem", solver)).__name__
            if tag not in _UNSHIPPABLE_WARNED:
                _UNSHIPPABLE_WARNED.add(tag)
                warnings.warn(
                    f"DP problem {tag} cannot be shipped to exec workers "
                    f"({exc!r}); running its layer batches inline",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None
        skey = next(self._session_ids)

        def _open() -> Any:
            self._ensure_pool()
            tree_key = self._ship_tree_state(engine_state)
            self._call_all("dp_open", (skey, tree_key, solver_blob))
            return tree_key

        try:
            tree_key = self.supervised(f"dp_open:{skey}", _open)
        except ExecBackendError as exc:
            self.health.record_inline_fallback(f"dp_open:{skey}")
            _warn_inline_fallback(f"DP session open ({skey})", exc)
            return None
        self._live_tree_keys.add(tree_key)
        return ProcessDPSession(
            self, skey, tree_key, engine_state, solver, solver_blob, obs
        )


class ProcessArraySession(ArraySession):
    """Shared-memory array session over the worker pool, supervised.

    The driver owns every shm segment (workers merely attach), so segments
    survive any number of worker deaths: a retry re-attaches the respawned
    pool to the same pages and re-dispatches the op.  When the ladder is
    exhausted the session degrades to running the ops inline on the driver
    over the *same* ``(lo, hi, slot)`` partition — same scratch rows, same
    arithmetic, bit-identical results.
    """

    def __init__(
        self,
        backend: ProcessBackend,
        arrays: Dict[str, np.ndarray],
        rows: int,
        num_machines: int,
        scratch: Optional[Dict[str, Tuple[Tuple[int, ...], Any]]] = None,
        obs: Optional[Any] = None,
    ) -> None:
        self.backend = backend
        self.rows = rows
        self.obs = obs if obs is not None else OBS_OFF
        if self.obs.enabled:
            backend.register_health_gauges(self.obs)
        self.registry = SharedArrayRegistry()
        self.arrays: Dict[str, np.ndarray] = {}
        self._attached = False
        self._degraded = False
        workers = backend._ensure_pool()
        slots = len(workers)
        self.bounds = machine_group_bounds(rows, num_machines, slots)
        try:
            for name, arr in arrays.items():
                self.arrays[name] = self.registry.create(name, like=np.ascontiguousarray(arr))
            for name, (shape, dtype) in (scratch or {}).items():
                self.arrays[name] = self.registry.create(
                    name, shape=(slots,) + tuple(shape), dtype=dtype
                )
        except BaseException:
            # Segment allocation failed: unlink whatever was created.
            self.registry.destroy()
            raise
        try:
            backend.supervised("attach", self._attach)
            self._attached = True
        except ExecBackendError as exc:
            self._degrade("attach", exc)

    def _attach(self) -> None:
        self.backend._call_all("attach", self.registry.specs())

    def run(self, op: str, **extra: Any) -> None:
        if self._degraded:
            self._run_inline(op, extra)
            return
        obs = self.obs

        def _attempt() -> None:
            with obs.trace("exec.op", op=op, fanout=len(self.bounds)):
                self.backend._call_each(
                    [("op", (op, lo, hi, extra)) for lo, hi in self.bounds], obs=obs
                )

        def _reestablish() -> None:
            self._attach()
            self._attached = True

        t0 = clock.now() if obs.enabled else 0.0
        try:
            self.backend.supervised(f"op:{op}", _attempt, _reestablish)
        except ExecBackendError as exc:
            self._degrade(f"op:{op}", exc)
            self._run_inline(op, extra)
            return
        if obs.enabled:
            obs.metrics.histogram("repro_exec_call_seconds", cmd="op").observe(
                clock.now() - t0
            )

    def _run_inline(self, op: str, extra: Dict[str, Any]) -> None:
        # Same partition as the pool would use — ops only see (lo, hi, slot),
        # so the fallback cannot change a bit (scratch rows included).
        fn = OPS[op]
        for slot, (lo, hi) in enumerate(self.bounds):
            fn(self.arrays, lo, hi, slot, **extra)

    def _degrade(self, what: str, exc: ExecBackendError) -> None:
        self._degraded = True
        self.backend.health.record_inline_fallback(what)
        _warn_inline_fallback(f"array session {what}", exc)
        self._detach_workers()

    def _detach_workers(self) -> None:
        if self._attached:
            self._attached = False
            try:
                if self.backend._workers:
                    self.backend._call_all("detach", [s[0] for s in self.registry.specs()])
            except ExecBackendError:
                pass  # pool already torn down; unlink below still runs

    def close(self) -> None:
        self._detach_workers()
        self.registry.destroy()


class ProcessDPSession:
    """Per-solve DP session: layer batches fanned out by cluster ownership.

    A cluster is owned by worker ``cid % slots`` for the whole solve, so the
    worker that summarised a cluster bottom-up also labels it top-down (its
    solver's trace memo is local).  Summaries a worker needs but does not
    own are shipped as deltas with the batch — the driver keeps the complete
    summary map, which is also what makes supervision sound: after a pool
    rebuild the session re-opens on fresh workers, the ``_known`` delta
    bookkeeping resets, and the next batch ships everything the new workers
    need; the label phase recomputes any trace a respawned worker lost.
    When the ladder is exhausted the session degrades to evaluating batches
    inline on the driver with the same contexts — bit-identical.
    """

    def __init__(
        self,
        backend: ProcessBackend,
        skey: Any,
        tree_key: Any,
        engine_state: Dict[str, Any],
        solver: Any,
        solver_blob: bytes,
        obs: Optional[Any] = None,
    ) -> None:
        self.backend = backend
        self.skey = skey
        self.tree_key = tree_key
        self.engine_state = engine_state
        self.solver = solver
        self._solver_blob = solver_blob
        self.obs = obs if obs is not None else OBS_OFF
        if self.obs.enabled:
            backend.register_health_gauges(self.obs)
        self._known: List[set] = [set() for _ in range(backend.num_slots)]
        self._degraded = False
        self._closed = False

    def _owner(self, cid: int) -> int:
        return cid % self.backend.num_slots

    def _reestablish(self) -> None:
        """Restore worker-side session state before a retry.

        Unconditional: re-ships the tree state (a no-op when the pool
        survived and still mirrors it), re-opens the DP session (resetting
        the workers' summary maps) and clears the delta bookkeeping so the
        retried batch ships every summary the workers need.
        """
        backend = self.backend
        backend._ensure_pool()
        backend._live_tree_keys.discard(self.tree_key)
        self.tree_key = backend._ship_tree_state(self.engine_state)
        backend._live_tree_keys.add(self.tree_key)
        backend._call_all("dp_open", (self.skey, self.tree_key, self._solver_blob))
        self._known = [set() for _ in range(backend.num_slots)]

    def _summary_extras(
        self, slot: int, cids: Sequence[int], by_cid: Dict[int, Any],
        summaries: Dict[int, Any]
    ) -> Dict[int, Any]:
        """Child-cluster summaries ``slot`` needs for ``cids`` but lacks."""
        known = self._known[slot]
        extra: Dict[int, Any] = {}
        for cid in cids:
            for element in by_cid[cid].elements:
                if element[0] == "cluster" and element[1] not in known:
                    extra[element[1]] = summaries[element[1]]
        known.update(extra)
        return extra

    def solve_layer(self, clusters: Sequence[Any], summaries: Dict[int, Any]) -> List[Any]:
        """Summaries of one layer's clusters, aligned with ``clusters``."""
        if self._degraded:
            return self._inline_solve(clusters, summaries)
        slots = self.backend.num_slots
        by_cid = {c.cid: c for c in clusters}
        obs = self.obs

        def _attempt() -> List[Any]:
            batches: List[List[int]] = [[] for _ in range(slots)]
            for cluster in clusters:
                batches[self._owner(cluster.cid)].append(cluster.cid)
            messages: List[Optional[Tuple[str, Any]]] = []
            for slot in range(slots):
                cids = batches[slot]
                if not cids:
                    messages.append(None)
                    continue
                extra = self._summary_extras(slot, cids, by_cid, summaries)
                self._known[slot].update(cids)
                messages.append(("dp_solve", (self.skey, cids, extra)))
            with obs.trace("exec.dp_solve", clusters=len(clusters)):
                replies = self.backend._call_each(messages, obs=obs)
            out: Dict[int, Any] = {}
            for reply in replies:
                for cid, summary in reply:
                    out[cid] = summary
            return [out[c.cid] for c in clusters]

        t0 = clock.now() if obs.enabled else 0.0
        try:
            result = self.backend.supervised(
                f"dp_solve:{self.skey}", _attempt, self._reestablish
            )
        except ExecBackendError as exc:
            self._degrade(f"dp_solve:{self.skey}", exc)
            return self._inline_solve(clusters, summaries)
        if obs.enabled:
            obs.metrics.histogram("repro_exec_call_seconds", cmd="dp_solve").observe(
                clock.now() - t0
            )
        return result

    def label_layer(
        self, items: Sequence[Tuple[Any, Any, Any]], summaries: Dict[int, Any]
    ) -> Dict[int, Dict]:
        """Internal labels of one layer: ``{cid: {element: label}}``.

        ``items`` is ``(cluster, out_label, in_label)`` per cluster; each is
        labelled on its owning worker.  Summary deltas ride along exactly
        like the solve phase's, so a worker respawned after the bottom-up
        pass can rebuild the contexts (and recompute the traces) it lost.
        """
        if self._degraded:
            return self._inline_labels(items, summaries)
        slots = self.backend.num_slots
        by_cid = {cluster.cid: cluster for cluster, _o, _i in items}
        obs = self.obs

        def _attempt() -> Dict[int, Dict]:
            batches: List[List[Tuple[int, Any, Any]]] = [[] for _ in range(slots)]
            for cluster, out_label, in_label in items:
                batches[self._owner(cluster.cid)].append(
                    (cluster.cid, out_label, in_label)
                )
            messages: List[Optional[Tuple[str, Any]]] = []
            for slot in range(slots):
                batch = batches[slot]
                if not batch:
                    messages.append(None)
                    continue
                extra = self._summary_extras(
                    slot, [cid for cid, _o, _i in batch], by_cid, summaries
                )
                messages.append(("dp_labels", (self.skey, batch, extra)))
            with obs.trace("exec.dp_labels", clusters=len(items)):
                replies = self.backend._call_each(messages, obs=obs)
            labels: Dict[int, Dict] = {}
            for reply in replies:
                for cid, cluster_labels in reply:
                    labels[cid] = cluster_labels
            return labels

        t0 = clock.now() if obs.enabled else 0.0
        try:
            result = self.backend.supervised(
                f"dp_labels:{self.skey}", _attempt, self._reestablish
            )
        except ExecBackendError as exc:
            self._degrade(f"dp_labels:{self.skey}", exc)
            return self._inline_labels(items, summaries)
        if obs.enabled:
            obs.metrics.histogram("repro_exec_call_seconds", cmd="dp_labels").observe(
                clock.now() - t0
            )
        return result

    # -- inline fallback -------------------------------------------------- #

    def _inline_solve(self, clusters: Sequence[Any], summaries: Dict[int, Any]) -> List[Any]:
        ctxs = [
            _worker_context(self.engine_state, summaries, cluster.cid)
            for cluster in clusters
        ]
        return self.solver.summarize_layer(ctxs)

    def _inline_labels(
        self, items: Sequence[Tuple[Any, Any, Any]], summaries: Dict[int, Any]
    ) -> Dict[int, Dict]:
        labels: Dict[int, Dict] = {}
        for cluster, out_label, in_label in items:
            ctx = _worker_context(self.engine_state, summaries, cluster.cid)
            labels[cluster.cid] = self.solver.assign_internal_labels(
                ctx, out_label, in_label
            )
        return labels

    def _degrade(self, what: str, exc: ExecBackendError) -> None:
        self._degraded = True
        self.backend.health.record_inline_fallback(what)
        _warn_inline_fallback(f"DP session {what}", exc)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.backend._live_tree_keys.discard(self.tree_key)
        if self.backend._workers:
            try:
                self.backend._call_all("dp_close", self.skey)
            except ExecBackendError:
                pass


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter exit
    for backend in list(ProcessBackend._shared.values()):
        backend.close()
