"""Persistent multiprocessing worker pool — the ``"process"`` exec backend.

One worker per simulated *machine group*: the pool holds ``W`` long-lived
processes, each connected to the driver by a duplex pipe, and each owning a
contiguous block of the simulated machines.  Treeops superstep state is
shipped once per subroutine as shared-memory NumPy views (never pickled);
per-layer DP batches ship their deltas (new summaries in, new summaries /
labels out) over the pipes.  The driver remains the synchronisation barrier:
it applies copy-backs, evaluates convergence predicates and charges rounds
through :class:`~repro.mpc.simulator.MPCSimulator` exactly as the inline
backend does, which is what keeps the two backends' `RoundStats`
bit-identical.

Failure model: a worker that dies (killed, OOM, segfault) or exceeds the
call deadline surfaces as :class:`~repro.mpc.exec.base.ExecBackendError`; the
pool is torn down immediately and rebuilt lazily on the next session, so a
killed worker never hangs the driver and never poisons later solves.  A
worker that raises a Python exception reports its traceback and stays alive.

Lifetime: pools are process-global singletons keyed by worker count (the
substrate creates many short-lived simulators; respawning per simulator
would dominate).  ``atexit`` stops every pool; workers are daemonic as a
backstop.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import time
import traceback
import warnings
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mpc.exec.base import (
    ArraySession,
    ExecBackend,
    ExecBackendError,
    InlineArraySession,
    machine_group_bounds,
)
from repro.mpc.exec.ops import OPS
from repro.mpc.exec.shm import SharedArrayRegistry, attach_view, detach_view

__all__ = ["ProcessBackend", "ProcessArraySession", "ProcessDPSession"]

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL

#: Per-call deadline in seconds (generous; the kill test relies on liveness
#: polling, not on this timeout).
_CALL_TIMEOUT = float(os.environ.get("REPRO_EXEC_TIMEOUT", "300"))

#: Most recently shipped clusterings kept per worker (driver mirrors this).
_TREE_CACHE_SLOTS = 4


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #


def _build_solver(spec: Tuple[str, Any, Any]) -> Any:
    if spec[0] == "finite":
        from repro.dp.local_solver import FiniteStateClusterSolver

        return FiniteStateClusterSolver(spec[1], backend=spec[2])
    return spec[1]


def _worker_context(state: Dict[str, Any], summaries: Dict[int, Any], cid: int) -> Any:
    from repro.dp.problem import ClusterContext

    hc = state["clustering"]
    return ClusterContext(
        cluster=hc.clusters[cid],
        tree=hc.tree,
        summaries=summaries,
        clusters=hc.clusters,
        edge_kinds=state["edge_kinds"],
        aux_nodes=state["aux_nodes"],
        original_parent=state["original_parent"],
    )


def _worker_main(
    conn: Any, slot: int, inherited: Sequence[Any]
) -> None:  # pragma: no cover - runs in child
    """Command loop of one pool worker (see module docstring for protocol)."""
    # Fork inherits every pipe end created before this worker started; close
    # them so a dead driver reliably surfaces as EOF on our own pipe (a
    # sibling holding a copy of the driver end would otherwise keep it open
    # and orphan the pool).
    for other in inherited:
        if other is not conn:
            try:
                other.close()
            except Exception:
                pass
    parent = os.getppid()
    arrays: Dict[str, np.ndarray] = {}
    segments: Dict[str, Any] = {}
    tree_states: Dict[Any, Dict[str, Any]] = {}
    dp_sessions: Dict[Any, Dict[str, Any]] = {}
    running = True
    while running:
        try:
            # Poll so a re-parented (orphaned) worker notices and exits even
            # if its pipe was leaked into another process.
            while not conn.poll(1.0):
                if os.getppid() != parent:
                    return
            cmd, payload = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        try:
            result: Any = None
            if cmd == "op":
                op, lo, hi, extra = payload
                OPS[op](arrays, lo, hi, slot, **extra)
            elif cmd == "attach":
                for logical, shm_name, shape, dtype_str in payload:
                    seg, view = attach_view(shm_name, shape, dtype_str)
                    # mpclint: disable-next-line=shm-view-escape -- worker session cache; the matching "detach" command drops both before close
                    segments[logical] = seg
                    # mpclint: disable-next-line=shm-view-escape -- worker session cache; the matching "detach" command drops both before close
                    arrays[logical] = view
            elif cmd == "detach":
                for logical in payload:
                    arrays.pop(logical, None)
                    seg = segments.pop(logical, None)
                    if seg is not None:
                        detach_view(seg)
            elif cmd == "tree_state":
                key, blob = payload
                tree_states[key] = pickle.loads(blob)
            elif cmd == "tree_drop":
                tree_states.pop(payload, None)
            elif cmd == "dp_open":
                skey, tree_key, solver_blob = payload
                dp_sessions[skey] = {
                    "solver": _build_solver(pickle.loads(solver_blob)),
                    "tree_key": tree_key,
                    "summaries": {},
                }
            elif cmd == "dp_solve":
                skey, cids, extra_summaries = payload
                sess = dp_sessions[skey]
                state = tree_states[sess["tree_key"]]
                summaries = sess["summaries"]
                summaries.update(extra_summaries)
                ctxs = [_worker_context(state, summaries, cid) for cid in cids]
                out = sess["solver"].summarize_layer(ctxs)
                for cid, summary in zip(cids, out):
                    summaries[cid] = summary
                result = list(zip(cids, out))
            elif cmd == "dp_labels":
                skey, items = payload
                sess = dp_sessions[skey]
                state = tree_states[sess["tree_key"]]
                solver = sess["solver"]
                result = [
                    (
                        cid,
                        solver.assign_internal_labels(
                            _worker_context(state, sess["summaries"], cid),
                            out_label,
                            in_label,
                        ),
                    )
                    for cid, out_label, in_label in items
                ]
            elif cmd == "dp_close":
                dp_sessions.pop(payload, None)
            elif cmd == "ping":
                result = slot
            elif cmd == "stop":
                running = False
            else:
                raise ValueError(f"unknown pool command {cmd!r}")
            conn.send(("ok", result))
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except Exception:
                break
    for seg in segments.values():
        detach_view(seg)
    try:
        conn.close()
    except Exception:
        pass


# --------------------------------------------------------------------------- #
# Driver side
# --------------------------------------------------------------------------- #


class _Worker:
    """Driver handle on one pool worker: process + pipe + liveness checks."""

    def __init__(
        self, ctx: Any, slot: int, conn: Any, child_conn: Any, inherited: Sequence[Any]
    ) -> None:
        self.slot = slot
        self.conn = conn
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, slot, inherited),
            daemon=True,
            name=f"repro-exec-{slot}",
        )
        self.proc.start()
        child_conn.close()

    def send(self, cmd: str, payload: Any) -> None:
        try:
            self.conn.send((cmd, payload))
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise ExecBackendError(
                f"exec worker {self.slot} (pid {self.proc.pid}) is gone: {exc}"
            ) from exc

    def recv(self, timeout: float = _CALL_TIMEOUT) -> Any:
        deadline = time.monotonic() + timeout
        try:
            while not self.conn.poll(0.02):
                if not self.proc.is_alive():
                    raise ExecBackendError(
                        f"exec worker {self.slot} (pid {self.proc.pid}) died "
                        f"mid-superstep (exitcode {self.proc.exitcode})"
                    )
                if time.monotonic() > deadline:
                    raise ExecBackendError(
                        f"exec worker {self.slot} (pid {self.proc.pid}) did not "
                        f"answer within {timeout:.0f}s"
                    )
            status, result = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise ExecBackendError(
                f"exec worker {self.slot} (pid {self.proc.pid}) closed its pipe"
            ) from exc
        if status == "error":
            raise ExecBackendError(f"exec worker {self.slot} raised:\n{result}")
        return result

    def stop(self) -> None:
        try:
            self.conn.send(("stop", None))
        except Exception:
            pass
        self.proc.join(timeout=1.0)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.terminate()
            self.proc.join(timeout=1.0)
        try:
            self.conn.close()
        except Exception:
            pass


def _mp_context() -> Any:
    import multiprocessing as mp

    method = os.environ.get("REPRO_EXEC_START_METHOD")
    if method:
        return mp.get_context(method)
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return mp.get_context("spawn")


_UNSHIPPABLE_WARNED: set = set()


class ProcessBackend(ExecBackend):
    """The ``"process"`` execution backend (see module docstring)."""

    name = "process"

    _shared: Dict[int, "ProcessBackend"] = {}

    def __init__(self, workers: int) -> None:
        self.num_slots = max(1, int(workers))
        self._workers: List[_Worker] = []
        self._generation = 0
        #: Worker-side tree-state cache mirror: key -> None (ordered LRU).
        self._tree_mirror: "OrderedDict[Any, None]" = OrderedDict()
        self._live_tree_keys: set = set()
        self._session_ids = itertools.count()
        self._tree_tokens = itertools.count()

    @classmethod
    def shared(cls, workers: int) -> "ProcessBackend":
        backend = cls._shared.get(workers)
        if backend is None:
            backend = cls._shared[workers] = cls(workers)
        return backend

    # -- pool lifecycle ------------------------------------------------- #

    def _ensure_pool(self) -> List[_Worker]:
        if not self._workers:
            ctx = _mp_context()
            self._generation += 1
            self._tree_mirror.clear()
            self._live_tree_keys.clear()
            # All pipes are created before any fork so every child can close
            # the ends it inherited from its siblings (see _worker_main).
            pipes = [ctx.Pipe(duplex=True) for _ in range(self.num_slots)]
            # Spawned children inherit nothing; shipping the list would dup
            # the handles into them instead.
            fork = ctx.get_start_method() == "fork"
            inherited = [end for pair in pipes for end in pair] if fork else []
            self._workers = [
                _Worker(ctx, slot, conn, child_conn, inherited)
                for slot, (conn, child_conn) in enumerate(pipes)
            ]
        return self._workers

    def worker_pids(self) -> List[int]:
        """PIDs of the live pool (starts the pool if needed); for tests."""
        return [w.proc.pid for w in self._ensure_pool()]

    def _teardown(self) -> None:
        workers, self._workers = self._workers, []
        for w in workers:
            try:
                w.proc.terminate()
            except Exception:
                pass
        for w in workers:
            try:
                w.proc.join(timeout=1.0)
            except Exception:
                pass
            try:
                w.conn.close()
            except Exception:
                pass
        self._tree_mirror.clear()
        self._live_tree_keys.clear()

    def close(self) -> None:
        workers, self._workers = self._workers, []
        for w in workers:
            w.stop()
        self._tree_mirror.clear()
        self._live_tree_keys.clear()

    # -- calls ----------------------------------------------------------- #

    def _call_each(self, messages: Sequence[Optional[Tuple[str, Any]]]) -> List[Any]:
        """Send one message per worker (None = skip), then collect replies.

        Sends complete before any receive, so workers genuinely overlap; any
        failure tears the pool down before re-raising.
        """
        workers = self._ensure_pool()
        try:
            active: List[_Worker] = []
            for worker, message in zip(workers, messages):
                if message is None:
                    continue
                worker.send(message[0], message[1])
                active.append(worker)
            return [worker.recv() for worker in active]
        except ExecBackendError:
            self._teardown()
            raise

    def _call_all(self, cmd: str, payload: Any) -> List[Any]:
        return self._call_each([(cmd, payload)] * len(self._ensure_pool()))

    # -- array sessions --------------------------------------------------- #

    def array_session(
        self,
        arrays: Dict[str, np.ndarray],
        rows: int,
        num_machines: int,
        scratch: Optional[Dict[str, Tuple[Tuple[int, ...], Any]]] = None,
    ) -> ArraySession:
        if rows <= 0:
            return InlineArraySession(arrays, rows, scratch)
        return ProcessArraySession(self, arrays, rows, num_machines, scratch)

    # -- DP sessions ------------------------------------------------------ #

    def _solver_spec(self, solver: Any) -> Tuple[str, Any, Any]:
        from repro.dp.local_solver import FiniteStateClusterSolver

        if isinstance(solver, FiniteStateClusterSolver):
            return ("finite", solver.problem, solver.backend)
        return ("raw", solver, None)

    def _tree_key(self, engine_state: Dict[str, Any]) -> Any:
        hc = engine_state["clustering"]
        token = getattr(hc, "_exec_token", None)
        if token is None:
            token = next(self._tree_tokens)
            try:
                hc._exec_token = token
            except Exception:  # pragma: no cover - slotted clustering
                token = id(hc)
        epoch = getattr(hc, "_exec_payload_epoch", 0)
        return (self._generation, token, epoch)

    def _ship_tree_state(self, engine_state: Dict[str, Any]) -> Any:
        key = self._tree_key(engine_state)
        if key in self._tree_mirror:
            self._tree_mirror.move_to_end(key)
            return key
        while len(self._tree_mirror) >= _TREE_CACHE_SLOTS:
            stale = next(
                (k for k in self._tree_mirror if k not in self._live_tree_keys), None
            )
            if stale is None:  # pragma: no cover - all slots pinned
                break
            del self._tree_mirror[stale]
            self._call_all("tree_drop", stale)
        blob = pickle.dumps(
            {
                "clustering": engine_state["clustering"],
                "edge_kinds": engine_state["edge_kinds"],
                "aux_nodes": engine_state["aux_nodes"],
                "original_parent": engine_state["original_parent"],
            },
            protocol=_PICKLE_PROTO,
        )
        self._call_all("tree_state", (key, blob))
        self._tree_mirror[key] = None
        return key

    def dp_session(
        self, engine_state: Dict[str, Any], solver: Any
    ) -> Optional["ProcessDPSession"]:
        """Open a :class:`ProcessDPSession`, or ``None`` if unshippable.

        A solver/problem that cannot be pickled (e.g. defined in a local
        scope) degrades to inline layer execution with a one-time
        :class:`RuntimeWarning` per type — results are identical either way.
        """
        spec = self._solver_spec(solver)
        try:
            solver_blob = pickle.dumps(spec, protocol=_PICKLE_PROTO)
            self._ensure_pool()
            tree_key = self._ship_tree_state(engine_state)
        except ExecBackendError:
            raise
        except Exception as exc:
            tag = type(getattr(solver, "problem", solver)).__name__
            if tag not in _UNSHIPPABLE_WARNED:
                _UNSHIPPABLE_WARNED.add(tag)
                warnings.warn(
                    f"DP problem {tag} cannot be shipped to exec workers "
                    f"({exc!r}); running its layer batches inline",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None
        skey = next(self._session_ids)
        self._call_all("dp_open", (skey, tree_key, solver_blob))
        self._live_tree_keys.add(tree_key)
        return ProcessDPSession(self, skey, tree_key)


class ProcessArraySession(ArraySession):
    """Shared-memory array session over the worker pool."""

    def __init__(
        self,
        backend: ProcessBackend,
        arrays: Dict[str, np.ndarray],
        rows: int,
        num_machines: int,
        scratch: Optional[Dict[str, Tuple[Tuple[int, ...], Any]]] = None,
    ) -> None:
        self.backend = backend
        self.rows = rows
        self.registry = SharedArrayRegistry()
        self.arrays: Dict[str, np.ndarray] = {}
        self._attached = False
        workers = backend._ensure_pool()
        slots = len(workers)
        self.bounds = machine_group_bounds(rows, num_machines, slots)
        try:
            for name, arr in arrays.items():
                self.arrays[name] = self.registry.create(name, like=np.ascontiguousarray(arr))
            for name, (shape, dtype) in (scratch or {}).items():
                self.arrays[name] = self.registry.create(
                    name, shape=(slots,) + tuple(shape), dtype=dtype
                )
            backend._call_all("attach", self.registry.specs())
            self._attached = True
        except BaseException:
            self.close()
            raise

    def run(self, op: str, **extra: Any) -> None:
        self.backend._call_each(
            [("op", (op, lo, hi, extra)) for lo, hi in self.bounds]
        )

    def close(self) -> None:
        if self._attached:
            self._attached = False
            try:
                self.backend._call_all("detach", [s[0] for s in self.registry.specs()])
            except ExecBackendError:
                pass  # pool already torn down; unlink below still runs
        self.registry.destroy()


class ProcessDPSession:
    """Per-solve DP session: layer batches fanned out by cluster ownership.

    A cluster is owned by worker ``cid % slots`` for the whole solve, so the
    worker that summarised a cluster bottom-up also labels it top-down (its
    solver's trace memo is local).  Summaries a worker needs but does not
    own are shipped as deltas with the batch; the driver keeps the complete
    summary map, so the engine's word accounting is untouched.
    """

    def __init__(self, backend: ProcessBackend, skey: Any, tree_key: Any) -> None:
        self.backend = backend
        self.skey = skey
        self.tree_key = tree_key
        self._known: List[set] = [set() for _ in range(backend.num_slots)]
        self._closed = False

    def _owner(self, cid: int) -> int:
        return cid % self.backend.num_slots

    def solve_layer(self, clusters: Sequence[Any], summaries: Dict[int, Any]) -> List[Any]:
        """Summaries of one layer's clusters, aligned with ``clusters``."""
        slots = self.backend.num_slots
        batches: List[List[int]] = [[] for _ in range(slots)]
        for cluster in clusters:
            batches[self._owner(cluster.cid)].append(cluster.cid)
        by_cid = {c.cid: c for c in clusters}
        messages: List[Optional[Tuple[str, Any]]] = []
        for slot in range(slots):
            cids = batches[slot]
            if not cids:
                messages.append(None)
                continue
            known = self._known[slot]
            extra: Dict[int, Any] = {}
            for cid in cids:
                for element in by_cid[cid].elements:
                    if element[0] == "cluster" and element[1] not in known:
                        extra[element[1]] = summaries[element[1]]
            known.update(extra)
            known.update(cids)
            messages.append(("dp_solve", (self.skey, cids, extra)))
        replies = self.backend._call_each(messages)
        out: Dict[int, Any] = {}
        for reply in replies:
            for cid, summary in reply:
                out[cid] = summary
        return [out[c.cid] for c in clusters]

    def label_layer(self, items: Sequence[Tuple[Any, Any, Any]]) -> Dict[int, Dict]:
        """Internal labels of one layer: ``{cid: {element: label}}``.

        ``items`` is ``(cluster, out_label, in_label)`` per cluster; each is
        labelled on its owning worker, where the bottom-up traces live.
        """
        slots = self.backend.num_slots
        batches: List[List[Tuple[int, Any, Any]]] = [[] for _ in range(slots)]
        for cluster, out_label, in_label in items:
            batches[self._owner(cluster.cid)].append((cluster.cid, out_label, in_label))
        messages = [
            ("dp_labels", (self.skey, batch)) if batch else None for batch in batches
        ]
        replies = self.backend._call_each(messages)
        labels: Dict[int, Dict] = {}
        for reply in replies:
            for cid, cluster_labels in reply:
                labels[cid] = cluster_labels
        return labels

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.backend._live_tree_keys.discard(self.tree_key)
        if self.backend._workers:
            try:
                self.backend._call_all("dp_close", self.skey)
            except ExecBackendError:
                pass


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter exit
    for backend in list(ProcessBackend._shared.values()):
        backend.close()
