"""Execution-backend interface and the inline (in-driver) backend.

The MPC substrate separates *accounting* from *execution*:
:class:`~repro.mpc.simulator.MPCSimulator` prices rounds and words — it is
the model oracle — while an :class:`ExecBackend` decides where the machine
compute of the driver-evaluated supersteps actually runs.  Two backends:

* ``"inline"`` (:class:`InlineBackend`, the default) evaluates every op in
  the driver process, byte-for-byte today's behaviour;
* ``"process"`` (:class:`~repro.mpc.exec.pool.ProcessBackend`) fans the row
  slices of the flat superstep arrays and the per-layer DP batches out to a
  persistent ``multiprocessing`` worker pool over shared memory.

The contract both must satisfy: identical outputs, labels and
:class:`~repro.mpc.simulator.RoundStats` for every pipeline — the substrate
equivalence suite runs under both.

Two units of work exist:

* an **array session** (:meth:`ExecBackend.array_session`) holds the flat
  NumPy arrays of one treeops subroutine for the duration of its doubling
  loop and executes named ops from :data:`~repro.mpc.exec.ops.OPS` over the
  machine-group row partition;
* a **DP session** (:meth:`ExecBackend.dp_session`) pins one solver and one
  clustering for the duration of one engine solve and executes the per-layer
  summary/label batches.  Backends may return ``None`` to decline (the
  engine then runs the layer batches inline), which is also the graceful
  fallback when a problem cannot be shipped to workers.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.mpc.exec.ops import OPS

__all__ = [
    "ExecBackendError",
    "ExecWorkerFailure",
    "ExecWorkerRaised",
    "ArraySession",
    "InlineArraySession",
    "ExecBackend",
    "InlineBackend",
    "INLINE",
    "resolve_backend",
    "default_workers",
]


class ExecBackendError(RuntimeError):
    """A process-backend worker failed and the supervision ladder (retry
    within the pool → rebuild the pool → inline fallback) is exhausted or
    was invoked outside a supervised session."""


class ExecWorkerFailure(ExecBackendError):
    """A worker died, went silent past the heartbeat window, or exceeded the
    call deadline: the pipe protocol is undefined, so the pool is torn down
    before this propagates (a retry rebuilds it)."""

    def __init__(self, message: str, *, slot: int, kind: str) -> None:
        super().__init__(message)
        self.slot = slot
        #: ``"died"`` | ``"hung"`` | ``"timeout"``.
        self.kind = kind


class ExecWorkerRaised(ExecBackendError):
    """A worker raised a Python exception and reported its traceback.  The
    worker is alive and every pending reply was drained, so the pool stays
    intact — a retry re-dispatches on the same workers."""

    def __init__(self, message: str, *, slot: int) -> None:
        super().__init__(message)
        self.slot = slot
        self.kind = "error"


class ArraySession:
    """Handle on the arrays of one treeops subroutine invocation.

    Attributes
    ----------
    arrays:
        Logical name -> live NumPy array.  For the inline backend these are
        the caller's arrays; for the process backend they are shared-memory
        views that both the driver and the workers address.  The driver is
        free to read and mutate them between :meth:`run` calls (that is how
        copy-backs and reduce applications are expressed).
    """

    arrays: Dict[str, np.ndarray]

    def run(self, op: str, **extra: Any) -> None:
        """Execute one named op over the full row range (all machine groups)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release session resources (always safe to call, idempotent)."""
        raise NotImplementedError


class InlineArraySession(ArraySession):
    """Driver-evaluated array session: one slot covering every row."""

    def __init__(
        self,
        arrays: Dict[str, np.ndarray],
        rows: int,
        scratch: Optional[Dict[str, Tuple[Tuple[int, ...], Any]]] = None,
    ) -> None:
        self.arrays = dict(arrays)
        self.rows = rows
        for name, (shape, dtype) in (scratch or {}).items():
            self.arrays[name] = np.zeros((1,) + tuple(shape), dtype=dtype)

    def run(self, op: str, **extra: Any) -> None:
        OPS[op](self.arrays, 0, self.rows, 0, **extra)

    def close(self) -> None:
        pass


class ExecBackend:
    """Where driver-evaluated superstep compute runs (see module docstring)."""

    name: str = "abstract"

    def array_session(
        self,
        arrays: Dict[str, np.ndarray],
        rows: int,
        num_machines: int,
        scratch: Optional[Dict[str, Tuple[Tuple[int, ...], Any]]] = None,
        obs: Optional[Any] = None,
    ) -> ArraySession:
        """Open a session over ``arrays`` partitioned into machine groups.

        ``scratch`` maps extra array names to ``(shape, dtype)``; each is
        allocated with a leading per-slot axis (``(slots, *shape)``) for
        reduce-style partial results.  ``obs`` is the deployment's
        :class:`~repro.obs.ObsContext` (or ``None``); see :meth:`dp_session`.
        """
        raise NotImplementedError

    def dp_session(
        self, engine_state: Dict[str, Any], solver: Any, obs: Optional[Any] = None
    ) -> Optional[Any]:
        """Open a DP session for one engine solve, or ``None`` to decline.

        ``obs`` is the deployment's :class:`~repro.obs.ObsContext` (or
        ``None``): backends that distribute work attribute per-call latency
        to it and, when tracing, adopt the spans their workers ship back.
        """
        return None

    def close(self) -> None:
        """Shut the backend down (workers, segments). Idempotent."""


class InlineBackend(ExecBackend):
    """Everything runs in the driver process — the reference behaviour."""

    name = "inline"

    def array_session(
        self,
        arrays: Dict[str, np.ndarray],
        rows: int,
        num_machines: int,
        scratch: Optional[Dict[str, Tuple[Tuple[int, ...], Any]]] = None,
        obs: Optional[Any] = None,
    ) -> InlineArraySession:
        return InlineArraySession(arrays, rows, scratch)


#: Shared inline backend instance (stateless).
INLINE = InlineBackend()


def default_workers() -> int:
    """Default process-pool size: a small multiple of the visible cores."""
    return max(2, min(4, os.cpu_count() or 1))


_FALLBACK_WARNED = False


def resolve_backend(config: Any) -> ExecBackend:
    """The :class:`ExecBackend` selected by ``config.exec_backend``.

    ``"process"`` on a platform without working POSIX shared memory falls
    back to the inline backend with a :class:`RuntimeWarning` (once per
    process) instead of failing: execution placement is a performance
    choice, never a correctness requirement.
    """
    backend = getattr(config, "exec_backend", "inline")
    if backend != "process":
        return INLINE
    from repro.mpc.exec import shm

    if not shm.shm_available():
        global _FALLBACK_WARNED
        if not _FALLBACK_WARNED:
            _FALLBACK_WARNED = True
            warnings.warn(
                "exec_backend='process' requires multiprocessing.shared_memory, "
                "which is unavailable on this platform; falling back to the "
                "inline execution backend",
                RuntimeWarning,
                stacklevel=2,
            )
        return INLINE
    from repro.mpc.exec.pool import ProcessBackend

    workers = getattr(config, "exec_workers", None) or default_workers()
    return ProcessBackend.shared(
        workers,
        call_timeout=getattr(config, "exec_call_timeout", None),
        retries=getattr(config, "exec_retries", None),
        backoff=getattr(config, "exec_backoff", None),
        heartbeat=getattr(config, "exec_heartbeat", None),
        faults=getattr(config, "exec_faults", None),
    )


def machine_group_bounds(rows: int, num_machines: int, slots: int) -> List[Tuple[int, int]]:
    """Contiguous row ranges of each worker slot's machine group.

    Mirrors :meth:`MPCSimulator.scatter`'s even placement: ``per =
    ceil(rows / num_machines)`` records per machine, machines split into
    ``slots`` contiguous groups.  ``per * num_machines >= rows`` always, so
    the last group ends exactly at ``rows``.
    """
    per = max(1, -(-rows // max(1, num_machines)))
    bounds: List[Tuple[int, int]] = []
    for w in range(slots):
        m_lo = (w * num_machines) // slots
        m_hi = ((w + 1) * num_machines) // slots
        bounds.append((min(m_lo * per, rows), min(m_hi * per, rows)))
    return bounds
