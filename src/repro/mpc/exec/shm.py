"""Shared-memory part registry for the process execution backend.

The process backend ships :class:`~repro.mpc.darray.DistributedArray`-style
flat NumPy state to its workers as ``multiprocessing.shared_memory`` segments
instead of pickling: the driver creates one segment per logical array, the
workers attach zero-copy views, and both sides read/write the same pages.

Leak discipline is the whole point of this module.  Every segment created
here is tracked in a module-global table; :meth:`SharedArrayRegistry.destroy`
unlinks the segment the moment its session ends, and an ``atexit`` sweep
unlinks anything that survives (e.g. after a test failure mid-session).  The
test-suite asserts that :func:`leaked_segments` is empty after the run.

A subtlety worth recording: NumPy releases its buffer handle on the mapping
at array construction, so ``SharedMemory.close()`` typically succeeds — and
unmaps the pages — even while ndarray views are alive; dereferencing a view
after :meth:`SharedArrayRegistry.destroy` is a segfault, not an exception.
Sessions therefore copy results out *before* closing, and the registry still
treats a ``BufferError`` on close as benign for the cases where a buffer
export is genuinely held.
"""

from __future__ import annotations

import atexit
import os
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "SharedArrayRegistry",
    "attach_view",
    "detach_view",
    "leaked_segments",
    "shm_available",
    "segment_prefix",
]

#: Spec of one shared array: (logical name, shm name, shape, dtype string).
ArraySpec = Tuple[str, str, Tuple[int, ...], str]

# Segment names are namespaced per driver process so a leak check can scan
# /dev/shm for this process's segments without seeing other runs'.
_PREFIX = f"rex{os.getpid():x}_"

#: Driver-side segments that have been created but not yet unlinked.
_LIVE: Dict[str, shared_memory.SharedMemory] = {}

_COUNTER = 0


def segment_prefix() -> str:
    """The shm name prefix used by this driver process."""
    return _PREFIX


def _new_name() -> str:
    global _COUNTER
    _COUNTER += 1
    return f"{_PREFIX}{_COUNTER}"


def shm_available() -> bool:
    """Whether POSIX shared memory works on this platform (probed once)."""
    global _SHM_OK
    if _SHM_OK is None:
        try:
            seg = shared_memory.SharedMemory(create=True, size=8, name=_new_name())
            seg.close()
            seg.unlink()
            _SHM_OK = True
        except Exception:
            _SHM_OK = False
    return _SHM_OK


_SHM_OK = None


class SharedArrayRegistry:
    """Owns the shared-memory segments of one execution session.

    ``create`` allocates a segment sized for the given array (or shape) and
    returns a NumPy view backed by it; ``specs`` describes every segment so
    workers can attach; ``destroy`` unlinks everything.  Instances are
    cheap — one per array session.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._specs: List[ArraySpec] = []

    def create(
        self,
        logical: str,
        like: Optional[np.ndarray] = None,
        shape: Optional[Tuple[int, ...]] = None,
        dtype: Any = None,
    ) -> np.ndarray:
        """Allocate a segment and return its view; copy ``like`` in if given."""
        if like is not None:
            shape = like.shape
            dtype = like.dtype
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        seg = shared_memory.SharedMemory(create=True, size=nbytes, name=_new_name())
        self._segments[logical] = seg
        _LIVE[seg.name] = seg
        self._specs.append((logical, seg.name, tuple(shape), dtype.str))
        view = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        if like is not None:
            view[...] = like
        else:
            view.fill(0)
        # mpclint: disable-next-line=shm-view-escape -- registry contract: the registry owns segment lifetime; views die before destroy() by construction
        return view

    def specs(self) -> List[ArraySpec]:
        """Attachment specs for the workers."""
        return list(self._specs)

    def destroy(self) -> None:
        """Unlink every segment of this session (idempotent)."""
        for seg in self._segments.values():
            _unlink_segment(seg)
        self._segments.clear()
        self._specs.clear()


def _unlink_segment(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    except Exception:  # pragma: no cover - platform-specific unlink quirks
        pass
    try:
        seg.close()
    except BufferError:
        # NumPy views of the mapping are still alive; the mapping is freed
        # when they are collected.  The /dev/shm entry is already gone.
        pass
    _LIVE.pop(seg.name, None)


def attach_view(
    shm_name: str, shape: Tuple[int, ...], dtype_str: str
) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Worker-side attach: return ``(segment, view)`` for a driver segment.

    The segment is opened without resource-tracker registration (Python's
    tracker would otherwise try to unlink the driver's segment again when the
    worker exits and print spurious leak warnings).
    """
    try:
        seg = shared_memory.SharedMemory(name=shm_name, track=False)
    except TypeError:
        # Python < 3.13 has no track flag: attaching re-registers the name
        # with the (shared) resource tracker.  That is harmless here — the
        # tracker's cache is a set, every attach completes before the driver
        # unlinks, and the driver's unlink unregisters the name once.
        seg = shared_memory.SharedMemory(name=shm_name)
    view = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str), buffer=seg.buf)
    # mpclint: disable-next-line=shm-view-escape -- attach contract: the caller holds (seg, view) together and detaches via detach_view
    return seg, view


def detach_view(seg: shared_memory.SharedMemory) -> None:
    """Worker-side detach (unlink stays with the driver)."""
    try:
        seg.close()
    except BufferError:  # pragma: no cover - view still referenced
        pass


def leaked_segments() -> List[str]:
    """Shm segments created by this process and not yet unlinked.

    Combines the in-process live table with a ``/dev/shm`` scan for this
    process's name prefix (when the platform exposes one), so the post-suite
    leak assertion catches both lost registry entries and lost unlinks.
    """
    names = set(_LIVE)
    try:
        for entry in os.listdir("/dev/shm"):
            if entry.startswith(_PREFIX):
                names.add(entry)
    except OSError:  # pragma: no cover - non-Linux
        pass
    return sorted(names)


@atexit.register
def _sweep() -> None:  # pragma: no cover - exercised at interpreter exit
    for seg in list(_LIVE.values()):
        _unlink_segment(seg)
