"""Deterministic fault injection and supervision health for the exec layer.

Two pieces live here, both stdlib-only (workers may import this module):

* :class:`FaultPlan` — a replayable script of failures to inject into the
  process execution backend.  The *driver* owns the plan: it counts the
  supervised calls it sends to each worker slot and, when a call matches a
  planned coordinate, ships a fault directive with that one message (the
  worker then kills itself, hangs, delays, drops its reply, or raises).
  Driver-side injection is what makes plans deterministic across pool
  rebuilds — a respawned worker carries no counter to reset — and what
  makes every entry fire exactly once.  Plans parse from a compact spec
  grammar (env ``REPRO_EXEC_FAULTS`` / ``MPCConfig.exec_faults``) and
  serialize back to it, so a failing chaos run is reproducible from one
  string.

* :class:`ExecHealth` — the structured report of the supervision ladder:
  every retry, pool rebuild and inline fallback is counted and recorded as
  an event, so a solve that survived faults can state exactly which rungs
  it took (surfaced via ``PreparedTree.exec_health()`` and the chaos CI
  artifacts).

Spec grammar (entries joined with ``;``)::

    kind@w<slot>:<call>[:<cmd>][:key=value...]   worker fault
    kind@*:<call>[:<cmd>][:key=value...]         any worker (first to match)
    kind@<site>:<ordinal>                        driver-side site fault

``kind`` is one of ``kill`` (SIGKILL self), ``hang`` (go silent: suppress
heartbeats and sleep), ``delay`` (sleep but keep heartbeating — must *not*
be killed), ``drop`` (swallow the reply and go silent) or ``raise``/
``poison`` (raise :class:`InjectedFault` while handling the command).
``call`` is the 0-based ordinal of supervised messages the driver has sent
to that slot; ``cmd`` optionally restricts the match to one protocol
command (``op``, ``attach``, ``dp_solve``, ...), so ``raise@*:0:attach``
is a shared-memory attach failure and ``poison@*:2:dp_solve`` a poisoned
DP batch.  Site faults fire in driver-side code that calls
:meth:`FaultPlan.check_site` (the incremental update path uses the
``update-layer`` site to poison an update batch mid-pass).
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["InjectedFault", "FaultSpec", "FaultPlan", "ExecHealth"]

#: Worker-side fault kinds a directive may carry.
FAULT_KINDS = ("kill", "hang", "delay", "drop", "raise")

#: Accepted spelling aliases in specs.
_KIND_ALIASES = {"poison": "raise"}

#: Seconds slept by hang/delay directives unless the spec overrides it.
_DEFAULT_DURATION = 20.0


class InjectedFault(RuntimeError):
    """Raised by an injected ``raise``/``poison`` fault (never by real code)."""


@dataclass
class FaultSpec:
    """One planned fault at a (worker | site, call) coordinate."""

    kind: str
    call: int
    worker: Optional[int] = None  # None = any worker (worker faults only)
    cmd: Optional[str] = None
    site: Optional[str] = None  # set for driver-side site faults
    duration: float = _DEFAULT_DURATION

    def __post_init__(self) -> None:
        self.kind = _KIND_ALIASES.get(self.kind, self.kind)
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS} (or 'poison'), got {self.kind!r}"
            )
        if self.call < 0:
            raise ValueError(f"fault call ordinal must be >= 0, got {self.call}")
        if self.site is not None and self.kind != "raise":
            raise ValueError(
                f"site faults can only raise; got kind {self.kind!r} at site {self.site!r}"
            )

    def directive(self) -> Dict[str, Any]:
        """The payload shipped to the worker alongside the matched message."""
        return {"kind": self.kind, "duration": self.duration}

    def to_spec(self) -> str:
        if self.site is not None:
            return f"{self.kind}@{self.site}:{self.call}"
        where = "*" if self.worker is None else f"w{self.worker}"
        parts = [f"{self.kind}@{where}:{self.call}"]
        if self.cmd is not None:
            parts.append(self.cmd)
        if self.kind in ("hang", "delay") and self.duration != _DEFAULT_DURATION:
            parts.append(f"duration={self.duration:g}")
        return ":".join(parts)


def _parse_entry(entry: str) -> FaultSpec:
    head, _, rest = entry.partition("@")
    kind = head.strip()
    if not rest:
        raise ValueError(f"fault entry {entry!r} is missing '@where:call'")
    tokens = [t.strip() for t in rest.split(":")]
    if len(tokens) < 2:
        raise ValueError(f"fault entry {entry!r} is missing its call ordinal")
    where, call_tok = tokens[0], tokens[1]
    opts: Dict[str, str] = {}
    cmd: Optional[str] = None
    for tok in tokens[2:]:
        if "=" in tok:
            key, _, value = tok.partition("=")
            opts[key.strip()] = value.strip()
        elif cmd is None:
            cmd = tok
        else:
            raise ValueError(f"fault entry {entry!r} has two command tokens")
    try:
        call = int(call_tok)
    except ValueError as exc:
        raise ValueError(f"fault entry {entry!r}: call must be an integer") from exc
    duration = float(opts.pop("duration", _DEFAULT_DURATION))
    if opts:
        raise ValueError(f"fault entry {entry!r}: unknown options {sorted(opts)}")
    if where == "*":
        return FaultSpec(kind=kind, call=call, worker=None, cmd=cmd, duration=duration)
    if where.startswith("w") and where[1:].isdigit():
        return FaultSpec(kind=kind, call=call, worker=int(where[1:]), cmd=cmd, duration=duration)
    if cmd is not None:
        raise ValueError(f"fault entry {entry!r}: site faults take no command token")
    return FaultSpec(kind=kind, call=call, site=where, duration=duration)


class FaultPlan:
    """A consumable, replayable list of :class:`FaultSpec` entries.

    Matching mutates the plan (each entry fires once); :meth:`to_spec`
    serializes the *remaining* entries, :attr:`spec` keeps the original
    string for replay and pool-cache keying.  Thread-safe: the driver is
    single-threaded today, but a lock keeps the consume-once guarantee
    independent of that.
    """

    def __init__(self, entries: List[FaultSpec], spec: Optional[str] = None) -> None:
        self._entries = list(entries)
        self._lock = threading.Lock()
        self._site_calls: Dict[str, int] = {}
        self.spec = spec if spec is not None else ";".join(e.to_spec() for e in entries)

    # -- construction ----------------------------------------------------- #

    @classmethod
    def parse(cls, spec: str) -> Optional["FaultPlan"]:
        """Parse a spec string; empty/whitespace means no plan (``None``)."""
        entries = [_parse_entry(e) for e in spec.split(";") if e.strip()]
        if not entries:
            return None
        return cls(entries, spec=spec)

    @classmethod
    def seeded(
        cls,
        seed: int,
        count: int = 2,
        kinds: Tuple[str, ...] = ("kill", "hang", "raise"),
        max_call: int = 8,
    ) -> "FaultPlan":
        """A deterministic random plan: ``count`` faults in the first
        ``max_call`` supervised calls of any worker.  Same seed, same plan —
        the chaos CI matrix and the replay test both lean on this."""
        rng = random.Random(seed)
        entries = [
            FaultSpec(kind=rng.choice(kinds), call=rng.randrange(max_call), duration=20.0)
            for _ in range(count)
        ]
        return cls(entries)

    # -- consumption ------------------------------------------------------ #

    def take(self, slot: int, call: int, cmd: str) -> Optional[Dict[str, Any]]:
        """Directive for the message ``(slot, call, cmd)``, consuming its entry."""
        with self._lock:
            for i, e in enumerate(self._entries):
                if e.site is not None:
                    continue
                if e.worker is not None and e.worker != slot:
                    continue
                if e.call != call or (e.cmd is not None and e.cmd != cmd):
                    continue
                del self._entries[i]
                return e.directive()
        return None

    def check_site(self, site: str) -> None:
        """Fire-and-consume hook for driver-side sites.

        Each call advances the site's ordinal; a matching entry raises
        :class:`InjectedFault` exactly once.  No-op without a match, so the
        hook is safe to leave on hot paths.
        """
        with self._lock:
            ordinal = self._site_calls.get(site, 0)
            self._site_calls[site] = ordinal + 1
            for i, e in enumerate(self._entries):
                if e.site == site and e.call == ordinal:
                    del self._entries[i]
                    raise InjectedFault(
                        f"injected fault at site {site!r} ordinal {ordinal}"
                    )

    # -- introspection ---------------------------------------------------- #

    def remaining(self) -> int:
        with self._lock:
            return len(self._entries)

    def to_spec(self) -> str:
        """Spec string of the entries not yet fired."""
        with self._lock:
            return ";".join(e.to_spec() for e in self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.to_spec()!r})"


@dataclass
class ExecHealth:
    """Counters and event log of the supervision ladder (one per backend).

    ``events`` records every transition the ladder took, in order: worker
    failures (with their classified kind), retries, rebuilds and inline
    fallbacks.  The chaos suite asserts exact counter values; the CI chaos
    job uploads :meth:`as_dict` as a JSON artifact.
    """

    retries: int = 0
    rebuilds: int = 0
    inline_fallbacks: int = 0
    worker_deaths: int = 0
    worker_hangs: int = 0
    worker_timeouts: int = 0
    worker_errors: int = 0
    events: List[Dict[str, Any]] = field(default_factory=list)

    def record_failure(self, what: str, kind: str, slot: Optional[int], attempt: int,
                       detail: str) -> None:
        if kind == "died":
            self.worker_deaths += 1
        elif kind == "hung":
            self.worker_hangs += 1
        elif kind == "timeout":
            self.worker_timeouts += 1
        else:
            self.worker_errors += 1
        self.events.append(
            {
                "event": "failure",
                "what": what,
                "kind": kind,
                "slot": slot,
                "attempt": attempt,
                "detail": detail[:400],
            }
        )

    def record_retry(self, what: str, attempt: int) -> None:
        self.retries += 1
        self.events.append({"event": "retry", "what": what, "attempt": attempt})

    def record_rebuild(self, what: str) -> None:
        self.rebuilds += 1
        self.events.append({"event": "rebuild", "what": what})

    def record_inline_fallback(self, what: str) -> None:
        self.inline_fallbacks += 1
        self.events.append({"event": "inline-fallback", "what": what})

    def as_dict(self) -> Dict[str, Any]:
        return {
            "retries": self.retries,
            "rebuilds": self.rebuilds,
            "inline_fallbacks": self.inline_fallbacks,
            "worker_deaths": self.worker_deaths,
            "worker_hangs": self.worker_hangs,
            "worker_timeouts": self.worker_timeouts,
            "worker_errors": self.worker_errors,
            "events": [dict(e) for e in self.events],
        }

    def write_json(self, path: str, exclusive: bool = False) -> None:
        """Dump the report as JSON; ``exclusive`` refuses to overwrite.

        With ``exclusive=True`` the file is opened with ``"x"`` so an
        existing report (a previous process whose pid was reused, a
        concurrent pipeline sharing the dump directory) raises
        :class:`FileExistsError` instead of being silently clobbered.
        """
        with open(path, "x" if exclusive else "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
