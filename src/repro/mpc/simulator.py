"""Round-accounted MPC simulator.

The simulator owns a fixed set of :class:`~repro.mpc.machine.Machine` objects
and executes *supersteps*: in a superstep every machine runs a local compute
function over its store and inbox and emits messages addressed to other
machines; the simulator then delivers all messages, increments the round
counter and records communication statistics.

Two accounting channels exist:

* **Measured rounds** — every call to :meth:`MPCSimulator.superstep` counts as
  one communication round, and the words sent/received per machine are
  measured against the bandwidth cap.
* **Charged rounds** — some orchestration steps of the reproduction (for
  example the per-layer data reorganisation of the DP engine, Section 5 of
  the paper) are executed by the driver but correspond to a constant number
  of sort/route rounds in the model; they are charged explicitly via
  :meth:`MPCSimulator.charge_rounds` with a label, so benchmarks can report
  measured and charged rounds separately.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from repro.mpc.config import MPCConfig
from repro.mpc.machine import Machine
from repro.mpc.words import record_sizer, scalar_sizer
from repro.obs import clock
from repro.obs.context import ObsContext

__all__ = ["MPCSimulator", "RoundStats", "CapacityViolation"]


class CapacityViolation(RuntimeError):
    """Raised in strict mode when memory or bandwidth caps are exceeded."""


@dataclass
class RoundStats:
    """Aggregate statistics of a simulation run."""

    rounds: int = 0
    charged_rounds: int = 0
    total_messages: int = 0
    total_words_sent: int = 0
    charged_words: int = 0
    peak_machine_words: int = 0
    peak_round_send_words: int = 0
    peak_round_recv_words: int = 0
    memory_violations: int = 0
    bandwidth_violations: int = 0
    charged_by_label: Dict[str, int] = field(default_factory=dict)
    rounds_by_label: Dict[str, int] = field(default_factory=dict)
    charged_words_by_label: Dict[str, int] = field(default_factory=dict)

    @property
    def total_rounds(self) -> int:
        """Measured plus charged rounds."""
        return self.rounds + self.charged_rounds

    def snapshot(self) -> "RoundStats":
        """Return a copy of the current statistics."""
        return RoundStats(
            rounds=self.rounds,
            charged_rounds=self.charged_rounds,
            total_messages=self.total_messages,
            total_words_sent=self.total_words_sent,
            charged_words=self.charged_words,
            peak_machine_words=self.peak_machine_words,
            peak_round_send_words=self.peak_round_send_words,
            peak_round_recv_words=self.peak_round_recv_words,
            memory_violations=self.memory_violations,
            bandwidth_violations=self.bandwidth_violations,
            charged_by_label=dict(self.charged_by_label),
            rounds_by_label=dict(self.rounds_by_label),
            charged_words_by_label=dict(self.charged_words_by_label),
        )

    def diff(self, earlier: "RoundStats") -> "RoundStats":
        """Statistics accumulated since ``earlier`` (a snapshot)."""

        def label_diff(now: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
            out = {k: v - before.get(k, 0) for k, v in now.items()}
            return {k: v for k, v in out.items() if v}

        d = RoundStats(
            rounds=self.rounds - earlier.rounds,
            charged_rounds=self.charged_rounds - earlier.charged_rounds,
            total_messages=self.total_messages - earlier.total_messages,
            total_words_sent=self.total_words_sent - earlier.total_words_sent,
            charged_words=self.charged_words - earlier.charged_words,
            peak_machine_words=self.peak_machine_words,
            peak_round_send_words=self.peak_round_send_words,
            peak_round_recv_words=self.peak_round_recv_words,
            memory_violations=self.memory_violations - earlier.memory_violations,
            bandwidth_violations=self.bandwidth_violations - earlier.bandwidth_violations,
            charged_by_label=label_diff(self.charged_by_label, earlier.charged_by_label),
            rounds_by_label=label_diff(self.rounds_by_label, earlier.rounds_by_label),
            charged_words_by_label=label_diff(
                self.charged_words_by_label, earlier.charged_words_by_label
            ),
        )
        return d


# A compute function receives the machine and returns an iterable of
# (destination machine id, message) pairs.
ComputeFn = Callable[[Machine], Iterable[Tuple[int, Any]]]


class MPCSimulator:
    """Simulated MPC deployment: machines + superstep execution + accounting."""

    def __init__(self, config: MPCConfig):
        self.config = config
        #: Per-object / per-iterable word sizers selected by config.accounting.
        self.word_size = scalar_sizer(config.accounting)
        self.record_words = record_sizer(config.accounting)
        self.machines: List[Machine] = [
            Machine(mid=i, capacity=config.machine_capacity, sizer=self.record_words)
            for i in range(config.num_machines)
        ]
        self.stats = RoundStats()
        #: Per-run observability context (see :mod:`repro.obs`): the shared
        #: inert singleton when ``config.obs == "off"``, so every hook below
        #: reduces to one attribute check.  The timeline hooks sit at the
        #: four accrual points (superstep / tick_rounds / charge_rounds /
        #: charge_words) — the *only* places RoundStats moves — so the
        #: recorded events sum back to RoundStats bit-identically.
        self.obs = ObsContext.for_config(config)
        #: Words received per machine in the most recent superstep; consumers
        #: that take ownership of the delivered messages (darray routing) use
        #: it to carry the already-priced totals forward without a re-walk.
        self.last_recv_words: Dict[int, int] = {}
        self._executor = None

    @property
    def executor(self):
        """The execution backend selected by ``config.exec_backend`` (lazy).

        Execution placement (inline vs. the shared process pool, see
        :mod:`repro.mpc.exec`) is orthogonal to accounting: whichever
        backend evaluates a superstep's compute, rounds and words are
        charged here, and both backends are bit-identical in outputs and
        statistics.
        """
        if self._executor is None:
            from repro.mpc.exec import resolve_backend

            self._executor = resolve_backend(self.config)
        return self._executor

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def machine_capacity(self) -> int:
        return self.config.machine_capacity

    def machine(self, mid: int) -> Machine:
        return self.machines[mid]

    # ------------------------------------------------------------------ #
    # Data placement
    # ------------------------------------------------------------------ #

    def scatter(  # mpclint: disable=uncharged-communication -- initial placement is part of the MPC input specification and costs no rounds
        self, records: Sequence[Any]
    ) -> None:
        """Distribute ``records`` evenly over the machines (initial placement).

        Initial data placement is part of the input specification in the MPC
        model and does not cost rounds.
        """
        m = self.num_machines
        chunks: List[List[Any]] = [[] for _ in range(m)]
        if records:
            per = max(1, (len(records) + m - 1) // m)
            for i, rec in enumerate(records):
                chunks[min(i // per, m - 1)].append(rec)
        for machine, chunk in zip(self.machines, chunks):
            machine.replace_store(chunk)
        self._record_memory()

    def gather(  # mpclint: disable=uncharged-communication -- driver-side output inspection, not an MPC operation (a deployment would write to a DFS)
        self,
    ) -> List[Any]:
        """Collect all records to the driver (test/benchmark convenience).

        This is *not* an MPC operation and costs no rounds; it is only used by
        the driver to inspect results, mirroring how a real deployment would
        write its output to a distributed file system.
        """
        out: List[Any] = []
        for machine in self.machines:
            out.extend(machine.store)
        return out

    # ------------------------------------------------------------------ #
    # Superstep execution
    # ------------------------------------------------------------------ #

    def superstep(self, compute: ComputeFn, label: str = "superstep") -> None:
        """Execute one communication round.

        Every machine runs ``compute(machine)``; the returned messages are
        delivered into the destination machines' inboxes, which become
        visible at the start of the *next* superstep.
        """
        obs = self.obs
        if obs.tracing:
            t_round = clock.now()
            words_before = self.stats.total_words_sent
        outgoing: Dict[int, List[Any]] = defaultdict(list)
        send_words: Dict[int, int] = defaultdict(int)
        recv_words: Dict[int, int] = defaultdict(int)
        sizer = self.word_size

        for machine in self.machines:
            emitted = compute(machine) or []
            for dest, message in emitted:
                if not (0 <= dest < self.num_machines):
                    raise ValueError(
                        f"machine {machine.mid} addressed invalid machine {dest}"
                    )
                outgoing[dest].append(message)
                # Each message is priced once; the receive-side total is the
                # sum of the same sizes (identical objects, deterministic
                # sizer), so no second walk is needed on delivery.
                w = sizer(message)
                send_words[machine.mid] += w
                recv_words[dest] += w
                self.stats.total_messages += 1
                self.stats.total_words_sent += w

        # Deliver messages; bandwidth was accounted per message above.
        for machine in self.machines:
            machine.clear_inbox()
        for dest, msgs in outgoing.items():
            self.machines[dest].receive(msgs)
        self.last_recv_words = dict(recv_words)

        max_send = max(send_words.values(), default=0)
        max_recv = max(recv_words.values(), default=0)
        self.stats.peak_round_send_words = max(self.stats.peak_round_send_words, max_send)
        self.stats.peak_round_recv_words = max(self.stats.peak_round_recv_words, max_recv)

        cap = self.machine_capacity
        if max_send > cap or max_recv > cap:
            self.stats.bandwidth_violations += 1
            if self.config.strict_bandwidth:
                raise CapacityViolation(
                    f"bandwidth cap {cap} exceeded in round {self.stats.rounds} "
                    f"(send {max_send}, recv {max_recv})"
                )

        self.stats.rounds += 1
        self.stats.rounds_by_label[label] = self.stats.rounds_by_label.get(label, 0) + 1
        self._record_memory()
        if obs.tracing:
            obs.round_event(
                "superstep",
                label,
                rounds=1,
                words=self.stats.total_words_sent - words_before,
                wall=clock.now() - t_round,
            )

    def _record_memory(self) -> None:
        peak = max((m.load_words() for m in self.machines), default=0)
        self.stats.peak_machine_words = max(self.stats.peak_machine_words, peak)
        if peak > self.machine_capacity:
            self.stats.memory_violations += 1
            if self.config.strict_memory:
                raise CapacityViolation(
                    f"memory cap {self.machine_capacity} exceeded (peak {peak})"
                )

    def observe_loads(self, loads_words: Sequence[int]) -> None:
        """Record per-machine memory loads held outside ``machine.store``.

        :class:`~repro.mpc.darray.DistributedArray` keeps its partitions in
        its own structure for convenience; it reports the per-machine word
        counts here so memory accounting covers them as well.
        """
        peak = max(loads_words, default=0)
        self.stats.peak_machine_words = max(self.stats.peak_machine_words, peak)
        if peak > self.machine_capacity:
            self.stats.memory_violations += 1
            if self.config.strict_memory:
                raise CapacityViolation(
                    f"memory cap {self.machine_capacity} exceeded (peak {peak})"
                )

    def tick_rounds(self, k: int, label: str = "superstep") -> None:
        """Count ``k`` *measured* communication rounds evaluated by the driver.

        Semantically these are genuine supersteps of the model — they advance
        the round counter and the per-label round counts exactly like
        :meth:`superstep` — but the local computation and the O(1)-word
        per-machine traffic they carry are evaluated on the driver instead of
        being routed through the machines.  Two users:

        * the array-backed tree subroutines
          (:mod:`repro.mpc.treeops_array`), which compute bit-identical
          outputs to the record-level path and tick the identical round/label
          sequence, and
        * the short-circuited convergence convergecasts of the record-level
          doubling loops, where the driver evaluates the "any machine still
          active?" predicate directly but the one-round convergecast the
          model needs for the machines to agree on termination is still
          counted here.

        No messages flow, so message/word statistics are unaffected; only
        round counts move.
        """
        if k < 0:
            raise ValueError("cannot tick a negative number of rounds")
        self.stats.rounds += k
        if k:
            self.stats.rounds_by_label[label] = self.stats.rounds_by_label.get(label, 0) + k
            if self.obs.tracing:
                self.obs.round_event("tick", label, rounds=k)

    # ------------------------------------------------------------------ #
    # Charged rounds
    # ------------------------------------------------------------------ #

    def charge_rounds(self, k: int, label: str = "charged") -> None:
        """Charge ``k`` communication rounds performed by the driver.

        Used for orchestration steps whose data movement is a constant number
        of sorts/routes in the model but which the reproduction executes on
        the driver for clarity (see module docstring).
        """
        if k < 0:
            raise ValueError("cannot charge a negative number of rounds")
        self.stats.charged_rounds += k
        self.stats.charged_by_label[label] = self.stats.charged_by_label.get(label, 0) + k
        if self.obs.tracing:
            self.obs.round_event("charge", label, rounds=k)

    def charge_words(self, words: int, label: str = "charged") -> None:
        """Charge ``words`` machine words of driver-evaluated communication.

        The companion of :meth:`charge_rounds` for data volume: orchestration
        steps executed on the driver (the DP engine's per-layer summary and
        label routing, the incremental update path's partial re-solves)
        declare here how many words the corresponding sort/route rounds would
        move.  Keeping the channel separate from the *measured*
        ``total_words_sent`` lets benchmarks compare e.g. a full solve's
        charged volume against an incremental update's without the two
        polluting each other — and without pretending driver-evaluated
        traffic went over the simulated wire.
        """
        if words < 0:
            raise ValueError("cannot charge a negative number of words")
        if words:
            self.stats.charged_words += words
            self.stats.charged_words_by_label[label] = (
                self.stats.charged_words_by_label.get(label, 0) + words
            )
            if self.obs.tracing:
                self.obs.round_event("charge-words", label, words=words)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def broadcast_to_all(self, small_value: Any, label: str = "broadcast") -> None:
        """Broadcast a small value from machine 0 to every machine (1 round).

        The value is appended to every machine's inbox.  The value must be
        small (O(machine capacity) words in total across all recipients is
        *not* required by the model for broadcast trees; we charge a single
        round, matching the paper's use of O(1)-round broadcast of O(1)-word
        summaries).
        """

        def compute(machine: Machine):
            if machine.mid == 0:
                return [(dest, small_value) for dest in range(self.num_machines)]
            return []

        self.superstep(compute, label=label)

    def snapshot(self) -> RoundStats:
        return self.stats.snapshot()

    def rounds_since(self, snap: RoundStats) -> int:
        return self.stats.total_rounds - snap.total_rounds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MPCSimulator(machines={self.num_machines}, "
            f"capacity={self.machine_capacity}, rounds={self.stats.rounds})"
        )
