"""Convenience wrappers around the distributed-array primitives.

The paper (Section 2) relies on two classical O(1)-round deterministic MPC
primitives: sorting an array of ``n`` elements and computing prefix sums.
These wrappers expose them with a plain-function interface used by the
representation-normalisation code and by tests.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from repro.mpc.darray import DistributedArray
from repro.mpc.simulator import MPCSimulator

__all__ = [
    "mpc_sort",
    "mpc_prefix_sums",
    "mpc_count",
    "mpc_max",
    "mpc_min",
]


def mpc_sort(
    sim: MPCSimulator, records: Sequence[Any], key: Callable[[Any], Any]
) -> List[Any]:
    """Sort ``records`` with the distributed sample sort and return them."""
    arr = DistributedArray.from_records(sim, list(records))
    return arr.sort_by(key).collect()


def mpc_prefix_sums(
    sim: MPCSimulator, records: Sequence[Any], value: Callable[[Any], float]
) -> List[Tuple[Any, float]]:
    """Exclusive prefix sums over ``records`` in their given order."""
    arr = DistributedArray.from_records(sim, list(records))
    return arr.prefix_sum(value).collect()


def mpc_count(sim: MPCSimulator, records: Sequence[Any]) -> int:
    """Count records with a one-round convergecast."""
    arr = DistributedArray.from_records(sim, list(records))
    return arr.count()


def mpc_max(sim: MPCSimulator, records: Sequence[Any], value: Callable[[Any], float]) -> float:
    """Distributed maximum of ``value`` over the records."""
    arr = DistributedArray.from_records(sim, list(records))
    return arr.reduce(value, lambda a, b: a if a >= b else b, float("-inf"))


def mpc_min(sim: MPCSimulator, records: Sequence[Any], value: Callable[[Any], float]) -> float:
    """Distributed minimum of ``value`` over the records."""
    arr = DistributedArray.from_records(sim, list(records))
    return arr.reduce(value, lambda a, b: a if a <= b else b, float("inf"))
