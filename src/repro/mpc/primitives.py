"""Convenience wrappers around the distributed-array primitives.

The paper (Section 2) relies on two classical O(1)-round deterministic MPC
primitives: sorting an array of ``n`` elements and computing prefix sums.
These wrappers expose them with a plain-function interface used by the
representation-normalisation code and by tests.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Sequence, Tuple

from repro.mpc.darray import DistributedArray
from repro.mpc.simulator import MPCSimulator

__all__ = [
    "mpc_sort",
    "mpc_prefix_sums",
    "mpc_count",
    "mpc_max",
    "mpc_min",
]


def mpc_sort(
    sim: MPCSimulator, records: Sequence[Any], key: Callable[[Any], Any]
) -> List[Any]:
    """Sort ``records`` with the distributed sample sort and return them."""
    arr = DistributedArray.from_records(sim, list(records))
    return arr.sort_by(key).collect()


def mpc_prefix_sums(
    sim: MPCSimulator, records: Sequence[Any], value: Callable[[Any], float]
) -> List[Tuple[Any, float]]:
    """Exclusive prefix sums over ``records`` in their given order."""
    arr = DistributedArray.from_records(sim, list(records))
    return arr.prefix_sum(value).collect()


def mpc_count(sim: MPCSimulator, records: Sequence[Any]) -> int:
    """Count records with a one-round convergecast."""
    arr = DistributedArray.from_records(sim, list(records))
    return arr.count()


def _checked_values(
    records: Sequence[Any], value: Callable[[Any], float], nan: str, op: str
) -> List[float]:
    """Extract and validate the fold inputs of :func:`mpc_min`/:func:`mpc_max`.

    The extremum folds compare with ``<=`` / ``>=`` against the ``±inf``
    identities, and every comparison against NaN is false — a NaN record
    would therefore poison the fold in an order-dependent way (whatever was
    accumulated so far survives or is replaced depending on the operand
    side).  NaNs are handled *before* the fold instead: rejected
    (``nan="raise"``, the default) or dropped (``nan="skip"``).
    """
    if nan not in ("raise", "skip"):
        raise ValueError(f"{op}: nan must be 'raise' or 'skip', got {nan!r}")
    vals: List[float] = []
    for r in records:
        x = float(value(r))
        if math.isnan(x):
            if nan == "raise":
                raise ValueError(f"{op}: value of record {r!r} is NaN")
            continue
        vals.append(x)
    if not vals:
        reason = "all records were NaN" if len(records) else "empty record set"
        raise ValueError(f"{op}: no values to reduce ({reason})")
    return vals


def mpc_max(
    sim: MPCSimulator,
    records: Sequence[Any],
    value: Callable[[Any], float],
    nan: str = "raise",
) -> float:
    """Distributed maximum of ``value`` over the records.

    ``nan`` selects the NaN policy: ``"raise"`` (default) rejects NaN
    values, ``"skip"`` ignores their records.  Empty record sets — and
    all-NaN sets under ``"skip"`` — raise :class:`ValueError` instead of
    silently returning the ``-inf`` fold identity.
    """
    vals = _checked_values(records, value, nan, "mpc_max")
    arr = DistributedArray.from_records(sim, vals)
    return arr.reduce(lambda x: x, lambda a, b: a if a >= b else b, float("-inf"))


def mpc_min(
    sim: MPCSimulator,
    records: Sequence[Any],
    value: Callable[[Any], float],
    nan: str = "raise",
) -> float:
    """Distributed minimum of ``value`` over the records.

    Same NaN/empty policy as :func:`mpc_max`: NaNs raise by default or are
    skipped with ``nan="skip"``; an effectively empty reduction raises
    instead of returning the ``+inf`` fold identity.
    """
    vals = _checked_values(records, value, nan, "mpc_min")
    arr = DistributedArray.from_records(sim, vals)
    return arr.reduce(lambda x: x, lambda a, b: a if a <= b else b, float("inf"))
