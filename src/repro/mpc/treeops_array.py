"""Vectorized integer-array backend for the distributed tree subroutines.

This module implements the three [SODA'23]-style subroutines of
:mod:`repro.mpc.treeops` — depth computation, capped subtree gathering and
degree-2 path positions — on flat NumPy integer arrays instead of per-record
Python objects shipped through the simulated machines.

**Fidelity contract.**  For every input, each function here produces

* the *bit-identical output* of the record-level reference path, and
* the *bit-identical round/label accounting*: the same number of measured
  rounds under the same labels, charged through
  :meth:`~repro.mpc.simulator.MPCSimulator.tick_rounds` in the same order the
  reference path's supersteps would execute (including the data-dependent
  number of doubling iterations).

The equivalence test-suite asserts both properties across all tree families.
What the array backend does *not* reproduce is the mid-flight per-machine
memory observations of the record path (its state lives in flat arrays, not
in simulated partitions); capacity studies therefore use
``treeops_backend="records"``.

**Execution placement.**  Each doubling step's machine-local compute is one
named op of :mod:`repro.mpc.exec.ops`, executed through the simulator's
:attr:`~repro.mpc.simulator.MPCSimulator.executor` backend: inline on the
driver (default), or sliced over the shared-memory worker pool when
``MPCConfig.exec_backend="process"`` — one contiguous machine group of rows
per worker.  The ops are pure functions of the previous iteration's arrays
(double-buffered as ``new_*``), so the partitioning cannot change a single
bit; the driver stays the barrier, performing the copy-backs, the
convergence predicates and the ``tick_rounds`` charging between ops.

The vectorization follows the structure of the doubling proofs themselves:

* ``compute_depths`` — parent-pointer doubling with ``jump``/``dist`` arrays
  advanced by fancy indexing (``jump[jump]``), exactly the ancestor-doubling
  of the record path.
* ``capped_subtree_gather`` — binary lifting on the *unique* ancestor at
  distance ``2^t`` (in a tree every node has at most one, so the frontier
  relation ``anc_t[u] = v`` has O(n) pairs per level).  The record path's
  per-node ``known`` sets satisfy the invariant that a still-light node's set
  is exactly its descendants within depth ``2^t``; hence its size recurrence
  is ``s_{t+1}(v) = s_t(v) + sum_{anc_t[u]=v} (s_t(u) - 1)`` (one
  ``bincount``; the ``-1`` avoids double-counting the frontier node itself),
  heaviness at time ``t`` is ``s_t(v) > cap``, and a node's frontier is
  non-empty iff some ``u`` has ``anc_t[u] = v`` (a membership mask).  Light
  members are recovered as contiguous preorder intervals at the end.
* ``degree2_path_positions`` — bidirectional pointer doubling with the
  anchor/distance/done triples kept as parallel arrays; the advance rules
  transcribe the record path's ``advance_up``/``advance_dn`` element-wise.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.mpc.simulator import MPCSimulator

__all__ = [
    "compute_depths_array",
    "capped_subtree_gather_array",
    "degree2_path_positions_array",
]


def compute_depths_array(
    sim: MPCSimulator,
    parent: Dict[Hashable, Hashable],
    root: Hashable,
    max_iterations: Optional[int] = None,
) -> Dict[Hashable, int]:
    """Array-backed :func:`~repro.mpc.treeops.compute_depths`."""
    if root not in parent or parent[root] != root:
        parent = dict(parent)
        parent[root] = root

    nodes: List[Hashable] = list(parent)
    n = len(nodes)
    idx = {v: i for i, v in enumerate(nodes)}
    jump = np.fromiter((idx[parent[v]] for v in nodes), dtype=np.int64, count=n)
    ids = np.arange(n, dtype=np.int64)
    ridx = idx[root]
    dist = (ids != ridx).astype(np.int64)

    if max_iterations is not None:
        limit = max_iterations
    else:
        limit = max(1, 2 + int(math.ceil(math.log2(max(2, n)))))

    session = sim.executor.array_session(
        {
            "jump": jump,
            "dist": dist,
            "new_jump": np.empty_like(jump),
            "new_dist": np.empty_like(dist),
        },
        rows=n,
        num_machines=sim.num_machines,
        obs=sim.obs,
    )
    try:
        jump = session.arrays["jump"]
        dist = session.arrays["dist"]
        for _ in range(limit):
            # One doubling step = the reference path's self-join (2 group_by
            # rounds) followed by its convergence convergecast (1 reduce round).
            session.run("depths_step")
            jump[...] = session.arrays["new_jump"]
            dist[...] = session.arrays["new_dist"]
            sim.tick_rounds(2, label="group_by")
            unfinished = int(np.count_nonzero((jump != ids) & (jump != ridx)))
            sim.tick_rounds(1, label="reduce")
            if unfinished == 0:
                break
        # Copy out before close: closing unmaps the backing segment, so the
        # session's views must not be dereferenced afterwards.
        dist_list = dist.tolist()
    finally:
        session.close()

    depths = {v: dist_list[i] for i, v in enumerate(nodes)}
    depths[root] = 0
    return depths


def capped_subtree_gather_array(
    sim: MPCSimulator,
    parent: Dict[Hashable, Hashable],
    children: Dict[Hashable, List[Hashable]],
    root: Hashable,
    cap: int,
):
    """Array-backed :func:`~repro.mpc.treeops.capped_subtree_gather`.

    Returns the same ``{node: SubtreeInfo}`` mapping as the record path.
    """
    from repro.mpc.treeops import SubtreeInfo

    nodes: List[Hashable] = list(parent.keys())
    n = len(nodes)
    idx = {v: i for i, v in enumerate(nodes)}

    par = np.full(n, -1, dtype=np.int64)
    for v in nodes:
        for c in children.get(v, ()):
            par[idx[c]] = idx[v]

    # s_t(v) = number of descendants of v within relative depth 2^t (incl. v);
    # anc_t[u] = the unique ancestor of u at distance exactly 2^t (or -1).
    s = np.bincount(par[par >= 0], minlength=n).astype(np.int64) + 1
    anc = par.copy()

    limit = max(1, 2 + int(math.ceil(math.log2(max(2, cap + 2)))))

    session = sim.executor.array_session(
        {"anc": anc, "s": s, "new_anc": np.empty_like(anc)},
        rows=n,
        num_machines=sim.num_machines,
        scratch={"contrib": ((n,), np.int64)},
        obs=sim.obs,
    )
    try:
        anc = session.arrays["anc"]
        s = session.arrays["s"]
        contrib = session.arrays["contrib"]
        for _ in range(limit):
            valid = anc >= 0
            has_frontier = np.zeros(n, dtype=bool)
            has_frontier[anc[valid]] = True
            any_active = bool(np.any((s <= cap) & has_frontier))
            # Convergence convergecast ("is any machine still growing a set?").
            sim.tick_rounds(1, label="reduce")
            if not any_active:
                break
            # Request/response join (2 rounds) + state/response co-group (2).
            sim.tick_rounds(4, label="group_by")
            session.run("gather_step", n=n)
            s[...] = s + contrib.sum(axis=0)
            anc[...] = session.arrays["new_anc"]
        # Copy out before close: closing unmaps the backing segment, so the
        # session's views must not be dereferenced afterwards.
        anc = anc.copy()
        s = s.copy()
    finally:
        session.close()

    valid = anc >= 0
    has_frontier = np.zeros(n, dtype=bool)
    has_frontier[anc[valid]] = True
    heavy = (s > cap) | has_frontier

    # Light members are contiguous intervals of any DFS preorder.
    order = np.empty(n, dtype=np.int64)
    pos = np.empty(n, dtype=np.int64)
    child_order = np.argsort(par, kind="stable")
    counts = np.bincount(par[par >= 0], minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    num_roots = int(n - counts.sum())  # nodes with par == -1 (sorted first)
    offsets += num_roots
    k = 0
    stack = [i for i in range(n) if par[i] < 0]
    co = child_order.tolist()
    off = offsets.tolist()
    while stack:
        v = stack.pop()
        order[k] = v
        pos[v] = k
        k += 1
        stack.extend(co[off[v] : off[v + 1]])

    heavy_list = heavy.tolist()
    s_list = s.tolist()
    pos_list = pos.tolist()
    order_list = order.tolist()

    result: Dict[Hashable, "SubtreeInfo"] = {}
    for i, v in enumerate(nodes):
        if heavy_list[i]:
            result[v] = SubtreeInfo(node=v, heavy=True, size=None, members=None)
        else:
            size = s_list[i]
            a = pos_list[i]
            members = frozenset(nodes[j] for j in order_list[a : a + size])
            result[v] = SubtreeInfo(node=v, heavy=False, size=size, members=members)
    return result


def degree2_path_positions_array(
    sim: MPCSimulator,
    path_parent: Dict[Hashable, Optional[Hashable]],
    path_child: Dict[Hashable, Optional[Hashable]],
) -> Dict[Hashable, Tuple[Hashable, int, Hashable, int]]:
    """Array-backed :func:`~repro.mpc.treeops.degree2_path_positions`."""
    nodes: List[Hashable] = list(path_parent.keys())
    if not nodes:
        return {}
    n = len(nodes)
    idx = {v: i for i, v in enumerate(nodes)}

    up_t = np.empty(n, dtype=np.int64)
    up_d = np.empty(n, dtype=np.int64)
    up_done = np.empty(n, dtype=bool)
    dn_t = np.empty(n, dtype=np.int64)
    dn_d = np.empty(n, dtype=np.int64)
    dn_done = np.empty(n, dtype=bool)
    for v in nodes:
        i = idx[v]
        up = path_parent.get(v)
        down = path_child.get(v)
        if up is None:
            up_t[i], up_d[i], up_done[i] = i, 0, True
        else:
            up_t[i], up_d[i], up_done[i] = idx[up], 1, False
        if down is None:
            dn_t[i], dn_d[i], dn_done[i] = i, 0, True
        else:
            dn_t[i], dn_d[i], dn_done[i] = idx[down], 1, False

    arrays = {
        "up_t": up_t,
        "up_d": up_d,
        "up_done": up_done,
        "dn_t": dn_t,
        "dn_d": dn_d,
        "dn_done": dn_done,
    }
    arrays.update({"new_" + k: np.empty_like(a) for k, a in list(arrays.items())})

    limit = max(1, 2 + int(math.ceil(math.log2(max(2, n)))))
    session = sim.executor.array_session(
        arrays, rows=n, num_machines=sim.num_machines, obs=sim.obs
    )
    try:
        A = session.arrays
        for _ in range(limit):
            unfinished = int(np.count_nonzero(~(A["up_done"] & A["dn_done"])))
            sim.tick_rounds(1, label="reduce")
            if unfinished == 0:
                break

            # Upward then downward doubling (each a self-join: 2 group_by
            # rounds); the advance rule lives in
            # :func:`repro.mpc.exec.ops._degree2_advance`.
            session.run("degree2_advance", prefix="up")
            for k in ("up_t", "up_d", "up_done"):
                A[k][...] = A["new_" + k]
            sim.tick_rounds(2, label="group_by")
            session.run("degree2_advance", prefix="dn")
            for k in ("dn_t", "dn_d", "dn_done"):
                A[k][...] = A["new_" + k]
            sim.tick_rounds(2, label="group_by")
        up_t_l, up_d_l = A["up_t"].tolist(), A["up_d"].tolist()
        dn_t_l, dn_d_l = A["dn_t"].tolist(), A["dn_d"].tolist()
    finally:
        session.close()

    out: Dict[Hashable, Tuple[Hashable, int, Hashable, int]] = {}
    for i, v in enumerate(nodes):
        out[v] = (nodes[up_t_l[i]], up_d_l[i], nodes[dn_t_l[i]], dn_d_l[i])
    return out
