"""Configuration of the simulated MPC deployment.

The paper's parameters are ``n`` (input size in words) and ``delta`` with
``0 < delta < 1``: each machine has ``Theta(n^delta)`` words of local memory
and there are ``Theta(n^(1-delta))`` machines.  For small test inputs the
asymptotic constants matter, so the configuration exposes explicit capacity
and machine-count floors; strictness of capacity enforcement is configurable
(record violations vs. raise).
"""

from __future__ import annotations

import dataclasses
import math
import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["MPCConfig"]


@dataclass
class MPCConfig:
    """Parameters of a simulated MPC deployment.

    Parameters
    ----------
    n:
        Nominal input size (number of words / records the deployment is sized
        for).  Machine memory and machine count are derived from it.
    delta:
        The memory exponent: machines hold ``capacity_factor * n**delta``
        words.  Must satisfy ``0 < delta < 1``.
    capacity_factor:
        Constant in front of ``n**delta``; the paper's Theta() hides it.
    min_capacity:
        Lower bound on machine capacity so that tiny test inputs still have a
        few dozen words of room per machine.
    min_machines:
        Lower bound on the number of machines (keeps the simulation genuinely
        distributed even for small ``n``).
    strict_memory:
        If ``True``, exceeding a machine's capacity raises
        :class:`MemoryError`; otherwise violations are only recorded in the
        simulator statistics.
    strict_bandwidth:
        If ``True``, a machine sending or receiving more than its capacity in
        one round raises; otherwise violations are recorded.
    dp_backend:
        Default local-solve backend for finite-state DP problems:
        ``"auto"`` (vectorized NumPy kernels whenever the problem is
        eligible, scalar fallback otherwise), ``"numpy"`` or ``"python"``.
        See :mod:`repro.dp.kernels`.
    accounting:
        Word-accounting mode for memory/bandwidth statistics:
        ``"fast"`` (default) uses the structural sizer of
        :mod:`repro.mpc.words` (O(1) fast paths for homogeneous scalar sets,
        cached ``__mpc_words__`` sizes honoured), ``"exact"`` uses the
        recursive reference walker, ``"off"`` disables word pricing entirely
        (peak/violation statistics stay zero; round counting is unaffected).
        Fast and exact observe identical peaks on every payload the substrate
        ships — the equivalence test-suite asserts it.
    treeops_backend:
        Implementation of the distributed tree subroutines
        (:mod:`repro.mpc.treeops`): ``"array"`` (default) runs the vectorized
        integer-array backend, which computes bit-identical outputs and
        charges bit-identical rounds while evaluating the supersteps on the
        driver; ``"records"`` runs the record-level reference path on the
        simulated machines.  The ``"records"`` path additionally feeds
        mid-flight per-machine loads into the peak-memory statistics, so
        capacity studies should use it.
    treeops_load_model:
        Peak-memory observability of the array backend: ``"none"`` (default)
        keeps the array path's driver-side state unobserved (peak statistics
        for the tree subroutines stay zero); ``"records"`` additionally
        replays each subroutine on a silent records-backend shadow
        deployment — identical capacity/machine layout, rounds and outputs
        discarded — and feeds the shadow's peak per-machine load into this
        deployment's statistics, so ``peak_machine_words`` matches the
        records backend exactly.  The replay re-runs the record-level path
        for sizing only, so it costs records-path time; it is meant for
        capacity studies and the equivalence tests, not the perf path.
        Ignored when ``treeops_backend="records"`` (loads are observed
        natively there).
    exec_backend:
        Where driver-evaluated superstep compute runs (see
        :mod:`repro.mpc.exec`): ``"inline"`` evaluates everything in the
        driver process (the default and the reference behaviour);
        ``"process"`` fans the array supersteps of the tree subroutines and
        the DP engine's per-layer batches out to a persistent
        shared-memory ``multiprocessing`` worker pool, one worker per
        simulated machine group.  Both backends produce bit-identical
        values, labels and :class:`~repro.mpc.simulator.RoundStats` — the
        simulator stays the accounting oracle either way.  Left ``None``,
        the value is read from the ``REPRO_EXEC_BACKEND`` environment
        variable (default ``"inline"``).
    exec_workers:
        Worker count of the ``"process"`` pool.  Left ``None``, the value
        is read from ``REPRO_EXEC_WORKERS``, else a small multiple of the
        visible CPU cores is used.  Ignored by the inline backend.
    exec_retries:
        Supervision ladder of the ``"process"`` pool: how many times a
        failed superstep call or DP layer batch is re-dispatched (after a
        backoff and, for a dead or hung worker, a pool rebuild) before the
        session degrades to a warn-once inline fallback.  The calls are
        idempotent — inputs live driver-side or in shared memory — so
        retries cannot change a bit of the result.  Left ``None``, read
        from ``REPRO_EXEC_RETRIES`` (default 2).  ``0`` disables retries:
        the first failure falls through the ladder.
    exec_backoff:
        Base of the exponential backoff between retry attempts, in seconds
        (attempt ``k`` sleeps ``exec_backoff * 2**(k-1)``).  Left ``None``,
        read from ``REPRO_EXEC_BACKOFF`` (default 0.05).
    exec_heartbeat:
        Heartbeat interval of pool workers, in seconds.  A worker acks
        progress on long calls at this cadence; the driver declares a
        worker hung only after a silence of several intervals, so hangs
        are detected in seconds without false-killing slow-but-alive
        workers.  Left ``None``, read from ``REPRO_EXEC_HEARTBEAT``
        (default 0.25).
    exec_call_timeout:
        Hard per-call deadline in seconds for pool workers — the upper
        bound even while heartbeats keep arriving.  Left ``None``, read
        from ``REPRO_EXEC_TIMEOUT`` (default 300).  Per-pool, not
        process-global: pools are cached keyed by every exec knob, so
        changing the timeout (or the start method) mid-process takes
        effect instead of being silently ignored.
    exec_faults:
        Deterministic fault-injection plan for the process pool (chaos
        testing): a ``repro.mpc.exec.faults.FaultPlan`` spec string such as
        ``"kill@w0:2;poison@*:1:dp_solve"``.  Left ``None``, read from
        ``REPRO_EXEC_FAULTS`` (default: no faults).  Parsed and validated
        here so a typo fails fast.
    obs:
        Observability mode (see :mod:`repro.obs`): ``"off"`` (the default)
        reduces every tracing/metrics hook in the tree to a single no-op
        attribute check; ``"metrics"`` collects counters, gauges and
        latency histograms; ``"trace"`` additionally records nested spans
        (including exec-worker spans shipped back over the pool protocol)
        and the per-superstep round timeline.  Observability never changes
        a value, a label or a ``RoundStats`` field — it only watches.
        Left ``None``, read from ``REPRO_OBS`` (default ``"off"``).
    """

    n: int
    delta: float = 0.5
    capacity_factor: float = 4.0
    min_capacity: int = 64
    min_machines: int = 4
    strict_memory: bool = False
    strict_bandwidth: bool = False
    dp_backend: str = "auto"
    accounting: str = "fast"
    treeops_backend: str = "array"
    treeops_load_model: str = "none"
    exec_backend: Optional[str] = None
    exec_workers: Optional[int] = None
    exec_retries: Optional[int] = None
    exec_backoff: Optional[float] = None
    exec_heartbeat: Optional[float] = None
    exec_call_timeout: Optional[float] = None
    exec_faults: Optional[str] = None
    obs: Optional[str] = None

    machine_capacity: int = field(init=False)
    num_machines: int = field(init=False)

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if not (0.0 < self.delta < 1.0):
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        if self.dp_backend not in ("auto", "numpy", "python"):
            raise ValueError(
                f"dp_backend must be 'auto', 'numpy' or 'python', got {self.dp_backend!r}"
            )
        if self.accounting not in ("exact", "fast", "off"):
            raise ValueError(
                f"accounting must be 'exact', 'fast' or 'off', got {self.accounting!r}"
            )
        if self.treeops_backend not in ("array", "records"):
            raise ValueError(
                f"treeops_backend must be 'array' or 'records', got {self.treeops_backend!r}"
            )
        if self.treeops_load_model not in ("none", "records"):
            raise ValueError(
                f"treeops_load_model must be 'none' or 'records', "
                f"got {self.treeops_load_model!r}"
            )
        if self.exec_backend is None:
            self.exec_backend = os.environ.get("REPRO_EXEC_BACKEND") or "inline"
        if self.exec_backend not in ("inline", "process"):
            raise ValueError(
                f"exec_backend must be 'inline' or 'process', got {self.exec_backend!r}"
            )
        if self.exec_workers is None:
            env_workers = os.environ.get("REPRO_EXEC_WORKERS")
            if env_workers:
                self.exec_workers = int(env_workers)
        if self.exec_workers is not None and self.exec_workers < 1:
            raise ValueError(f"exec_workers must be >= 1, got {self.exec_workers}")
        if self.exec_retries is None:
            env_retries = os.environ.get("REPRO_EXEC_RETRIES")
            if env_retries:
                self.exec_retries = int(env_retries)
        if self.exec_retries is not None and self.exec_retries < 0:
            raise ValueError(f"exec_retries must be >= 0, got {self.exec_retries}")
        if self.exec_backoff is None:
            env_backoff = os.environ.get("REPRO_EXEC_BACKOFF")
            if env_backoff:
                self.exec_backoff = float(env_backoff)
        if self.exec_backoff is not None and self.exec_backoff < 0:
            raise ValueError(f"exec_backoff must be >= 0, got {self.exec_backoff}")
        if self.exec_heartbeat is None:
            env_heartbeat = os.environ.get("REPRO_EXEC_HEARTBEAT")
            if env_heartbeat:
                self.exec_heartbeat = float(env_heartbeat)
        if self.exec_heartbeat is not None and self.exec_heartbeat <= 0:
            raise ValueError(f"exec_heartbeat must be > 0, got {self.exec_heartbeat}")
        if self.exec_call_timeout is None:
            env_timeout = os.environ.get("REPRO_EXEC_TIMEOUT")
            if env_timeout:
                self.exec_call_timeout = float(env_timeout)
        if self.exec_call_timeout is not None and self.exec_call_timeout <= 0:
            raise ValueError(
                f"exec_call_timeout must be > 0, got {self.exec_call_timeout}"
            )
        if self.exec_faults is None:
            self.exec_faults = os.environ.get("REPRO_EXEC_FAULTS")
        if self.exec_faults:
            from repro.mpc.exec.faults import FaultPlan

            FaultPlan.parse(self.exec_faults)  # validates; raises ValueError on typos
        if self.obs is None:
            self.obs = os.environ.get("REPRO_OBS") or "off"
        if self.obs not in ("off", "metrics", "trace"):
            raise ValueError(
                f"obs must be 'off', 'metrics' or 'trace', got {self.obs!r}"
            )
        cap = int(math.ceil(self.capacity_factor * self.n ** self.delta))
        self.machine_capacity = max(self.min_capacity, cap)
        machines = int(math.ceil(self.n / max(1, self.machine_capacity))) + 1
        self.num_machines = max(self.min_machines, machines)

    @property
    def local_memory_words(self) -> int:
        """Alias for :attr:`machine_capacity` (words per machine)."""
        return self.machine_capacity

    @property
    def total_memory_words(self) -> int:
        """Total memory across all machines (words)."""
        return self.machine_capacity * self.num_machines

    def cluster_capacity(self) -> int:
        """The cluster size cap ``n^delta`` used by the hierarchical clustering.

        The clustering construction (Section 4.2) works with the threshold
        ``n^(delta/2)`` for *uncolored* nodes so that clusters of at most
        ``n^delta`` total nodes result.  We return the full ``n^delta`` cap
        here (subject to the same constant and floor as machine capacity,
        since a cluster must fit in one machine).
        """
        return self.machine_capacity

    def light_threshold(self) -> int:
        """The ``n^(delta/2)`` threshold separating light from heavy nodes."""
        thr = int(math.ceil(self.capacity_factor * self.n ** (self.delta / 2.0)))
        return max(4, min(thr, self.machine_capacity))

    def scaled(self, n: int) -> "MPCConfig":
        """Return a copy of this configuration re-sized for input size ``n``.

        ``dataclasses.replace`` carries every init field over (so new
        configuration knobs cannot be silently dropped) and re-runs
        ``__post_init__`` to re-derive the capacity and machine count.
        """
        return dataclasses.replace(self, n=n)
