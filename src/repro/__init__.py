"""Reproduction of "Fast Dynamic Programming in Trees in the MPC Model" (SPAA 2023).

The package provides, as separate layers that mirror the paper's three-step
approach (Section 1.4):

* :mod:`repro.mpc` — a round-accounted MPC simulator (machines, supersteps,
  distributed arrays, doubling-based tree subroutines);
* :mod:`repro.representations` — the five input representations of Section 3
  and their O(1)/O(log D)-round normalisation and export;
* :mod:`repro.clustering` — the hierarchical clustering of Section 4
  (degree reduction, indegree-zero/one construction, invariants);
* :mod:`repro.dp` — the dynamic programming engine of Section 5 (finite-state
  problems, accumulations, raw cluster DPs);
* :mod:`repro.dynamic` — incremental re-solves under point updates (the
  serving path: only the dirty cluster chain is re-run);
* :mod:`repro.problems` — the problem library of Table 1;
* :mod:`repro.inference` — Gaussian belief propagation (Section 6.2);
* :mod:`repro.baselines` — the O(log n) rake-and-compress comparator and
  sequential references;
* :mod:`repro.core` — the end-to-end ``solve()`` / ``prepare()`` API.

Quickstart::

    from repro import solve
    from repro.problems import MaxWeightIndependentSet
    from repro.trees.generators import random_attachment_tree, with_random_weights

    tree = with_random_weights(random_attachment_tree(1000, seed=1), seed=2)
    result = solve(tree, MaxWeightIndependentSet())
    print(result.value, result.rounds)
"""

from repro.core.pipeline import (
    PipelineResult,
    PreparedTree,
    prepare,
    solve,
    solve_incremental,
    solve_many,
    solve_on,
)
from repro.dynamic import IncrementalSolver, PointUpdate, edge_update, node_update
from repro.mpc import MPCConfig, MPCSimulator
from repro.trees.tree import RootedTree

__version__ = "1.0.0"

__all__ = [
    "solve",
    "solve_on",
    "solve_many",
    "solve_incremental",
    "prepare",
    "PipelineResult",
    "PreparedTree",
    "IncrementalSolver",
    "PointUpdate",
    "node_update",
    "edge_update",
    "MPCConfig",
    "MPCSimulator",
    "RootedTree",
    "__version__",
]
