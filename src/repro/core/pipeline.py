"""End-to-end pipeline: representation → clustering → DP (paper Section 1.4).

The three steps are deliberately decoupled:

1. :func:`normalize` — turn any supported representation into the standard
   rooted edge list (O(log D) rounds; O(1) for already-rooted forms).
2. :func:`prepare` — degree-reduce if necessary and build the hierarchical
   clustering (O(log D) rounds).  The result is a :class:`PreparedTree` that
   can be reused for any number of problems.
3. :func:`solve` / :func:`solve_many` — run one or several DP problems over
   the prepared clustering (O(1) rounds per layer, i.e. O(1) overall).

Every result carries the simulator's round statistics broken down by phase so
the benchmarks can regenerate the paper's round-complexity claims.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Sequence, Tuple, Union

from repro.clustering.builder import build_hierarchical_clustering
from repro.clustering.degree_reduction import DegreeReductionResult, reduce_degrees
from repro.clustering.model import HierarchicalClustering
from repro.dp.accumulation import (
    DownwardAccumulationDP,
    DownwardAccumulationSolver,
    UpwardAccumulationDP,
    UpwardAccumulationSolver,
)
from repro.dp.engine import DPEngine, SolveResult
from repro.dp.local_solver import FiniteStateClusterSolver, backend_ineligibility
from repro.dp.problem import ClusterDP, FiniteStateDP
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import MPCSimulator, RoundStats
from repro.obs import clock
from repro.representations.normalize import normalize_to_rooted_tree
from repro.trees.properties import max_degree
from repro.trees.tree import RootedTree

__all__ = [
    "PipelineResult",
    "PreparedTree",
    "prepare",
    "solve",
    "solve_many",
    "solve_incremental",
    "as_cluster_dp",
]

AnyProblem = Union[ClusterDP, FiniteStateDP, UpwardAccumulationDP, DownwardAccumulationDP]


def as_cluster_dp(problem: AnyProblem, backend: str = "auto") -> ClusterDP:
    """Wrap any supported problem description into a :class:`ClusterDP`.

    ``backend`` selects the finite-state local-solve implementation
    (``"auto"``, ``"numpy"`` or ``"python"``; see :mod:`repro.dp.kernels`)
    and is ignored for problems that are not :class:`FiniteStateDP`.
    """
    if isinstance(problem, ClusterDP):
        return problem
    if isinstance(problem, FiniteStateDP):
        return FiniteStateClusterSolver(problem, backend=backend)
    if isinstance(problem, UpwardAccumulationDP):
        return UpwardAccumulationSolver(problem)
    if isinstance(problem, DownwardAccumulationDP):
        return DownwardAccumulationSolver(problem)
    raise TypeError(f"unsupported problem type: {type(problem).__name__}")


@dataclass
class PreparedTree:
    """A tree together with its (reusable) hierarchical clustering.

    Produced by :func:`prepare`; consumed by :func:`solve_on`,
    :func:`solve_many` and :meth:`incremental`.  The clustering is
    immutable and reusable for any number of solves.

    Attributes
    ----------
    sim:
        The deployment everything was (and will be) accounted on.
    original_tree:
        The normalized input tree, before degree reduction.
    reduction:
        The degree-reduction result (auxiliary nodes, edge kinds, and the
        projection back to original edges).  Identity when no node exceeded
        the light threshold.
    clustering:
        The hierarchical clustering of the (reduced) tree — paper §4.2.
    normalization_stats, clustering_stats:
        Round statistics of the two distributed preparation phases.
    timings:
        Wall-clock seconds per phase (``"normalize"``,
        ``"degree_reduction"``, ``"clustering"``) — the benchmark harness
        reports them (see ``benchmarks/bench_pipeline.py``).
    """

    sim: MPCSimulator
    original_tree: RootedTree
    reduction: DegreeReductionResult
    clustering: HierarchicalClustering
    normalization_stats: RoundStats
    clustering_stats: RoundStats
    #: Wall-clock seconds per preparation phase ("normalize",
    #: "degree_reduction", "clustering") — the benchmark harness reports them
    #: (see benchmarks/bench_pipeline.py).
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def tree(self) -> RootedTree:
        """The degree-reduced tree the clustering was built for."""
        return self.clustering.tree

    def engine(self) -> DPEngine:
        return DPEngine(
            self.clustering,
            sim=self.sim,
            edge_kinds=self.reduction.edge_kinds,
            aux_nodes=self.reduction.aux_nodes,
            original_parent=self.reduction.original_parent,
        )

    def incremental(self, problem: AnyProblem, backend: Optional[str] = None, **kwargs):
        """Solve ``problem`` once and return an update-accepting solver.

        The returned :class:`~repro.dynamic.IncrementalSolver` keeps the
        solved per-cluster state alive and applies batched point updates
        (node/edge payload edits) by re-running only the dirty cluster
        chain — see :mod:`repro.dynamic.incremental`.
        """
        from repro.dynamic import IncrementalSolver

        return IncrementalSolver(self, problem, backend=backend, **kwargs)

    def incremental_many(self, problems: Any, backend: Optional[str] = None, **kwargs):
        """Solve a batch of problems and return a group incremental solver.

        The returned :class:`~repro.dynamic.IncrementalSolverGroup` keeps
        per-problem solved state but validates, writes and seeds each update
        batch *once* for the whole group (shared dirty-chain computation) —
        the multi-problem serving mode.
        """
        from repro.dynamic import IncrementalSolverGroup

        return IncrementalSolverGroup(self, problems, backend=backend, **kwargs)

    def serve(self, problems: Any, backend: Optional[str] = None, **kwargs):
        """An asyncio server over this prepared tree (see :mod:`repro.serving`).

        ``problems`` is one problem or a sequence; extra keyword arguments
        are :class:`~repro.serving.TreeServer` parameters (``config=``,
        ``fault_plan=``...).  The constructor runs the initial solves; call
        :meth:`~repro.serving.TreeServer.start` (or enter it as an async
        context manager) to begin accepting traffic.
        """
        from repro.serving import TreeServer

        return TreeServer(self, problems, backend=backend, **kwargs)

    def exec_health(self) -> Optional[Dict[str, Any]]:
        """Supervision report of this deployment's exec backend, if any.

        ``None`` under the inline backend (there is nothing to supervise).
        Under ``exec_backend="process"`` this is the pool's cumulative
        :meth:`~repro.mpc.exec.faults.ExecHealth.as_dict` snapshot —
        retries, pool rebuilds, inline fallbacks and per-event detail for
        everything executed on this deployment so far.
        """
        health = getattr(self.sim.executor, "health", None)
        return None if health is None else health.as_dict()

    def trace(self) -> list:
        """Spans recorded on this deployment so far (``obs="trace"`` only).

        Span dicts in completion order (children before parents); the
        companion round timeline is ``self.sim.obs.timeline``, and
        ``self.sim.obs.trace_lines()`` renders both as a JSON-lines trace.
        """
        return self.sim.obs.recorder.to_list()

    def metrics(self, format: str = "json") -> Any:
        """Metric exposition of this deployment (``obs`` enabled modes).

        ``format="json"`` returns the plain-data exposition,
        ``format="prometheus"`` the text format; empty under ``obs="off"``.
        """
        if format == "prometheus":
            return self.sim.obs.metrics.to_prometheus()
        if format == "json":
            return self.sim.obs.metrics.to_json()
        raise ValueError(f"format must be 'json' or 'prometheus', got {format!r}")


@dataclass
class PipelineResult:
    """Everything :func:`solve` returns for one problem."""

    value: Any
    output: Any
    root_label: Any
    edge_labels: Dict[Tuple[Hashable, Hashable], Any]
    node_labels: Dict[Hashable, Any]
    solve_result: SolveResult
    prepared: PreparedTree
    rounds: Dict[str, int] = field(default_factory=dict)
    #: Exec-backend supervision snapshot taken right after the solve
    #: (``PreparedTree.exec_health()``); ``None`` under the inline backend.
    exec_health: Optional[Dict[str, Any]] = None

    @property
    def total_rounds(self) -> int:
        return sum(self.rounds.values())

    def trace(self) -> list:
        """Spans of the deployment this result was solved on."""
        return self.prepared.trace()

    def metrics(self, format: str = "json") -> Any:
        """Metric exposition of the deployment this result was solved on."""
        return self.prepared.metrics(format=format)


# --------------------------------------------------------------------------- #
# Steps
# --------------------------------------------------------------------------- #


def prepare(
    tree_or_representation: Any,
    delta: float = 0.5,
    root: Optional[Hashable] = None,
    capacity_factor: float = 4.0,
    degree_reduction: bool = True,
    sim: Optional[MPCSimulator] = None,
    light_threshold: Optional[int] = None,
    backend: Optional[str] = None,
) -> PreparedTree:
    """Normalise the input and build the reusable hierarchical clustering.

    This is the O(log D)-round half of the pipeline (paper §3 + §4.2):
    normalization, degree reduction and the hierarchical clustering.  The
    result is reusable for any number of :func:`solve_on` /
    :meth:`PreparedTree.incremental` calls.

    Parameters
    ----------
    tree_or_representation:
        A :class:`~repro.trees.tree.RootedTree` or any representation
        :func:`~repro.representations.normalize.normalize_to_rooted_tree`
        accepts (edge list, parent array, parenthesis string, traversal
        pair, ...).
    delta:
        Memory exponent of the auto-built deployment (ignored when ``sim``
        is given).  See :class:`~repro.mpc.config.MPCConfig`.
    root:
        Root hint for representations that need one.
    capacity_factor:
        Machine-capacity constant of the auto-built deployment.
    degree_reduction:
        When ``True`` (default), split nodes whose degree exceeds the light
        threshold with auxiliary chains before clustering.
    sim:
        An existing :class:`~repro.mpc.simulator.MPCSimulator` to run on
        (its :class:`~repro.mpc.config.MPCConfig` then controls every knob,
        including ``exec_backend``).  Mutually exclusive with ``backend``.
    light_threshold:
        Override of the n^(delta/2) light/heavy threshold.
    backend:
        Default finite-state DP backend of the auto-built deployment
        (``"auto"``/``"numpy"``/``"python"``).

    Returns
    -------
    PreparedTree
        The tree, its degree reduction, the clustering, and the per-phase
        round statistics and wall-clock timings.
    """
    if sim is not None and backend is not None:
        raise ValueError(
            "prepare() received both an explicit sim and a backend; set "
            "dp_backend on the sim's MPCConfig instead"
        )
    if sim is None:
        # Size the deployment by a first estimate of n; representations that
        # are not RootedTree know their own length.
        n_hint = _size_hint(tree_or_representation)
        config = MPCConfig(
            n=max(4, n_hint),
            delta=delta,
            capacity_factor=capacity_factor,
            dp_backend=backend or "auto",
        )
        sim = MPCSimulator(config)

    obs = sim.obs
    with obs.trace("prepare", n=sim.config.n):
        snap0 = sim.snapshot()
        t0 = clock.now()
        with obs.trace("prepare.normalize"):
            tree = normalize_to_rooted_tree(sim, tree_or_representation, root=root)
        t1 = clock.now()
        norm_stats = sim.stats.diff(snap0)

        threshold = light_threshold or sim.config.light_threshold()
        with obs.trace("prepare.degree_reduction", threshold=threshold):
            if degree_reduction and max_degree(tree) > threshold:
                reduction = reduce_degrees(tree, threshold=threshold)
            else:
                reduction = reduce_degrees(
                    tree, threshold=max(threshold, max_degree(tree) + 1)
                )
        t2 = clock.now()

        snap1 = sim.snapshot()
        with obs.trace("prepare.clustering"):
            clustering = build_hierarchical_clustering(
                sim,
                reduction.tree,
                light_threshold=threshold if degree_reduction else None,
            )
        cluster_stats = sim.stats.diff(snap1)
        t3 = clock.now()
    if obs.enabled:
        phases = obs.metrics
        phases.gauge("repro_prepare_phase_seconds", phase="normalize").set(t1 - t0)
        phases.gauge("repro_prepare_phase_seconds", phase="degree_reduction").set(
            t2 - t1
        )
        phases.gauge("repro_prepare_phase_seconds", phase="clustering").set(t3 - t2)

    return PreparedTree(
        sim=sim,
        original_tree=tree,
        reduction=reduction,
        clustering=clustering,
        normalization_stats=norm_stats,
        clustering_stats=cluster_stats,
        timings={
            "normalize": t1 - t0,
            "degree_reduction": t2 - t1,
            "clustering": t3 - t2,
        },
    )


def solve_on(
    prepared: PreparedTree, problem: AnyProblem, backend: Optional[str] = None
) -> PipelineResult:
    """Solve one DP problem on an already prepared tree (O(1) rounds/layer).

    ``backend`` overrides the deployment's default finite-state backend
    (``prepared.sim.config.dp_backend``) for this solve only.
    """
    solver = as_cluster_dp(problem, backend=backend or prepared.sim.config.dp_backend)
    obs = prepared.sim.obs
    snap = prepared.sim.snapshot()
    engine = prepared.engine()
    with obs.trace("solve", problem=getattr(problem, "name", type(problem).__name__)):
        res = engine.solve(solver)
    dp_stats = prepared.sim.stats.diff(snap)
    if obs.enabled:
        obs.dump(tag="solve")

    # Project edge labels of the degree-reduced tree back to original edges.
    edge_labels = res.edge_labels
    node_labels = res.node_labels
    if not prepared.reduction.is_identity and res.edge_labels:
        edge_labels = prepared.reduction.project_labels(res.edge_labels)
        node_labels = {c: lab for (c, _p), lab in edge_labels.items()}
        node_labels[prepared.original_tree.root] = res.root_label

    rounds = {
        "normalization": prepared.normalization_stats.total_rounds,
        "clustering": prepared.clustering_stats.total_rounds,
        "dp": dp_stats.total_rounds,
    }
    return PipelineResult(
        value=res.value,
        output=res.output,
        root_label=res.root_label,
        edge_labels=edge_labels,
        node_labels=node_labels,
        solve_result=res,
        prepared=prepared,
        rounds=rounds,
        exec_health=prepared.exec_health(),
    )


def solve(
    tree_or_representation: Any,
    problem: AnyProblem,
    delta: float = 0.5,
    root: Optional[Hashable] = None,
    capacity_factor: float = 4.0,
    degree_reduction: bool = True,
    light_threshold: Optional[int] = None,
    backend: Optional[str] = None,
) -> PipelineResult:
    """One-shot convenience API: prepare the tree and solve one problem.

    Equivalent to ``solve_on(prepare(...), problem)``; see :func:`prepare`
    for the shared parameters.  Use :func:`prepare` + :func:`solve_on` when
    solving several problems on one tree (the clustering is reusable), and
    :func:`solve_many` to also amortize the per-cluster traversal plans.

    Parameters
    ----------
    tree_or_representation:
        See :func:`prepare`.
    problem:
        Any supported problem description (:class:`~repro.dp.problem.ClusterDP`,
        :class:`~repro.dp.problem.FiniteStateDP`, or an accumulation DP).
    backend:
        Finite-state backend for both preparation default and this solve.

    Returns
    -------
    PipelineResult
        Objective value, labels, problem-specific output, and per-phase
        round statistics (``result.rounds``/``result.total_rounds``).
    """
    prepared = prepare(
        tree_or_representation,
        delta=delta,
        root=root,
        capacity_factor=capacity_factor,
        degree_reduction=degree_reduction,
        light_threshold=light_threshold,
        backend=backend,
    )
    return solve_on(prepared, problem, backend=backend)


def solve_incremental(
    tree_or_representation: Any,
    problem: AnyProblem,
    delta: float = 0.5,
    root: Optional[Hashable] = None,
    capacity_factor: float = 4.0,
    degree_reduction: bool = True,
    light_threshold: Optional[int] = None,
    backend: Optional[str] = None,
    **kwargs,
):
    """Prepare, solve once, and return an update-accepting incremental solver.

    The serving-path convenience mirror of :func:`solve`: the returned
    :class:`~repro.dynamic.IncrementalSolver` exposes the solved state
    (``value``, labels, :meth:`~repro.dynamic.IncrementalSolver.as_pipeline_result`)
    and accepts batched point updates without re-clustering.

    Parameters
    ----------
    tree_or_representation, delta, root, capacity_factor, degree_reduction, \
light_threshold, backend:
        See :func:`prepare`.
    problem:
        The problem to keep solved under updates.
    **kwargs:
        Forwarded to :class:`~repro.dynamic.IncrementalSolver` (e.g.
        ``full_resolve_threshold``).

    Returns
    -------
    IncrementalSolver
        Already holding the initial full solve; apply updates with
        :meth:`~repro.dynamic.IncrementalSolver.apply_updates`.
    """
    prepared = prepare(
        tree_or_representation,
        delta=delta,
        root=root,
        capacity_factor=capacity_factor,
        degree_reduction=degree_reduction,
        light_threshold=light_threshold,
        backend=backend,
    )
    return prepared.incremental(problem, backend=backend, **kwargs)


def solve_many(
    tree_or_representation: Any,
    problems: Sequence[AnyProblem],
    delta: float = 0.5,
    root: Optional[Hashable] = None,
    degree_reduction: bool = True,
    backend: Optional[str] = None,
) -> Dict[str, PipelineResult]:
    """Solve several problems while reusing one clustering (paper §1.4).

    Beyond sharing the clustering, repeated solves amortize the per-cluster
    element-tree traversal: children lists, absorption order, postorder and
    the hole-path plans are computed once per cluster and cached on the
    :class:`~repro.clustering.model.Cluster` objects, so every problem (and
    both DP passes) reuses them.

    The whole batch is validated up front — unsupported problem types raise
    *before* any solve runs, rather than crashing mid-batch with part of the
    work done.  A batch-wide ``backend="numpy"`` request is validated per
    problem: a problem that cannot run on the dense backend (no
    ``acc_states``, exotic semiring) falls back to the scalar backend for
    that problem only, with a :class:`RuntimeWarning`, instead of aborting
    the batch.  The cached traversal plans are backend-independent, so the
    fallback never mixes plan state between the two paths.

    Parameters
    ----------
    tree_or_representation, delta, root, degree_reduction, backend:
        See :func:`prepare`.
    problems:
        The problems to solve, in order.

    Returns
    -------
    dict
        ``problem.name`` (or type name) -> :class:`PipelineResult`.  A
        duplicate name overwrites the earlier entry, with a warning.
    """
    problems = list(problems)
    supported = (ClusterDP, FiniteStateDP, UpwardAccumulationDP, DownwardAccumulationDP)
    bad = [type(p).__name__ for p in problems if not isinstance(p, supported)]
    if bad:
        raise TypeError(f"solve_many: unsupported problem type(s): {', '.join(bad)}")

    prepared = prepare(
        tree_or_representation,
        delta=delta,
        root=root,
        degree_reduction=degree_reduction,
        backend=backend,
    )
    out: Dict[str, PipelineResult] = {}
    for problem in problems:
        name = getattr(problem, "name", type(problem).__name__)
        problem_backend = backend
        if backend == "numpy" and isinstance(problem, FiniteStateDP):
            why_not = backend_ineligibility(problem)
            if why_not is not None:
                warnings.warn(
                    f"solve_many: {name} cannot use the numpy backend ({why_not}); "
                    "falling back to the scalar backend for this problem",
                    RuntimeWarning,
                    stacklevel=2,
                )
                problem_backend = "python"
        if name in out:
            warnings.warn(
                f"solve_many: duplicate problem name {name!r} — the earlier "
                "result is overwritten",
                RuntimeWarning,
                stacklevel=2,
            )
        out[name] = solve_on(prepared, problem, backend=problem_backend)
    return out


def _size_hint(rep: Any) -> int:
    if isinstance(rep, RootedTree):
        return rep.num_nodes
    if hasattr(rep, "edges"):
        return len(rep.edges) + 1
    if hasattr(rep, "text"):
        return max(1, len(rep.text) // 2)
    if hasattr(rep, "parents"):
        return len(rep.parents)
    return 1024
