"""The public end-to-end API of the reproduction.

:func:`~repro.core.pipeline.solve` wires together the three steps of the
paper (normalise the representation, build the hierarchical clustering, run
the DP engine);
:func:`~repro.core.pipeline.prepare` exposes the clustering separately so it
can be *reused* across many problems and input valuations — the paper's main
conceptual point.
"""

from repro.core.pipeline import PipelineResult, PreparedTree, prepare, solve, solve_many

__all__ = ["PipelineResult", "PreparedTree", "prepare", "solve", "solve_many"]
