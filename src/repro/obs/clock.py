"""Clock helpers — the sanctioned readers of :mod:`time`.

Every timing in the tree flows through these three functions so that traces
stay complete: the ``untraced-clock`` mpclint rule flags any direct
``time.time()`` / ``time.perf_counter()`` / ``time.monotonic()`` call outside
``repro.obs`` (benchmarks, which live outside ``src/``, keep their own
stopwatches).  Centralizing the reads also gives one place to swap the clock
source (e.g. a deterministic fake in tests).

The module is stdlib-only and import-safe from exec workers.
"""

from __future__ import annotations

import time

__all__ = ["now", "monotonic", "wall"]


def now() -> float:
    """High-resolution timestamp for span starts and phase durations.

    ``time.perf_counter()``: system-wide on Linux (CLOCK_MONOTONIC), but its
    epoch is unspecified — only differences are meaningful, and cross-process
    values must be re-based (see ``Recorder.ingest``).
    """
    return time.perf_counter()


def monotonic() -> float:
    """Deadline / heartbeat-silence clock (never jumps backwards).

    Named ``monotonic`` on purpose: the ``unbounded-wait`` rule recognizes a
    ``.monotonic()`` reading as the bound marker of a wait loop, so pool
    deadlines keep their discipline after migrating onto this helper.
    """
    return time.monotonic()


def wall() -> float:
    """Wall-clock epoch seconds, for human-facing dump timestamps only."""
    return time.time()
