"""Per-run observability context: mode knob, recorder, metrics, timeline.

One :class:`ObsContext` is owned by each :class:`~repro.mpc.simulator.
MPCSimulator` (``sim.obs``) and shared by everything downstream of it — the
pipeline phases, the DP engine, the exec sessions, the incremental solver
and the serving layer all reach the same per-run recorder and registry
through the simulator they already hold.

The mode ladder (``MPCConfig.obs`` / ``REPRO_OBS``):

* ``"off"`` — the default.  ``sim.obs`` is the shared :data:`OBS_OFF`
  singleton whose ``enabled``/``tracing`` are ``False``; every hook in the
  tree guards on those attributes, so the entire subsystem reduces to one
  attribute check per hook (asserted by the overhead test).
* ``"metrics"`` — counters/gauges/histograms collect; spans and the round
  timeline stay off.
* ``"trace"`` — everything: metrics, nested spans and the per-superstep
  round timeline.

The **round timeline** mirrors the simulator's four accrual points
(``superstep``/``tick_rounds``/``charge_rounds``/``charge_words``) one event
per call, so summing the events reproduces ``RoundStats`` bit-identically
(see :meth:`ObsContext.timeline_totals`) while adding what ``RoundStats``
cannot carry: wall time, backend and worker fan-out per charged superstep.

Stdlib-only, import-safe from exec workers.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.obs import dump as dump_mod
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.spans import NULL_RECORDER, Recorder

__all__ = ["ObsContext", "OBS_OFF", "OBS_MODES", "install_shared"]

OBS_MODES = ("off", "metrics", "trace")

#: Timeline kinds and the RoundStats channel each one feeds.
_MEASURED_KINDS = ("superstep", "tick")
_CHARGED_KINDS = ("charge",)


class ObsContext:
    """Everything one run records: spans, metrics, round timeline."""

    __slots__ = (
        "mode",
        "enabled",
        "tracing",
        "recorder",
        "metrics",
        "timeline",
        "backend",
        "workers",
    )

    def __init__(
        self,
        mode: str,
        *,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        if mode not in OBS_MODES:
            raise ValueError(f"obs mode must be one of {OBS_MODES}, got {mode!r}")
        self.mode = mode
        self.enabled = mode != "off"
        self.tracing = mode == "trace"
        self.recorder: Any = Recorder() if self.tracing else NULL_RECORDER
        self.metrics: Any = MetricsRegistry() if self.enabled else NULL_METRICS
        self.timeline: List[Dict[str, Any]] = []
        self.backend = backend
        self.workers = workers

    @classmethod
    def for_config(cls, config: Any) -> "ObsContext":
        """The context selected by ``config.obs`` (:data:`OBS_OFF` shared
        singleton when off, a fresh per-run context otherwise).

        An :func:`install_shared` context, when present, wins over the
        config: the benchmark harness uses it to point every experiment's
        simulators at one registry, so BENCH artifacts embed per-phase
        metric breakdowns without each experiment threading a context.
        """
        if _SHARED is not None:
            return _SHARED
        mode = getattr(config, "obs", None) or "off"
        if mode == "off":
            return OBS_OFF
        return cls(
            mode,
            backend=getattr(config, "exec_backend", None),
            workers=getattr(config, "exec_workers", None),
        )

    # -- spans -------------------------------------------------------------
    def trace(self, name: str, **attrs: Any) -> Any:
        """Open a span (context manager / decorator); no-op unless tracing."""
        return self.recorder.trace(name, **attrs)

    # -- round timeline ----------------------------------------------------
    def round_event(
        self,
        kind: str,
        label: str,
        *,
        rounds: int = 0,
        words: int = 0,
        wall: float = 0.0,
    ) -> None:
        """One event per accrual call on the simulator (tracing mode only).

        ``kind``: ``"superstep"`` | ``"tick"`` (measured rounds) |
        ``"charge"`` (charged rounds) | ``"charge-words"`` (charged words).
        ``words`` on a ``"superstep"`` event is the measured traffic of that
        round; on ``"charge-words"`` it is the charged volume.
        """
        self.timeline.append(
            {
                "type": "round",
                "kind": kind,
                "label": label,
                "rounds": rounds,
                "words": words,
                "wall": wall,
                "backend": self.backend,
                "workers": self.workers,
                "span": self.recorder.current_id(),
            }
        )

    def timeline_totals(self) -> Dict[str, Any]:
        """Sum the timeline back into ``RoundStats``-shaped totals.

        When tracing covered the whole run, every field here equals the
        corresponding ``RoundStats`` field bit-identically (asserted by the
        round-timeline test).
        """
        totals: Dict[str, Any] = {
            "rounds": 0,
            "charged_rounds": 0,
            "total_words_sent": 0,
            "charged_words": 0,
            "rounds_by_label": {},
            "charged_by_label": {},
            "charged_words_by_label": {},
        }
        for ev in self.timeline:
            kind = ev["kind"]
            label = ev["label"]
            if kind in _MEASURED_KINDS:
                totals["rounds"] += ev["rounds"]
                if ev["rounds"]:
                    by = totals["rounds_by_label"]
                    by[label] = by.get(label, 0) + ev["rounds"]
                totals["total_words_sent"] += ev["words"]
            elif kind in _CHARGED_KINDS:
                totals["charged_rounds"] += ev["rounds"]
                by = totals["charged_by_label"]
                by[label] = by.get(label, 0) + ev["rounds"]
            elif kind == "charge-words":
                totals["charged_words"] += ev["words"]
                by = totals["charged_words_by_label"]
                by[label] = by.get(label, 0) + ev["words"]
        return totals

    # -- export ------------------------------------------------------------
    def trace_lines(self) -> List[str]:
        """JSON-lines trace: every span, then every timeline event."""
        import json

        lines = [
            json.dumps(d, sort_keys=True) + "\n" for d in self.recorder.to_list()
        ]
        lines.extend(
            json.dumps(ev, sort_keys=True) + "\n" for ev in self.timeline
        )
        return lines

    def export(self) -> Dict[str, Any]:
        """Everything as plain data (embedded in BENCH artifacts)."""
        return {
            "mode": self.mode,
            "backend": self.backend,
            "workers": self.workers,
            "spans": self.recorder.to_list(),
            "timeline": list(self.timeline),
            "metrics": self.metrics.to_json(),
        }

    def dump(self, tag: str = "run", out_dir: Optional[str] = None) -> List[str]:
        """Best-effort file dump into ``out_dir`` / ``$REPRO_OBS_DIR``.

        Writes a ``obs-metrics-*.json`` exposition always (when enabled) and
        a ``obs-trace-*.jsonl`` span/timeline dump when tracing.  Shares the
        exclusive-create + GC-capped helper with the exec health reports.
        """
        out_dir = out_dir or os.environ.get("REPRO_OBS_DIR") or ""
        if not out_dir or not self.enabled:
            return []
        pid = os.getpid()
        written: List[str] = []
        path = dump_mod.dump_file(
            out_dir,
            f"obs-metrics-{tag}-{pid}",
            ".json",
            "obs-metrics-",
            lambda p: dump_mod.write_json(p, self.metrics.to_json()),
        )
        if path:
            written.append(path)
        if self.tracing:
            text = "".join(self.trace_lines())
            path = dump_mod.dump_file(
                out_dir,
                f"obs-trace-{tag}-{pid}",
                ".jsonl",
                "obs-trace-",
                lambda p: dump_mod.write_text(p, text),
            )
            if path:
                written.append(path)
        return written

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ObsContext(mode={self.mode!r}, spans={len(self.recorder)}, "
            f"events={len(self.timeline)})"
        )


class _OffContext(ObsContext):
    """The shared off-mode singleton; inert and reusable across runs."""

    __slots__ = ()

    def round_event(self, kind: str, label: str, **kwargs: Any) -> None:
        # Defensive: an unguarded caller must not grow the shared singleton.
        pass


#: Process-wide singleton for ``obs="off"`` — hooks see ``enabled is False``
#: and skip; nothing is ever recorded on it.
OBS_OFF = _OffContext("off")

#: Harness-installed override (see :func:`install_shared`); ``None`` in
#: normal operation, where every run gets its own per-config context.
_SHARED: Optional[ObsContext] = None


def install_shared(ctx: Optional[ObsContext]) -> Optional[ObsContext]:
    """Adopt ``ctx`` for every simulator built from now on; return the
    previous override (``None`` uninstalls).

    A harness-level escape hatch, not a user knob: the benchmark conftest
    installs one ``"metrics"`` context per experiment so all simulators an
    experiment builds feed a single registry the BENCH artifact embeds.
    """
    global _SHARED
    prev = _SHARED
    _SHARED = ctx
    return prev
