"""``repro.obs`` — zero-dependency tracing, metrics and round-timeline.

Public surface:

* :mod:`repro.obs.clock` — the sanctioned ``time`` readers (``now`` /
  ``monotonic`` / ``wall``); everything else is flagged by the
  ``untraced-clock`` mpclint rule.
* :class:`ObsContext` / :data:`OBS_OFF` — per-run context created from
  ``MPCConfig.obs`` and owned by the simulator (``sim.obs``).
* :class:`Recorder` / :class:`Span` / :func:`worker_span` — nested span
  tracing with process-safe worker piggybacking.
* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms with
  snapshot-consistent reads and Prometheus/JSON exposition.
* :func:`dump_file` — the shared env-driven dump helper
  (``REPRO_OBS_DIR`` / ``REPRO_EXEC_HEALTH_DIR``).

See ``docs/OBSERVABILITY.md`` for the span model, metric catalog and
exporter formats.  The whole package is stdlib-only and import-safe from
exec worker processes.
"""

from repro.obs import clock
from repro.obs.context import OBS_MODES, OBS_OFF, ObsContext
from repro.obs.dump import DEFAULT_KEEP, dump_file, write_json, write_text
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.spans import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Span,
    worker_span,
)

__all__ = [
    "clock",
    "ObsContext",
    "OBS_OFF",
    "OBS_MODES",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Span",
    "worker_span",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "dump_file",
    "write_json",
    "write_text",
    "DEFAULT_KEEP",
]
