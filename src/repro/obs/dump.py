"""Shared dump-directory helper for env-driven diagnostic artifacts.

``REPRO_EXEC_HEALTH_DIR`` (pool health reports) and ``REPRO_OBS_DIR``
(trace/metric dumps) share this one code path: the directory is
auto-created, names are made collision-free by an exclusive-create retry
loop (several pools/runs in one process, several processes in one CI job),
and a stale-file GC cap prunes the oldest artifacts of the same family so
long chaos soaks don't grow the directory unbounded.

Dumps are best-effort diagnostics: any :class:`OSError` is swallowed and
reported as ``None`` — a full disk must never fail a solve.  Stdlib-only.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Optional

__all__ = ["dump_file", "write_json", "write_text", "DEFAULT_KEEP"]

#: Per-family cap on retained files (oldest beyond this are pruned).
DEFAULT_KEEP = 256

#: Attempts at a collision-free sequence number before giving up.
_MAX_SEQ = 1000


def write_json(path: str, payload: Any) -> None:
    """Exclusively create ``path`` with ``payload`` as indented JSON."""
    with open(path, "x", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_text(path: str, text: str) -> None:
    """Exclusively create ``path`` with ``text`` (e.g. a JSONL trace)."""
    with open(path, "x", encoding="utf-8") as fh:
        fh.write(text)


def dump_file(
    out_dir: str,
    stem: str,
    suffix: str,
    family: str,
    writer: Callable[[str], None],
    *,
    keep: int = DEFAULT_KEEP,
) -> Optional[str]:
    """Write one artifact ``<out_dir>/<stem>-<seq><suffix>`` and GC its family.

    ``writer(path)`` must create ``path`` exclusively (``open(..., "x")``,
    e.g. :func:`write_json` or ``ExecHealth.write_json(..., exclusive=True)``)
    and raise :class:`FileExistsError` on a name collision — the sequence
    number is then advanced and the write retried.  ``family`` is the
    filename prefix shared by all artifacts of this kind (across pids and
    pool generations); after a successful write, the oldest files beyond
    ``keep`` whose names start with ``family`` are deleted.

    Returns the written path, or ``None`` when the dump could not be
    completed (unwritable directory, disk full, sequence space exhausted).
    """
    try:
        os.makedirs(out_dir, exist_ok=True)
    except OSError:
        return None
    written: Optional[str] = None
    for seq in range(_MAX_SEQ):
        path = os.path.join(out_dir, f"{stem}-{seq}{suffix}")
        try:
            writer(path)
        except FileExistsError:
            continue
        except OSError:
            return None
        written = path
        break
    if written is not None:
        _prune_family(out_dir, family, keep)
    return written


def _prune_family(out_dir: str, family: str, keep: int) -> None:
    """Delete the oldest ``family``-prefixed files beyond the ``keep`` cap."""
    if keep <= 0:
        return
    try:
        names = [n for n in os.listdir(out_dir) if n.startswith(family)]
    except OSError:
        return
    if len(names) <= keep:
        return
    paths = [os.path.join(out_dir, n) for n in names]
    stamped = []
    for p in paths:
        try:
            stamped.append((os.path.getmtime(p), p))
        except OSError:
            continue
    stamped.sort()
    for _mtime, p in stamped[: max(0, len(stamped) - keep)]:
        try:
            os.remove(p)
        except OSError:
            continue
