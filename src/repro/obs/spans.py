"""Nested span tracing collected by a per-run :class:`Recorder`.

A span is one timed region — name, monotonic start (``clock.now()`` base),
duration, free-form attributes and a parent id — and nesting is tracked per
thread, so spans opened from ``asyncio.to_thread`` workers land in the same
recorder without corrupting the driver thread's stack.

Process safety: exec workers cannot share the driver's recorder, so they
record *span dicts* locally (see :func:`worker_span`) and ship them back
piggybacked on their existing command replies.  The driver then calls
:meth:`Recorder.ingest`, which re-bases the worker-relative offsets onto the
driver clock and re-parents the spans under the current (superstep/exec)
span.

Everything here is stdlib-only and import-safe from worker processes.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.obs import clock

__all__ = ["Span", "Recorder", "NullRecorder", "NULL_RECORDER", "worker_span"]


class Span:
    """One completed timed region (immutable once recorded)."""

    __slots__ = ("span_id", "parent_id", "name", "start", "duration", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        duration: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = attrs

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.duration:.6f})"
        )


class _SpanHandle:
    """Context manager *and* decorator returned by :meth:`Recorder.trace`."""

    __slots__ = ("_recorder", "_name", "_attrs", "_start", "_span_id", "_parent_id")

    def __init__(self, recorder: "Recorder", name: str, attrs: Dict[str, Any]) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._start = 0.0
        self._span_id = 0
        self._parent_id: Optional[int] = None

    def __enter__(self) -> "_SpanHandle":
        rec = self._recorder
        stack = rec._stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = next(rec._ids)
        stack.append(self._span_id)
        self._start = clock.now()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = clock.now() - self._start
        rec = self._recorder
        stack = rec._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        rec._record(
            Span(
                self._span_id,
                self._parent_id,
                self._name,
                self._start,
                duration,
                self._attrs,
            )
        )
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the open span (e.g. results known at exit)."""
        self._attrs.update(attrs)

    def __call__(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with _SpanHandle(self._recorder, self._name, dict(self._attrs)):
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


class _NullHandle:
    """Shared no-op stand-in for :class:`_SpanHandle` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    def __call__(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        return fn


_NULL_HANDLE = _NullHandle()


class Recorder:
    """Per-run span collector: thread-safe, append-only, snapshot-readable."""

    enabled = True

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- recording ---------------------------------------------------------
    def trace(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a span: ``with rec.trace("dp.layer", layer=3): ...`` or as a
        decorator ``@rec.trace("solve")``."""
        return _SpanHandle(self, name, attrs)

    def current_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1] if stack else None

    def ingest(
        self,
        span_dicts: Iterable[Dict[str, Any]],
        *,
        base: float,
        parent_id: Optional[int] = None,
        extra_attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Adopt worker-recorded span dicts (see :func:`worker_span`).

        Worker clocks have their own epoch, so worker spans carry a ``rel``
        offset from command receipt; ``base`` (driver clock, taken just
        before the command was sent) re-bases them, and ``parent_id``
        (default: the caller's current span) re-parents them.
        """
        if parent_id is None:
            parent_id = self.current_id()
        adopted: List[Span] = []
        for sd in span_dicts:
            attrs = dict(sd.get("attrs") or {})
            if extra_attrs:
                attrs.update(extra_attrs)
            adopted.append(
                Span(
                    next(self._ids),
                    parent_id,
                    str(sd.get("name", "worker")),
                    base + float(sd.get("rel", 0.0)),
                    float(sd.get("duration", 0.0)),
                    attrs,
                )
            )
        with self._lock:
            self._spans.extend(adopted)

    # -- reading -----------------------------------------------------------
    def to_list(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [s.as_dict() for s in self._spans]

    def to_jsonl(self) -> str:
        """JSON-lines export: one span object per line."""
        return "".join(
            json.dumps(d, sort_keys=True) + "\n" for d in self.to_list()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- internals ---------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)


class NullRecorder:
    """Recorder stand-in when tracing is off: every hook is a no-op."""

    enabled = False

    def trace(self, name: str, **attrs: Any) -> _NullHandle:
        return _NULL_HANDLE

    def current_id(self) -> Optional[int]:
        return None

    def ingest(self, span_dicts: Iterable[Dict[str, Any]], **kwargs: Any) -> None:
        pass

    def to_list(self) -> List[Dict[str, Any]]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def __len__(self) -> int:
        return 0


#: Shared no-op recorder (``ObsContext`` in ``off``/``metrics`` modes).
NULL_RECORDER = NullRecorder()


def worker_span(
    name: str, rel: float, duration: float, **attrs: Any
) -> Dict[str, Any]:
    """A span dict an exec worker records locally and ships to the driver.

    ``rel`` is the offset (seconds) from command receipt — the driver
    re-bases it onto its own clock at ingest time.
    """
    return {"name": name, "rel": rel, "duration": duration, "attrs": attrs}
