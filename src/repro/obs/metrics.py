"""Counters, gauges and fixed-bucket histograms with consistent snapshots.

One :class:`MetricsRegistry` per run (owned by the run's ``ObsContext``).
Instruments are keyed by ``(name, sorted(labels))`` and created on first
request, so call sites can re-request the same instrument cheaply or bind it
once at construction.  All instruments share the registry's single lock:
updates are serialized, and :meth:`MetricsRegistry.snapshot` reads every
value under that same lock, so a snapshot is a consistent cut — no
half-updated histogram (count bumped, sum not yet) can be observed.

Pull-style collection is supported through :meth:`MetricsRegistry.gauge_fn`:
a callable evaluated at snapshot time (kernel cache sizes, queue depth,
exec-health counters).  Gauge callables must not call back into the
registry — they run under its lock.

Exposition: :meth:`to_json` (plain dict) and :meth:`to_prometheus`
(text format 0.0.4 — ``_bucket``/``_sum``/``_count`` series with cumulative
``le`` buckets).  Stdlib-only.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Latency buckets (seconds): 100µs .. 10s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Size/count buckets (batch sizes, fan-outs): powers of two.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    512,
    1024,
    4096,
)

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> _Key:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram (cumulative exposition, Prometheus-style)."""

    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, buckets: Sequence[float]) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be sorted and distinct")
        self._lock = lock
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        # counts[i] = observations <= buckets[i] exclusive of lower buckets;
        # counts[-1] = observations above the last bound (the +Inf bucket).
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative per-bucket counts, ending with the +Inf total."""
        out: List[int] = []
        acc = 0
        for c in self.counts:
            acc += c
            out.append(acc)
        return out


class _NullInstrument:
    """No-op counter/gauge/histogram for the off registry."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative(self) -> List[int]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _fmt_labels(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """Registry of named instruments with snapshot-consistent reads."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[_Key, Counter] = {}
        self._gauges: Dict[_Key, Gauge] = {}
        self._histograms: Dict[_Key, Histogram] = {}
        self._gauge_fns: Dict[_Key, Callable[[], float]] = {}

    # -- instrument accessors (get-or-create) ------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(self._lock)
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(self._lock)
        return inst

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = _key(name, labels)
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(
                    self._lock, buckets or DEFAULT_LATENCY_BUCKETS
                )
        return inst

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: Any) -> None:
        """Register a pull-style gauge evaluated at snapshot time."""
        with self._lock:
            self._gauge_fns[_key(name, labels)] = fn

    # -- reading -----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A consistent cut of every instrument, as plain data."""
        with self._lock:
            counters = {k: c.value for k, c in self._counters.items()}
            gauges = {k: g.value for k, g in self._gauges.items()}
            for k, fn in self._gauge_fns.items():
                try:
                    gauges[k] = float(fn())
                except Exception:
                    gauges[k] = float("nan")
            histograms = {
                k: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for k, h in self._histograms.items()
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_json(self) -> Dict[str, Any]:
        """JSON exposition: ``{kind: [{name, labels, ...value}]}``."""
        snap = self.snapshot()
        out: Dict[str, List[Dict[str, Any]]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for (name, labels), value in sorted(snap["counters"].items()):
            out["counters"].append(
                {"name": name, "labels": dict(labels), "value": value}
            )
        for (name, labels), value in sorted(snap["gauges"].items()):
            out["gauges"].append(
                {"name": name, "labels": dict(labels), "value": value}
            )
        for (name, labels), h in sorted(snap["histograms"].items()):
            out["histograms"].append(
                {"name": name, "labels": dict(labels), **h}
            )
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4)."""
        snap = self.snapshot()
        lines: List[str] = []
        seen_type: set = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_type:
                seen_type.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), value in sorted(snap["counters"].items()):
            type_line(name, "counter")
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")
        for (name, labels), value in sorted(snap["gauges"].items()):
            type_line(name, "gauge")
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")
        for (name, labels), h in sorted(snap["histograms"].items()):
            type_line(name, "histogram")
            acc = 0
            for bound, count in zip(h["buckets"], h["counts"]):
                acc += count
                le = _fmt_labels(labels, f'le="{_fmt_value(float(bound))}"')
                lines.append(f"{name}_bucket{le} {acc}")
            acc += h["counts"][-1] if h["counts"] else 0
            inf = _fmt_labels(labels, 'le="+Inf"')
            lines.append(f"{name}_bucket{inf} {acc}")
            lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(h['sum'])}")
            lines.append(f"{name}_count{_fmt_labels(labels)} {h['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


class NullMetricsRegistry:
    """Registry stand-in when metrics are off: every instrument is a no-op."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels: Any) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self) -> Dict[str, Any]:
        return {"counters": [], "gauges": [], "histograms": []}

    def to_prometheus(self) -> str:
        return ""


#: Shared no-op registry (``ObsContext`` in ``off`` mode).
NULL_METRICS = NullMetricsRegistry()
