"""State-id codecs: hashable problem states <-> contiguous integer ids.

Dense DP tables are NumPy arrays indexed by state id; the id of a state is
its position in the problem's declared (ordered) state tuple.  The ordering
is load-bearing: arg-reductions break ties towards the lowest id, and the
scalar fallback path iterates states in the same order, which is what makes
the two backends produce identical labels.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Sequence, Tuple

import numpy as np

__all__ = ["StateSpace", "summary_as_dict"]


class StateSpace:
    """An ordered, finite set of hashable states with contiguous ids."""

    __slots__ = ("states", "index")

    def __init__(self, states: Sequence[Hashable]) -> None:
        self.states: Tuple[Hashable, ...] = tuple(states)
        self.index: Dict[Hashable, int] = {s: i for i, s in enumerate(self.states)}
        if len(self.index) != len(self.states):
            raise ValueError(f"duplicate states in state space: {self.states!r}")
        if not self.states:
            raise ValueError("state space must not be empty")

    def __len__(self) -> int:
        return len(self.states)

    def __contains__(self, state: Hashable) -> bool:
        return state in self.index

    def encode(self, state: Hashable) -> int:
        return self.index[state]

    def decode(self, idx: int) -> Hashable:
        return self.states[idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateSpace({self.states!r})"


def summary_as_dict(summary: Any, space: StateSpace, zero: Any) -> dict:
    """Normalise a cluster summary to the dict-table form of the scalar path.

    Dense summaries hold a ``"dense"`` array; scalar summaries hold a
    ``"table"`` dict keyed by state (vectors) or state pairs (matrices).
    Zero-valued (infeasible) entries are dropped, matching the scalar path,
    so both backends' summaries normalise to equal dicts.
    """
    if "table" in summary:
        return dict(summary["table"])
    dense = summary["dense"]
    states = space.states
    if summary["kind"] == "vec":
        (idx,) = np.nonzero(dense != zero)
        return {states[i]: dense[i].item() for i in idx}
    rows, cols = np.nonzero(dense != zero)
    return {(states[a], states[b]): dense[a, b].item() for a, b in zip(rows, cols)}


def encode_vec(table: dict, space: StateSpace, zero: Any, dtype: Any) -> np.ndarray:
    """Dense (S,) array from a dict vector table (missing entries = zero)."""
    vec = np.full(len(space), zero, dtype=dtype)
    for state, val in table.items():
        vec[space.encode(state)] = val
    return vec


def encode_mat(table: dict, space: StateSpace, zero: Any, dtype: Any) -> np.ndarray:
    """Dense (S, S) array from a dict matrix table (missing entries = zero)."""
    mat = np.full((len(space), len(space)), zero, dtype=dtype)
    for (a, b), val in table.items():
        mat[space.encode(a), space.encode(b)] = val
    return mat
