"""Dense tensor enumeration of a :class:`~repro.dp.problem.FiniteStateDP`.

The dense solver needs the problem's local rules as arrays:

* ``init(v)``      — vector ``I[acc]`` of initial accumulator values,
* ``transition(v, edge)`` — tensor ``T[acc, child_state, acc']`` of the
  values yielded when absorbing a child,
* ``finalize(v)``  — matrix ``F[acc, state]`` mapping final accumulators to
  node states,
* ``virtual_root()`` — vector ``R[state]`` of virtual-root multipliers.

Each array is enumerated by calling the problem's scalar methods over the
declared accumulator/state spaces.  When several yields target the same cell
they are merged exactly like the scalar path's ``_merge`` (first-wins under
``prefer`` for selective semirings, ``plus``-accumulated otherwise), so the
dense tables encode the same candidate set in the same tie-break order.

Enumeration costs ``O(|acc| * |states|)`` scalar calls per (node, edge).
Problems whose rules do not depend on the full node/edge payload declare
cache keys (:meth:`FiniteStateDP.transition_key` and friends); a returned
hashable key caches the built array so the cost is paid once per distinct
key instead of once per tree node — for most Table-1 problems that is once
per edge kind for the whole solve.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.dp.kernels.semiring_kernels import SemiringKernel
from repro.dp.kernels.statespace import StateSpace
from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput

__all__ = ["ProblemTensors", "UndeclaredStateError"]


class UndeclaredStateError(KeyError):
    """A problem yielded an accumulator/state outside its declared space."""


class ProblemTensors:
    """Builds and caches the dense rule arrays of one problem instance."""

    def __init__(
        self,
        problem: FiniteStateDP,
        kernel: SemiringKernel,
        sspace: StateSpace,
        aspace: StateSpace,
    ):
        self.problem = problem
        self.kernel = kernel
        self.sspace = sspace
        self.aspace = aspace
        self._init_cache: Dict[Hashable, np.ndarray] = {}
        self._trans_cache: Dict[Hashable, np.ndarray] = {}
        self._fin_cache: Dict[Hashable, np.ndarray] = {}
        self._vroot: Optional[np.ndarray] = None
        # Zero-filled templates: ndarray.copy() is several times cheaper than
        # np.full on the tiny arrays built here (hot on cache misses).
        self._templates: Dict[Tuple[int, ...], np.ndarray] = {}
        # Affine finalize decompositions F(v) = base + w * mask, keyed by the
        # problem's structural key; only sound for the tropical kernels
        # (float cells, selective first-wins merges).
        self.affine_enabled: bool = kernel.selective and kernel.dtype.kind == "f"
        self._affine_cache: Dict[Hashable, Optional[Tuple[np.ndarray, np.ndarray]]] = {}

    # ------------------------------------------------------------------ #

    def _fill(self, shape, cells: Dict[Any, Any]) -> np.ndarray:
        """Dense array from merged ``{index: value}`` cells."""
        template = self._templates.get(shape)
        if template is None:
            template = self.kernel.full(shape)
            self._templates[shape] = template
        arr = template.copy()
        for idx, val in cells.items():
            arr[idx] = val
        return arr

    def _merge_cell(self, cells: Dict[Any, Any], idx, val: Any) -> None:
        """Scalar-path ``_merge`` semantics on one staged cell.

        Merging happens on plain Python scalars (cheap) before the single
        array-fill pass of :meth:`_fill`.
        """
        sr = self.problem.semiring
        if sr.is_zero(val):
            return
        old = cells.get(idx)
        if old is None:
            cells[idx] = val
        elif sr.selective:
            if sr.prefer(val, old):
                cells[idx] = val
        else:
            cells[idx] = sr.plus(old, val)

    def _acc_index(self, acc: Hashable, context: str) -> int:
        try:
            return self.aspace.index[acc]
        except KeyError:
            raise UndeclaredStateError(
                f"{self.problem.name}: {context} yielded accumulator state {acc!r} "
                f"not listed in acc_states {self.aspace.states!r}"
            ) from None

    def _state_index(self, state: Hashable, context: str) -> int:
        try:
            return self.sspace.index[state]
        except KeyError:
            raise UndeclaredStateError(
                f"{self.problem.name}: {context} yielded node state {state!r} "
                f"not listed in states {self.sspace.states!r}"
            ) from None

    # ------------------------------------------------------------------ #

    def init_vec(self, v: NodeInput) -> np.ndarray:
        """``I[1, acc]`` — the merged yields of ``node_init(v)``."""
        key = self.problem.init_key(v)
        if key is not None:
            cached = self._init_cache.get(key)
            if cached is not None:
                return cached
        cells: Dict[Any, Any] = {}
        for acc, val in self.problem.node_init(v):
            self._merge_cell(cells, self._acc_index(acc, "node_init"), val)
        vec = self._fill((1, len(self.aspace)), {(0, i): x for i, x in cells.items()})
        if key is not None:
            self._init_cache[key] = vec
        return vec

    def transition_tensor(self, v: NodeInput, edge: Optional[EdgeInfo]) -> np.ndarray:
        """``T[acc, child_state, acc']`` — one child absorption step."""
        key = self.problem.transition_key(v, edge)
        if key is not None:
            cached = self._trans_cache.get(key)
            if cached is not None:
                return cached
        A, S = len(self.aspace), len(self.sspace)
        transition = self.problem.transition
        cells: Dict[Any, Any] = {}
        for ai, acc in enumerate(self.aspace.states):
            for si, child_state in enumerate(self.sspace.states):
                for new_acc, val in transition(v, acc, child_state, edge):
                    idx = self._acc_index(new_acc, "transition")
                    self._merge_cell(cells, (ai, si, idx), val)
        tensor = self._fill((A, S, A), cells)
        if key is not None:
            self._trans_cache[key] = tensor
        return tensor

    def finalize_mat(self, v: NodeInput) -> np.ndarray:
        """``F[acc, state]`` — the merged yields of ``finalize(v, acc)``."""
        if self.affine_enabled:
            aff = self.problem.finalize_affine_key(v)
            if aff is not None:
                pair = self.affine_pair(aff[0], v)
                if pair is not None:
                    base, mask = pair
                    return base + aff[1] * mask
        key = self.problem.finalize_key(v)
        if key is not None:
            cached = self._fin_cache.get(key)
            if cached is not None:
                return cached
        mat = self._enumerate_finalize(v)
        if key is not None:
            self._fin_cache[key] = mat
        return mat

    def _enumerate_finalize(self, v: NodeInput) -> np.ndarray:
        finalize = self.problem.finalize
        cells: Dict[Any, Any] = {}
        for ai, acc in enumerate(self.aspace.states):
            for state, val in finalize(v, acc):
                self._merge_cell(cells, (ai, self._state_index(state, "finalize")), val)
        return self._fill((len(self.aspace), len(self.sspace)), cells)

    def affine_pair(self, key: Hashable, v: NodeInput) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(base, mask)`` with ``F(v) = base + w * mask``, or ``None``.

        Built once per structural ``key`` by enumerating the problem's two
        probe nodes (``w = 0`` and ``w = 1``); ``None`` (cached) when the
        probes' feasibility patterns disagree, i.e. the declared key is not
        actually affine — callers then fall back to plain enumeration.
        """
        try:
            return self._affine_cache[key]
        except KeyError:
            pass
        probe = self.problem.finalize_affine_probe
        f0 = self._enumerate_finalize(probe(v, 0.0))
        f1 = self._enumerate_finalize(probe(v, 1.0))
        finite0 = np.isfinite(f0)
        if bool((finite0 == np.isfinite(f1)).all()):
            mask = np.zeros_like(f0)
            np.subtract(f1, f0, out=mask, where=finite0)  # inf cells stay 0
            pair = (f0, mask)
        else:
            pair = None
        self._affine_cache[key] = pair
        return pair

    def virtual_root_vec(self) -> np.ndarray:
        """``R[state]`` — virtual-root multipliers (cached, node-independent)."""
        if self._vroot is None:
            vec = self.kernel.full(len(self.sspace))
            for si, state in enumerate(self.sspace.states):
                vec[si] = self.kernel.dtype.type(self.problem.virtual_root_value(state))
            self._vroot = vec
        return self._vroot
