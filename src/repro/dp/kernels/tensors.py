"""Dense tensor enumeration of a :class:`~repro.dp.problem.FiniteStateDP`.

The dense solver needs the problem's local rules as arrays:

* ``init(v)``      — vector ``I[acc]`` of initial accumulator values,
* ``transition(v, edge)`` — tensor ``T[acc, child_state, acc']`` of the
  values yielded when absorbing a child,
* ``finalize(v)``  — matrix ``F[acc, state]`` mapping final accumulators to
  node states,
* ``virtual_root()`` — vector ``R[state]`` of virtual-root multipliers.

Each array is enumerated by calling the problem's scalar methods over the
declared accumulator/state spaces.  When several yields target the same cell
they are merged exactly like the scalar path's ``_merge`` (first-wins under
``prefer`` for selective semirings, ``plus``-accumulated otherwise), so the
dense tables encode the same candidate set in the same tie-break order.

Enumeration costs ``O(|acc| * |states|)`` scalar calls per (node, edge).
Problems whose rules do not depend on the full node/edge payload declare
cache keys (:meth:`FiniteStateDP.transition_key` and friends); a returned
hashable key caches the built array so the cost is paid once per distinct
key instead of once per tree node — for most Table-1 problems that is once
per edge kind for the whole solve.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.dp.kernels.semiring_kernels import SemiringKernel
from repro.dp.kernels.statespace import StateSpace
from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput

__all__ = ["LRUCache", "ProblemTensors", "UndeclaredStateError", "default_cache_entries"]

#: Default bound on each payload-value-keyed rule cache.  Their keys embed
#: payload values (a node's weight, an edge's clause weight vector), so a
#: long-lived solver fed a stream of distinct weights would otherwise grow
#: them without bound; 4096 entries keeps every full solve in the test/bench
#: range fully cached while bounding a serving process at a few MB per cache.
DEFAULT_CACHE_ENTRIES = 4096


def default_cache_entries() -> Optional[int]:
    """The value-cache bound from ``REPRO_DP_CACHE_ENTRIES`` (0 = unbounded)."""
    raw = os.environ.get("REPRO_DP_CACHE_ENTRIES")
    if raw is None:
        return DEFAULT_CACHE_ENTRIES
    try:
        entries = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_DP_CACHE_ENTRIES must be an integer, got {raw!r}"
        ) from None
    return entries if entries > 0 else None


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``entries=None`` means unbounded (a plain dict with extra bookkeeping).
    Lookups via :meth:`get` refresh recency; inserts past the bound evict the
    least recently used entry and count it in :attr:`evictions`.  ``None`` is
    not a legal cached value — :meth:`get` uses it as its miss sentinel.
    """

    __slots__ = ("_data", "entries", "evictions", "hits", "misses")

    def __init__(self, entries: Optional[int] = None) -> None:
        if entries is not None and entries < 1:
            raise ValueError(f"LRUCache entries must be >= 1 or None, got {entries}")
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.entries = entries
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        val = self._data.get(key)
        if val is None:
            self.misses += 1
            return None
        self.hits += 1
        if self.entries is not None:
            self._data.move_to_end(key)
        return val

    def put(self, key: Hashable, value: Any) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if self.entries is not None:
            while len(data) > self.entries:
                data.popitem(last=False)
                self.evictions += 1

    def set_entries(self, entries: Optional[int]) -> None:
        """Re-bound the cache, evicting immediately if it shrank."""
        if entries is not None and entries < 1:
            raise ValueError(f"LRUCache entries must be >= 1 or None, got {entries}")
        self.entries = entries
        if entries is not None:
            while len(self._data) > entries:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data


class UndeclaredStateError(KeyError):
    """A problem yielded an accumulator/state outside its declared space."""


class ProblemTensors:
    """Builds and caches the dense rule arrays of one problem instance."""

    def __init__(
        self,
        problem: FiniteStateDP,
        kernel: SemiringKernel,
        sspace: StateSpace,
        aspace: StateSpace,
    ) -> None:
        self.problem = problem
        self.kernel = kernel
        self.sspace = sspace
        self.aspace = aspace
        entries = default_cache_entries()
        self._init_cache: LRUCache = LRUCache(entries)
        self._trans_cache: LRUCache = LRUCache(entries)
        self._fin_cache: LRUCache = LRUCache(entries)
        self._vroot: Optional[np.ndarray] = None
        # Zero-filled templates: ndarray.copy() is several times cheaper than
        # np.full on the tiny arrays built here (hot on cache misses).
        self._templates: Dict[Tuple[int, ...], np.ndarray] = {}
        # Affine decompositions ``table = base + sum_k w_k * mask_k``, keyed
        # by the problem's structural key; only sound for the tropical
        # kernels (float cells, selective first-wins merges).
        self.affine_enabled: bool = kernel.selective and kernel.dtype.kind == "f"
        # Problems that keep the base-class hooks pay no per-node dispatch.
        self.has_transition_affine: bool = self.affine_enabled and (
            type(problem).transition_affine_key is not FiniteStateDP.transition_affine_key
        )
        self.has_finalize_affine: bool = self.affine_enabled and (
            type(problem).finalize_affine_key is not FiniteStateDP.finalize_affine_key
        )
        self._affine_cache: Dict[Hashable, Optional[Tuple[np.ndarray, np.ndarray]]] = {}
        self._trans_affine_cache: Dict[
            Hashable, Optional[Tuple[np.ndarray, np.ndarray]]
        ] = {}
        #: Observability counters for the caching/recompose behaviour.  The
        #: incremental update path's contract — a weight-only edit inside one
        #: affine group re-*composes* tensors instead of re-*enumerating* the
        #: problem's scalar rules — is asserted against these in the tests.
        self.stats: Dict[str, int] = {
            "transition_enumerations": 0,
            "finalize_enumerations": 0,
            "affine_composes": 0,
        }

    # ------------------------------------------------------------------ #

    def clear_value_caches(self) -> None:
        """Drop the payload-value-keyed rule caches (init/transition/finalize).

        Their keys embed payload values (a node's weight, an edge's clause
        weight vector), so without the LRU bound a long-lived solver fed a
        stream of distinct weights — the incremental serving path — would
        grow them without bound.  Day to day the bound
        (``REPRO_DP_CACHE_ENTRIES`` / :meth:`set_value_cache_entries`) keeps
        them flat; :meth:`~repro.dynamic.IncrementalSolver.refresh` still
        calls this as its full release valve.  The affine probe caches are
        kept: they are keyed by *structural* keys, whose count is bounded by
        the problem's rule structure, and rebuilding them costs full rule
        enumerations.
        """
        self._init_cache.clear()
        self._trans_cache.clear()
        self._fin_cache.clear()

    def set_value_cache_entries(self, entries: Optional[int]) -> None:
        """Re-bound the three value-keyed caches (``None`` = unbounded).

        Shrinking evicts immediately, so a serving process can clamp its
        memory ceiling at startup regardless of the environment default.
        """
        self._init_cache.set_entries(entries)
        self._trans_cache.set_entries(entries)
        self._fin_cache.set_entries(entries)

    def value_cache_sizes(self) -> Dict[str, int]:
        """Current entry counts of the value-keyed caches (for soak asserts)."""
        return {
            "init": len(self._init_cache),
            "transition": len(self._trans_cache),
            "finalize": len(self._fin_cache),
        }

    def value_cache_evictions(self) -> int:
        """Total LRU evictions across the value-keyed caches."""
        return (
            self._init_cache.evictions
            + self._trans_cache.evictions
            + self._fin_cache.evictions
        )

    def value_cache_hits(self) -> int:
        """Total lookup hits across the value-keyed caches."""
        return self._init_cache.hits + self._trans_cache.hits + self._fin_cache.hits

    def value_cache_misses(self) -> int:
        """Total lookup misses across the value-keyed caches."""
        return (
            self._init_cache.misses
            + self._trans_cache.misses
            + self._fin_cache.misses
        )

    def _fill(self, shape: Tuple[int, ...], cells: Dict[Any, Any]) -> np.ndarray:
        """Dense array from merged ``{index: value}`` cells."""
        template = self._templates.get(shape)
        if template is None:
            template = self.kernel.full(shape)
            self._templates[shape] = template
        arr = template.copy()
        for idx, val in cells.items():
            arr[idx] = val
        return arr

    def _merge_cell(self, cells: Dict[Any, Any], idx: Any, val: Any) -> None:
        """Scalar-path ``_merge`` semantics on one staged cell.

        Merging happens on plain Python scalars (cheap) before the single
        array-fill pass of :meth:`_fill`.
        """
        sr = self.problem.semiring
        if sr.is_zero(val):
            return
        old = cells.get(idx)
        if old is None:
            cells[idx] = val
        elif sr.selective:
            if sr.prefer(val, old):
                cells[idx] = val
        else:
            cells[idx] = sr.plus(old, val)

    def _acc_index(self, acc: Hashable, context: str) -> int:
        try:
            return self.aspace.index[acc]
        except KeyError:
            raise UndeclaredStateError(
                f"{self.problem.name}: {context} yielded accumulator state {acc!r} "
                f"not listed in acc_states {self.aspace.states!r}"
            ) from None

    def _state_index(self, state: Hashable, context: str) -> int:
        try:
            return self.sspace.index[state]
        except KeyError:
            raise UndeclaredStateError(
                f"{self.problem.name}: {context} yielded node state {state!r} "
                f"not listed in states {self.sspace.states!r}"
            ) from None

    # ------------------------------------------------------------------ #

    def init_vec(self, v: NodeInput) -> np.ndarray:
        """``I[1, acc]`` — the merged yields of ``node_init(v)``."""
        key = self.problem.init_key(v)
        if key is not None:
            cached = self._init_cache.get(key)
            if cached is not None:
                return cached
        cells: Dict[Any, Any] = {}
        for acc, val in self.problem.node_init(v):
            self._merge_cell(cells, self._acc_index(acc, "node_init"), val)
        vec = self._fill((1, len(self.aspace)), {(0, i): x for i, x in cells.items()})
        if key is not None:
            self._init_cache.put(key, vec)
        return vec

    def transition_tensor(self, v: NodeInput, edge: Optional[EdgeInfo]) -> np.ndarray:
        """``T[acc, child_state, acc']`` — one child absorption step.

        Cache lookup by :meth:`~repro.dp.problem.FiniteStateDP.transition_key`
        comes first; on a miss the tensor is built from the affine
        decomposition when the problem declares one (one fused compose per
        distinct key instead of an ``O(A * S)`` scalar enumeration), else
        enumerated, and stored under the key either way.
        """
        key = self.problem.transition_key(v, edge)
        if key is not None:
            cached = self._trans_cache.get(key)
            if cached is not None:
                return cached
        tensor = None
        if self.has_transition_affine and edge is not None:
            aff = self.problem.transition_affine_key(v, edge)
            if aff is not None:
                pair = self.transition_affine_pair(aff[0], v, edge, aff[1])
                if pair is not None:
                    base, masks = pair
                    w = np.asarray([aff[1]], dtype=self.kernel.dtype).reshape(1, -1)
                    tensor = self.compose_affine(base, masks, w)[0]
        if tensor is None:
            tensor = self._enumerate_transition(v, edge)
        if key is not None:
            self._trans_cache.put(key, tensor)
        return tensor

    def _enumerate_transition(self, v: NodeInput, edge: Optional[EdgeInfo]) -> np.ndarray:
        self.stats["transition_enumerations"] += 1
        A, S = len(self.aspace), len(self.sspace)
        transition = self.problem.transition
        cells: Dict[Any, Any] = {}
        for ai, acc in enumerate(self.aspace.states):
            for si, child_state in enumerate(self.sspace.states):
                for new_acc, val in transition(v, acc, child_state, edge):
                    idx = self._acc_index(new_acc, "transition")
                    self._merge_cell(cells, (ai, si, idx), val)
        return self._fill((A, S, A), cells)

    def finalize_mat(self, v: NodeInput) -> np.ndarray:
        """``F[acc, state]`` — the merged yields of ``finalize(v, acc)``."""
        if self.has_finalize_affine:
            aff = self.problem.finalize_affine_key(v)
            if aff is not None:
                pair = self.finalize_affine_pair(aff[0], v, aff[1])
                if pair is not None:
                    base, masks = pair
                    w = np.asarray(
                        [self._as_weights(aff[1])], dtype=self.kernel.dtype
                    ).reshape(1, -1)
                    return self.compose_affine(base, masks, w)[0]
        key = self.problem.finalize_key(v)
        if key is not None:
            cached = self._fin_cache.get(key)
            if cached is not None:
                return cached
        mat = self._enumerate_finalize(v)
        if key is not None:
            self._fin_cache.put(key, mat)
        return mat

    def _enumerate_finalize(self, v: NodeInput) -> np.ndarray:
        self.stats["finalize_enumerations"] += 1
        finalize = self.problem.finalize
        cells: Dict[Any, Any] = {}
        for ai, acc in enumerate(self.aspace.states):
            for state, val in finalize(v, acc):
                self._merge_cell(cells, (ai, self._state_index(state, "finalize")), val)
        return self._fill((len(self.aspace), len(self.sspace)), cells)

    @staticmethod
    def _as_weights(w: Any) -> Tuple[float, ...]:
        """Normalise a declared affine parameter (scalar or vector) to a tuple."""
        if isinstance(w, tuple):
            return w
        return (float(w),)

    def _probe_masks(
        self, enumerate_probe: Callable[[Tuple[float, ...]], np.ndarray], arity: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(base, masks)`` from unit-weight probes, or ``None`` if not affine.

        ``enumerate_probe(weights)`` must return the dense table of the rule
        evaluated with the given weight vector.  The base is the all-zero
        probe; ``masks[k]`` is the unit probe ``e_k`` minus the base on
        feasible cells.  A probe whose feasibility (finite-cell) pattern
        differs from the base's means the declared key is not actually affine
        — the weights then change *which* cells are feasible, not just their
        values — and ``None`` is returned so callers fall back to plain
        enumeration.  Masks are zero on infeasible cells by construction, so
        composing ``base + w * mask`` never multiplies an infinity
        (``inf * 0 = nan`` cannot occur; :meth:`compose_affine` asserts it).
        """
        base = enumerate_probe((0.0,) * arity)
        finite0 = np.isfinite(base)
        masks = np.zeros((arity,) + base.shape, dtype=base.dtype)
        for k in range(arity):
            unit = tuple(1.0 if j == k else 0.0 for j in range(arity))
            fk = enumerate_probe(unit)
            if not bool((finite0 == np.isfinite(fk)).all()):
                return None
            np.subtract(fk, base, out=masks[k], where=finite0)  # inf cells stay 0
        if not bool(np.isfinite(masks).all()):  # cannot happen given the above
            raise FloatingPointError(
                f"{self.problem.name}: affine probe produced a non-finite mask"
            )
        return base, masks

    def finalize_affine_pair(
        self, key: Hashable, v: NodeInput, w: Any
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(base, masks)`` with ``F(v) = base + Σ_k w_k * masks[k]``, or ``None``.

        Built once per structural ``key`` by enumerating the problem's probe
        nodes (the all-zero weight vector and each unit vector); scalar
        parameters are probed with plain floats (``0.0`` / ``1.0``) for
        backward compatibility with single-weight problems.  ``None``
        (cached) when a probe's feasibility pattern disagrees with the
        base's, i.e. the declared key is not actually affine — callers then
        fall back to plain enumeration.
        """
        try:
            return self._affine_cache[key]
        except KeyError:
            pass
        probe = self.problem.finalize_affine_probe
        scalar = not isinstance(w, tuple)
        arity = 1 if scalar else len(w)

        def enumerate_probe(weights: Tuple[float, ...]) -> np.ndarray:
            w = weights[0] if scalar else weights
            return self._enumerate_finalize(probe(v, w))

        pair = self._probe_masks(enumerate_probe, arity)
        self._affine_cache[key] = pair
        return pair

    def transition_affine_pair(
        self, key: Hashable, v: NodeInput, edge: EdgeInfo, weights: Tuple[float, ...]
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(base, masks)`` with ``T(v, edge) = base + Σ_k w_k * masks[k]``.

        The transition analogue of :meth:`finalize_affine_pair`: built once
        per structural ``key`` from the problem's
        :meth:`~repro.dp.problem.FiniteStateDP.transition_affine_probe`
        pairs, ``None`` (cached) when the probes show the key is not affine.
        ``weights`` is the declaring edge's weight vector; its length fixes
        the probe arity, and every other edge sharing ``key`` must declare
        the same arity (checked in :meth:`compose_affine` by shape).
        """
        try:
            return self._trans_affine_cache[key]
        except KeyError:
            pass
        probe = self.problem.transition_affine_probe

        def enumerate_probe(ws: Tuple[float, ...]) -> np.ndarray:
            pv, pe = probe(v, edge, ws)
            return self._enumerate_transition(pv, pe)

        pair = self._probe_masks(enumerate_probe, len(weights))
        self._trans_affine_cache[key] = pair
        return pair

    def compose_affine(
        self, base: np.ndarray, masks: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """``out[i] = base + Σ_k weights[i, k] * masks[k]`` for a weight batch.

        The sum is accumulated left to right (clause order), which together
        with IEEE-754 ``x + ±0.0 == x`` makes the composed table bit-identical
        to the scalar path's per-clause accumulation.

        No NaN can flow out of the composition: semiring identity cells
        (``±inf``, the unreachable states) only ever meet zero mask cells
        (:meth:`_probe_masks` zeroes the masks there and raises on non-finite
        masks), so ``inf * 0`` never occurs as long as the weights are
        finite — which is asserted here, on the small ``(n, K)`` weight
        array rather than the composed tables.
        """
        self.stats["affine_composes"] += 1
        n, k = weights.shape
        if masks.shape[0] != k:
            raise ValueError(
                f"{self.problem.name}: affine weight vector has {k} entries but the "
                f"structural key was probed with arity {masks.shape[0]}; every rule "
                "sharing one key must declare the same number of weights"
            )
        if k == 0:
            return np.broadcast_to(base, (n,) + base.shape)
        if not bool(np.isfinite(weights).all()):
            raise FloatingPointError(
                f"{self.problem.name}: non-finite affine weight — composing it "
                "against a semiring identity cell would produce inf * 0 = nan"
            )
        wshape = (n,) + (1,) * base.ndim
        out = base[None] + weights[:, 0].reshape(wshape) * masks[0][None]
        for j in range(1, k):
            out += weights[:, j].reshape(wshape) * masks[j][None]
        return out

    def virtual_root_vec(self) -> np.ndarray:
        """``R[state]`` — virtual-root multipliers (cached, node-independent)."""
        if self._vroot is None:
            vec = self.kernel.full(len(self.sspace))
            for si, state in enumerate(self.sspace.states):
                vec[si] = self.kernel.dtype.type(self.problem.virtual_root_value(state))
            self._vroot = vec
        return self._vroot
