"""Per-semiring NumPy array operations (the actual vectorized kernels).

A :class:`SemiringKernel` lifts a scalar :class:`~repro.dp.semiring.Semiring`
to dense arrays:

* ``combine(a, b)`` — elementwise/broadcast ``times`` (addition for the
  tropical semirings, modular multiplication for counting),
* ``reduce(arr, axis)`` — ``plus`` over one or more axes (min / max / sum),
* ``argreduce(arr, axis)`` — for selective semirings, the index of the first
  optimum along ``axis`` (ties break towards the lowest index, matching the
  scalar path's first-wins merge).

Bit-identical parity with the scalar path is part of the contract:

* tropical kernels associate float additions as ``a ⊗ (b ⊗ c)`` exactly like
  the scalar solver's ``times(a, times(b, c))`` — callers must combine the
  *inner* pair first;
* affine rule composition (``base + Σ_k w_k * mask_k``, see
  :meth:`~repro.dp.kernels.tensors.ProblemTensors.compose_affine`) stays
  bit-identical to the scalar path's per-term accumulation because the terms
  are added left to right in the same order and the extra ``w * 0`` terms of
  absent/unsatisfied entries are IEEE-754 identities (``x + ±0.0 == x``);
* the counting kernel reduces int64 products with a single modulo after the
  sum, which is exact (values stay far below 2**63 for moduli up to ~3e9).

``kernel_for(semiring)`` maps a semiring to its kernel via the semiring's
``kernel``/``modulus`` metadata and returns ``None`` for exotic semirings the
dense path cannot represent, which makes the solver fall back to the scalar
path.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple, Union

import numpy as np

from repro.dp.semiring import Semiring

__all__ = [
    "SemiringKernel",
    "MinPlusKernel",
    "MaxPlusKernel",
    "SumProductKernel",
    "CountingModKernel",
    "kernel_for",
]

Axis = Union[int, Tuple[int, ...]]


class SemiringKernel:
    """Array-level semiring operations; subclasses fix dtype and reductions."""

    selective: bool = False
    dtype: np.dtype = np.dtype(np.float64)

    #: Optional in-place variant ``combine_inplace(a, out)`` writing into
    #: ``out`` (which must already have the broadcast shape); ``None`` when
    #: the operation cannot run in place (e.g. modular products).
    combine_inplace: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None

    def __init__(self, semiring: Semiring) -> None:
        self.semiring = semiring
        self.zero = self.dtype.type(semiring.zero)
        self.one = self.dtype.type(semiring.one)

    def full(self, shape: Any, fill: Any = None) -> np.ndarray:
        """A new array filled with ``fill`` (default: the semiring zero)."""
        return np.full(shape, self.zero if fill is None else fill, dtype=self.dtype)

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Broadcast ``times`` of two arrays."""
        raise NotImplementedError

    def reduce(self, arr: np.ndarray, axis: Axis) -> np.ndarray:
        """``plus`` over ``axis`` (may be a tuple of axes)."""
        raise NotImplementedError

    def argreduce(self, arr: np.ndarray, axis: int) -> np.ndarray:
        """First-optimum indices along a single axis (selective only)."""
        raise NotImplementedError(f"{type(self).__name__} is not selective")

    def argreduce_flat(self, arr: np.ndarray) -> int:
        """Index of the first optimum of a 1-d array (selective only)."""
        raise NotImplementedError(f"{type(self).__name__} is not selective")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.semiring.name})"


class MinPlusKernel(SemiringKernel):
    """Minimisation: plus = min, times = +, zero = +inf."""

    selective = True

    def __init__(self, semiring: Semiring) -> None:
        super().__init__(semiring)
        self.combine_inplace = self._combine_inplace

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.add(a, b)

    def _combine_inplace(self, a: np.ndarray, out: np.ndarray) -> np.ndarray:
        return np.add(a, out, out=out)

    def reduce(self, arr: np.ndarray, axis: Axis) -> np.ndarray:
        return arr.min(axis=axis)

    def argreduce(self, arr: np.ndarray, axis: int) -> np.ndarray:
        return arr.argmin(axis=axis)

    def argreduce_flat(self, arr: np.ndarray) -> int:
        return int(arr.argmin())


class MaxPlusKernel(SemiringKernel):
    """Maximisation: plus = max, times = +, zero = -inf."""

    selective = True

    def __init__(self, semiring: Semiring) -> None:
        super().__init__(semiring)
        self.combine_inplace = self._combine_inplace

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.add(a, b)

    def _combine_inplace(self, a: np.ndarray, out: np.ndarray) -> np.ndarray:
        return np.add(a, out, out=out)

    def reduce(self, arr: np.ndarray, axis: Axis) -> np.ndarray:
        return arr.max(axis=axis)

    def argreduce(self, arr: np.ndarray, axis: int) -> np.ndarray:
        return arr.argmax(axis=axis)

    def argreduce_flat(self, arr: np.ndarray) -> int:
        return int(arr.argmax())


class SumProductKernel(SemiringKernel):
    """Plain counting / probability propagation in float64.

    Counts are exact up to 2**53; float summation order may differ from the
    scalar path's left fold, so this kernel trades bit-parity on
    pathological float inputs for speed — none of the shipped problems use
    it with floats (the counting problems use :class:`CountingModKernel`).
    """

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.multiply(a, b)

    def reduce(self, arr: np.ndarray, axis: Axis) -> np.ndarray:
        return arr.sum(axis=axis)


class CountingModKernel(SemiringKernel):
    """Counting modulo k in int64, exact for moduli up to ~3e9."""

    dtype = np.dtype(np.int64)

    def __init__(self, semiring: Semiring) -> None:
        super().__init__(semiring)
        if semiring.modulus is None or semiring.modulus < 2:
            raise ValueError(f"counting kernel needs a modulus >= 2, got {semiring.modulus!r}")
        self.modulus = int(semiring.modulus)
        if self.modulus > 3_037_000_499:  # floor(sqrt(2**63 - 1))
            raise ValueError(f"modulus {self.modulus} too large for exact int64 products")

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.multiply(a, b) % self.modulus

    def reduce(self, arr: np.ndarray, axis: Axis) -> np.ndarray:
        return arr.sum(axis=axis) % self.modulus


def kernel_for(semiring: Semiring) -> Optional[SemiringKernel]:
    """The dense kernel for ``semiring``, or ``None`` if it has no dense form."""
    name = getattr(semiring, "kernel", None)
    if name == "min-plus":
        return MinPlusKernel(semiring)
    if name == "max-plus":
        return MaxPlusKernel(semiring)
    if name == "sum-product":
        return SumProductKernel(semiring)
    if name == "counting":
        try:
            return CountingModKernel(semiring)
        except ValueError:
            return None
    return None
