"""Hole-batched, layer-scheduled dense per-cluster solver (the hot path).

Mirrors the scalar :class:`~repro.dp.local_solver.FiniteStateClusterSolver`
element-tree walk, with four structural speedups:

* **Hole batching.**  The scalar path summarises an indegree-one cluster by
  walking its element tree once per hole state.  Here every element carries a
  table of shape ``(H, S)`` — one row per hole state — and a single walk
  produces the full (top state × below state) summary matrix.  Elements whose
  subtree does not contain the hole carry a broadcastable ``(1, S)`` row.
* **Batched semiring steps.**  Absorbing one child is one broadcast +
  reduction over a ``(H, A, S, A')`` candidate array instead of three nested
  Python loops; arg-reductions over the flattened ``(A * S)`` axis recover
  backpointers, and their first-minimum tie-break equals the scalar path's
  first-wins merge over the same (acc-major, child-state-minor) order.
* **Single traversal per problem.**  Backpointers are recorded *during* the
  bottom-up pass (per hole row), so the top-down pass only walks the stored
  traces instead of re-running the local solve per cluster, as the scalar
  path does.
* **Level scheduling across the layer.**  The engine hands the solver one
  whole layer of clusters at a time (its parallel unit); all node elements
  off the hole paths are grouped by element-tree height and by structural
  signature (transition/finalize cache keys), and each group is solved as
  one stacked array program — thousands of per-node table builds become a
  handful of broadcasts per layer.
* **Layer-wide hole paths.**  The per-cluster hole-path walks are batched
  the same way: the ``(H, S)`` hole tables of all indegree-one clusters in
  a layer are stacked into one ``(C, H, S)`` tensor, path elements are
  grouped by (depth along the path, rule signature) — depth plays the role
  height plays off the paths — and each group runs through the semiring
  kernels as one ``(C, H, ...)`` array program, with traces recorded per
  cluster row so the top-down labeling pass is unchanged.  Affine rule
  decompositions (finalize *and* transition) let nodes whose rules differ
  only in a weight vector share one group: their tables are composed as
  ``base + Σ_k w_k * mask_k`` from per-structural-key probe tensors.

Summaries are ``{"kind": "vec"|"mat", "dense": ndarray}``; ``vec`` is a
``(S,)`` vector over top-node states, ``mat`` a ``(S, S)`` matrix over (top
state, below state).  Infeasible cells hold the semiring zero, which is what
dict-table summaries express by omission, so
:func:`~repro.dp.kernels.statespace.summary_as_dict` normalises both forms
to equal dicts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.clustering.model import Element
from repro.dp.kernels.semiring_kernels import SemiringKernel, kernel_for
from repro.dp.kernels.statespace import StateSpace, encode_mat, encode_vec
from repro.dp.kernels.tensors import ProblemTensors
from repro.dp.problem import ClusterContext, FiniteStateDP

__all__ = ["DenseClusterKernel", "HOLE"]

#: Sentinel for the hole pseudo-child (the subtree below the incoming edge).
HOLE: Element = ("hole", None)


class _Trace:
    """Per-element backpointers of one bottom-up solve (one row per hole state)."""

    __slots__ = ("kind", "children", "steps", "fin", "child", "bp", "vec")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.children: Tuple[Tuple[Element, Any], ...] = ()
        self.steps: List[np.ndarray] = []      # per absorbed child: (h, A) flat (a*S+s) ids
        self.fin: Optional[np.ndarray] = None  # (h, S) acc ids
        self.child: Optional[Element] = None   # mat elements: the single child (HOLE: hole)
        self.bp: Optional[np.ndarray] = None   # mat elements: (h, S) below-state ids
        self.vec: Optional[np.ndarray] = None  # (h, S) final values (feasibility checks)

    def row(self, arr: np.ndarray, h: int) -> np.ndarray:
        """Row ``h`` of a trace array (row 0 for off-hole-path broadcasts)."""
        return arr[h if arr.shape[0] > 1 else 0]


class DenseClusterKernel:
    """Dense implementation of the three per-cluster operations."""

    def __init__(self, problem: FiniteStateDP) -> None:
        kernel = kernel_for(problem.semiring)
        if kernel is None:
            raise ValueError(
                f"{problem.name}: semiring {problem.semiring.name!r} has no dense kernel"
            )
        if getattr(problem, "acc_states", None) is None:
            raise ValueError(f"{problem.name}: acc_states not declared; dense path unavailable")
        self.problem = problem
        self.kernel: SemiringKernel = kernel
        self.sspace = StateSpace(problem.states)
        self.aspace = StateSpace(problem.acc_states)
        self.tensors = ProblemTensors(problem, kernel, self.sspace, self.aspace)
        self.selective = problem.semiring.selective
        # Hoisted hook-override flags (hot in _node_signature).
        self._trans_affine = self.tensors.has_transition_affine
        self._fin_affine = self.tensors.has_finalize_affine
        # Hole pseudo-child tables: all hole states at once (batched summarize
        # of indegree-one clusters) resp. one row per fixed hole state.
        S = len(self.sspace)
        eye = self.kernel.full((S, S))
        np.fill_diagonal(eye, self.kernel.one)
        self._hole_batch = eye
        self._hole_rows = [eye[h : h + 1] for h in range(S)]
        #: Backpointers recorded by summarize, keyed by cluster id; consumed
        #: by assign_internal_labels during the top-down pass.
        #:
        #: This memo is deliberately *persistent* across solves: it is the
        #: per-cluster bottom-up state the incremental update path
        #: (:mod:`repro.dynamic`) relies on.  A partial re-solve overwrites
        #: exactly the re-summarized clusters' traces, so a later top-down
        #: visit of an *untouched* cluster (re-labeled only because a
        #: boundary label changed) replays the traces of the solve that last
        #: computed it — which is still consistent, because a cluster is only
        #: skipped by the partial bottom-up when neither its payloads nor its
        #: element summaries changed.  Droppable via :meth:`forget_traces`,
        #: and boundable via :meth:`set_cache_limits`: evicting a trace is
        #: always safe because :meth:`assign_internal_labels` transparently
        #: re-runs the local solve for a missing cluster.
        self._traces: "OrderedDict[int, Dict[Element, Optional[_Trace]]]" = OrderedDict()
        self._trace_entries: Optional[int] = None
        #: Traces dropped by the LRU bound (soak-test observability).
        self.trace_evictions: int = 0
        #: Top-down trace-memo lookups served from / missing in the memo
        #: (a miss transparently re-runs the cluster's local solve).
        self.trace_hits: int = 0
        self.trace_misses: int = 0

    # ------------------------------------------------------------------ #
    # ClusterDP operations
    # ------------------------------------------------------------------ #

    def summarize(self, ctx: ClusterContext) -> Any:
        return self._summarize_one(ctx, {}, {})

    def has_trace(self, cid: int) -> bool:
        """Whether the bottom-up memo still holds cluster ``cid``'s traces."""
        return cid in self._traces

    def forget_traces(self, cids: Optional[Iterable[int]] = None) -> None:
        """Drop the bottom-up trace memo (all clusters, or just ``cids``).

        Frees the per-cluster backpointer arrays; a later
        :meth:`assign_internal_labels` on a forgotten cluster transparently
        re-runs its local solve against the current tree payloads.
        """
        if cids is None:
            self._traces.clear()
        else:
            for cid in cids:
                self._traces.pop(cid, None)

    def set_cache_limits(
        self,
        *,
        value_entries: Optional[int] = None,
        trace_entries: Optional[int] = None,
    ) -> None:
        """Bound the kernel's growth-prone caches (``None`` = leave as is).

        ``value_entries`` re-bounds the payload-value-keyed rule caches on
        :attr:`tensors`; ``trace_entries`` bounds the bottom-up trace memo,
        evicting least-recently-labeled clusters immediately if it shrank.
        The trace memo is naturally bounded by the clustering's cluster
        count, so the bound only matters for servers hosting large trees
        whose label queries touch a small working set.
        """
        if value_entries is not None:
            self.tensors.set_value_cache_entries(value_entries)
        if trace_entries is not None:
            if trace_entries < 1:
                raise ValueError(f"trace_entries must be >= 1, got {trace_entries}")
            self._trace_entries = trace_entries
            while len(self._traces) > trace_entries:
                self._traces.popitem(last=False)
                self.trace_evictions += 1

    def cache_stats(self) -> Dict[str, int]:
        """Flat cache-behaviour counters for the observability gauges.

        Covers the trace memo (hits/misses/evictions/entries), the
        payload-value-keyed rule caches on :attr:`tensors`, and the tensor
        enumeration/recompose counters — everything a capacity or serving
        soak needs to see about this kernel's caching.
        """
        t = self.tensors
        out: Dict[str, int] = {
            "trace_entries": len(self._traces),
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "trace_evictions": self.trace_evictions,
            "value_entries": sum(t.value_cache_sizes().values()),
            "value_hits": t.value_cache_hits(),
            "value_misses": t.value_cache_misses(),
            "value_evictions": t.value_cache_evictions(),
        }
        out.update(t.stats)
        return out

    def _store_traces(self, cid: int, traces: Dict[Element, Optional[_Trace]]) -> None:
        data = self._traces
        if cid in data:
            del data[cid]  # re-insert at the most-recently-used end
        data[cid] = traces
        if self._trace_entries is not None:
            while len(data) > self._trace_entries:
                data.popitem(last=False)
                self.trace_evictions += 1

    def summarize_layer(self, ctxs: List[ClusterContext]) -> List[Any]:
        """Layer batch: level-schedule the node elements across all clusters.

        All elements of one height (with the levels below them done) are
        mutually independent across the whole layer, so each height is
        solved as a few stacked array programs — grouped by structural
        signature — instead of thousands of per-node ones.  Elements on a
        hole path and elements whose rules have no cache key fall back to
        the per-cluster walk, which picks up whatever the scheduler left.
        """
        tables, traces = self._schedule_levels(ctxs)
        return [
            self._summarize_one(ctx, tables[i], traces[i]) for i, ctx in enumerate(ctxs)
        ]

    def _summarize_one(
        self,
        ctx: ClusterContext,
        tables: Dict[Element, np.ndarray],
        traces: Dict[Element, Optional[_Trace]],
    ) -> Any:
        if ctx.is_indegree_one:
            tables, traces = self._local_tables(ctx, self._hole_batch, tables, traces)
            if self.selective:
                self._store_traces(ctx.cluster.cid, traces)
            # tables[top][h, a]: top state a with hole state h -> mat[a, b=h].
            return {"kind": "mat", "dense": np.ascontiguousarray(tables[ctx.top_element].T)}
        tables, traces = self._local_tables(ctx, None, tables, traces)
        if self.selective:
            self._store_traces(ctx.cluster.cid, traces)
        return {"kind": "vec", "dense": tables[ctx.top_element].reshape(-1)}

    def label_virtual_root(self, ctx: ClusterContext, summary: Any) -> Tuple[Any, Any]:
        vec = self._dense_vec(summary)
        totals = self.kernel.combine(vec, self.tensors.virtual_root_vec())
        if self.selective:
            idx = int(self.kernel.argreduce_flat(totals))
            val = totals[idx]
            if val == self.kernel.zero:
                raise ValueError(f"{self.problem.name}: no feasible solution exists")
            return self.sspace.decode(idx), val.item()
        return None, self.kernel.reduce(totals, axis=0).item()

    def assign_internal_labels(
        self, ctx: ClusterContext, out_label: Any, in_label: Any
    ) -> Dict[Element, Any]:
        traces = self._traces.get(ctx.cluster.cid)
        if traces is not None:
            self.trace_hits += 1
            if self._trace_entries is not None:
                self._traces.move_to_end(ctx.cluster.cid)
        else:
            self.trace_misses += 1
        if traces is None:
            # assign without a prior summarize (not reachable through the
            # engine, which always runs the bottom-up pass first).
            hole_table = (
                self._hole_rows[self.sspace.encode(in_label)] if in_label is not None else None
            )
            _, traces = self._local_tables(ctx, hole_table, {}, {})
        h = self.sspace.encode(in_label) if in_label is not None else 0

        state_of: Dict[Element, Hashable] = {ctx.top_element: out_label}
        stack = [ctx.top_element]
        S = len(self.sspace)
        decode = self.sspace.states
        while stack:
            e = stack.pop()
            trace = traces[e]
            if trace is None:
                continue  # leaf sub-cluster: no internal children here
            s_idx = self.sspace.index[state_of[e]]
            if trace.row(trace.vec, h)[s_idx] == self.kernel.zero:
                raise RuntimeError(
                    f"inconsistent traceback: state {state_of[e]!r} unreachable at element {e!r}"
                )
            if trace.kind == "node":
                acc_idx = int(trace.row(trace.fin, h)[s_idx])
                for j in range(len(trace.children) - 1, -1, -1):
                    child_elem, _edge = trace.children[j]
                    flat = int(trace.row(trace.steps[j], h)[acc_idx])
                    acc_idx, child_idx = divmod(flat, S)
                    if child_elem != HOLE:
                        state_of[child_elem] = decode[child_idx]
                        stack.append(child_elem)
            else:  # mat element
                if trace.child != HOLE:
                    state_of[trace.child] = decode[int(trace.row(trace.bp, h)[s_idx])]
                    stack.append(trace.child)

        return {e: s for e, s in state_of.items() if e != ctx.top_element}

    # ------------------------------------------------------------------ #
    # Level scheduler (cross-cluster batching within one layer)
    # ------------------------------------------------------------------ #

    def _schedule_levels(
        self, ctxs: List[ClusterContext]
    ) -> Tuple[List[Dict[Element, np.ndarray]], List[Dict[Element, Optional[_Trace]]]]:
        """Tables/traces (lists aligned with ``ctxs``) for batchable elements."""
        tables: List[Dict[Element, np.ndarray]] = [{} for _ in ctxs]
        traces: List[Dict[Element, Optional[_Trace]]] = [{} for _ in ctxs]
        # levels[h] = (mats, singles, groups).  Everything at height h only
        # depends on heights < h, so processing levels in order keeps every
        # dependency satisfied; within a level, entries are independent.
        levels: Dict[int, Tuple[list, list, Dict[Any, list]]] = {}

        for i, ctx in enumerate(ctxs):
            hole_path = ctx.hole_path() if ctx.is_indegree_one else frozenset()
            for kind, e, payload, h in ctx.local_plan():
                if e in hole_path:
                    continue  # hole-batched rows: the depth scheduler below
                if kind == "leaf":
                    tables[i][e] = self._dense_vec(ctx.summary_of(e)).reshape(1, -1)
                    traces[i][e] = None
                    continue
                level = levels.get(h)
                if level is None:
                    level = ([], [], {})
                    levels[h] = level
                if kind == "mat":
                    level[0].append((i, ctx, e, payload))
                    continue
                inp, children = payload
                sig, aff = self._node_signature(inp, children)
                if sig is None:
                    level[1].append((i, e, inp, children))  # uncacheable rules
                else:
                    level[2].setdefault(sig, []).append((i, e, inp, children, aff))

        for h in sorted(levels):
            mats, singles, groups = levels[h]
            for i, ctx, e, child in mats:
                vec, trace = self._mat_once(ctx, e, child, None, tables[i])
                tables[i][e] = vec
                traces[i][e] = trace
            for i, e, inp, children in singles:
                tables[i][e], traces[i][e] = self._node_once(
                    inp, children, None, None, tables[i]
                )
            for sig, members in groups.items():
                if len(members) == 1:
                    # The stacked program has more fixed overhead than the
                    # per-node path; fragmented key spaces go straight there.
                    i, e, inp, children, _aff = members[0]
                    tables[i][e], traces[i][e] = self._node_once(
                        inp, children, None, None, tables[i]
                    )
                else:
                    self._solve_group(sig, members, tables, traces)

        self._schedule_hole_paths(ctxs, tables, traces)
        return tables, traces

    def _schedule_hole_paths(
        self,
        ctxs: List[ClusterContext],
        tables: List[Dict[Element, np.ndarray]],
        traces: List[Dict[Element, Optional[_Trace]]],
    ) -> None:
        """Batch the hole-path elements of the layer's indegree-one clusters.

        All off-path tables are already in place, so a path element only
        waits for the previous element of its own path: entries of equal
        *depth along the path* are mutually independent across the whole
        layer and are grouped like the off-path levels — stacked mat solves
        for sub-cluster elements, signature groups for node elements — with
        every row of the stacked ``(C, H, ...)`` arrays carrying one
        cluster's full hole batch.
        """
        paths = [
            (i, ctx, ctx.hole_plan()) for i, ctx in enumerate(ctxs) if ctx.is_indegree_one
        ]
        if not paths:
            return
        for depth in range(max(len(plan) for _i, _ctx, plan in paths)):
            mats: list = []
            singles: list = []
            groups: Dict[Any, list] = {}
            for i, ctx, plan in paths:
                if depth >= len(plan):
                    continue
                kind, e, payload, path_child = plan[depth]
                if kind == "mat":
                    # payload is the single child element; None when the hole
                    # attaches here (then path_child is None too: depth 0).
                    mats.append((i, ctx, e, payload))
                    continue
                inp, children = payload
                if path_child is None:
                    # The hole element: the hole pseudo-child is absorbed
                    # last, through the incoming edge (as in _node_once).
                    children = children + ((HOLE, ctx.in_edge),)
                    path_idx = len(children) - 1
                else:
                    path_idx = next(
                        j for j, (c, _edge) in enumerate(children) if c == path_child
                    )
                sig, aff = self._node_signature(inp, children)
                if sig is None:
                    singles.append((i, e, inp, children))
                else:
                    # path_idx keys which absorption step carries the (H, S)
                    # hole rows, so stacked row shapes agree within a group.
                    groups.setdefault((path_idx, sig), []).append(
                        (i, e, inp, children, aff)
                    )
            if len(mats) == 1:
                i, ctx, e, child = mats[0]
                hole = self._hole_batch if child is None else None
                tables[i][e], traces[i][e] = self._mat_once(ctx, e, child, hole, tables[i])
            elif mats:
                self._solve_mat_group(mats, tables, traces)
            for i, e, inp, children in singles:
                tables[i][e], traces[i][e] = self._node_with_hole(inp, children, tables[i])
            for (_path_idx, sig), members in groups.items():
                if len(members) == 1:
                    i, e, inp, children, _aff = members[0]
                    tables[i][e], traces[i][e] = self._node_with_hole(
                        inp, children, tables[i]
                    )
                else:
                    self._solve_group(sig, members, tables, traces)

    def _node_with_hole(
        self,
        inp: Any,
        children: Tuple[Tuple[Element, Any], ...],
        tables: Dict[Element, np.ndarray],
    ) -> Tuple[np.ndarray, Optional[_Trace]]:
        """Per-element solve for a hole-path node (children may end in HOLE)."""
        if children and children[-1][0] == HOLE:
            return self._node_once(
                inp, children[:-1], self._hole_batch, children[-1][1], tables
            )
        return self._node_once(inp, children, None, None, tables)

    def _solve_mat_group(
        self,
        members: List[Tuple[int, ClusterContext, Element, Optional[Element]]],
        tables: List[Dict[Element, np.ndarray]],
        traces: List[Dict[Element, Optional[_Trace]]],
    ) -> None:
        """One stacked solve for a depth's indegree-one sub-cluster elements."""
        kernel = self.kernel
        mats = np.stack(
            [self._dense_mat(ctx.summary_of(e)) for _i, ctx, e, _child in members]
        )  # (n, S_top, S_below)
        if members[0][3] is None:
            below = self._hole_batch[None]  # depth 0: the shared hole batch
        else:
            below = np.stack([tables[i][child] for i, _ctx, _e, child in members])
        cand = kernel.combine(mats[:, None, :, :], below[:, :, None, :])
        vec = kernel.reduce(cand, axis=3)  # (n, H, S_top)
        bp = kernel.argreduce(cand, axis=3) if self.selective else None
        for j, (i, _ctx, e, child) in enumerate(members):
            trace = None
            if self.selective:
                trace = _Trace("mat")
                trace.child = HOLE if child is None else child
                trace.bp = bp[j]
                trace.vec = vec[j]
            tables[i][e] = vec[j]
            traces[i][e] = trace

    def _node_signature(
        self, inp: Any, children: Tuple[Tuple[Element, Any], ...]
    ) -> Tuple[Optional[Hashable], Any]:
        """Structural signature grouping nodes with identical rule tensors.

        Returns ``(sig, (fin_w, trans_ws))``: nodes share a group iff their
        ``sig`` is equal; the second component carries the per-node affine
        weights (finalize weight(s) and one weight vector per child whose
        transition is affine, ``None`` where the plain key cache applies)
        that :meth:`_solve_group` composes into the group's stacked tensors.
        """
        problem = self.problem
        trans_affine = self._trans_affine
        init_key = problem.init_key(inp)
        if init_key is None:
            return None, None
        tparts = []
        tws = []
        for _child, edge in children:
            ta = (
                problem.transition_affine_key(inp, edge)
                if trans_affine and edge is not None
                else None
            )
            if ta is not None:
                tparts.append(("ta", ta[0]))
                tws.append(tuple(ta[1]))
                continue
            tk = problem.transition_key(inp, edge)
            if tk is None:
                return None, None
            tparts.append(("tk", tk))
            tws.append(None)
        if self._fin_affine:
            aff = problem.finalize_affine_key(inp)
            if aff is not None:
                return ("a", aff[0], init_key, tuple(tparts)), (aff[1], tuple(tws))
        fin_key = problem.finalize_key(inp)
        if fin_key is None:
            return None, None
        return ("e", fin_key, init_key, tuple(tparts)), (None, tuple(tws))

    def _fallback_group(
        self,
        members: List[Tuple[int, Element, Any, Tuple[Tuple[Element, Any], ...], Any]],
        tables: List[Dict[Element, np.ndarray]],
        traces: List[Dict[Element, Optional[_Trace]]],
    ) -> None:
        """Per-node path for a group whose declared key was not affine."""
        for i, e, inp, children, _aff in members:
            tables[i][e], traces[i][e] = self._node_with_hole(inp, children, tables[i])

    def _solve_group(
        self,
        sig: Hashable,
        members: List[Tuple[int, Element, Any, Tuple[Tuple[Element, Any], ...], Any]],
        tables: List[Dict[Element, np.ndarray]],
        traces: List[Dict[Element, Optional[_Trace]]],
    ) -> None:
        """One stacked solve for all ``members`` (same signature, same level).

        Handles both off-path groups (all child tables are broadcastable
        ``(1, S)`` rows) and hole-path groups (one child position — possibly
        the hole pseudo-child — carries ``(H, S)`` hole rows): every array
        has layout ``(cluster, hole_row, ...)`` and degenerate axes broadcast,
        so the two cases run the same program the per-cluster walk would,
        just stacked.
        """
        kernel = self.kernel
        tensors = self.tensors
        selective = self.selective
        combine, reduce_, argreduce = kernel.combine, kernel.reduce, kernel.argreduce
        A, S = len(self.aspace), len(self.sspace)
        AS = A * S

        _i0, _e0, inp0, children0, aff0 = members[0]
        n = len(members)
        d = len(children0)

        if sig[0] == "a":
            pair = tensors.finalize_affine_pair(sig[1], inp0, aff0[0])
            if pair is None:
                # Structural key turned out not to be affine: per-node path.
                self._fallback_group(members, tables, traces)
                return
            base, masks = pair
            # One scalar or one K-tuple per member; both shapes land as (n, K).
            w = np.array([m[4][0] for m in members], dtype=kernel.dtype).reshape(n, -1)
            fin = tensors.compose_affine(base, masks, w)  # (n, A, S)
        else:
            fin = tensors.finalize_mat(inp0)[None, :, :]  # (1, A, S), shared

        acc = tensors.init_vec(inp0)[None]  # (1, 1, A), shared across the group
        steps: List[np.ndarray] = []
        for j in range(d):
            child0, edge0 = children0[j]
            tw = aff0[1][j]
            if tw is None:
                T = tensors.transition_tensor(inp0, edge0)[None, None]  # (1, 1, A, S, A')
            else:
                pair = tensors.transition_affine_pair(sig[3][j][1], inp0, edge0, tw)
                if pair is None:
                    self._fallback_group(members, tables, traces)
                    return
                baseT, masksT = pair
                wj = np.array(
                    [m[4][1][j] for m in members], dtype=kernel.dtype
                ).reshape(n, -1)
                T = tensors.compose_affine(baseT, masksT, wj)[:, None]  # (n, 1, A, S, A')
            if child0 == HOLE:
                rows = self._hole_batch[None]  # (1, H, S), shared hole batch
            else:
                rows = np.stack(
                    [tables[i][children[j][0]] for i, _e, _inp, children, _aff in members]
                )  # (n, h_j, S)
            b = combine(rows[:, :, None, :, None], T)
            cand = combine(acc[:, :, :, None, None], b)
            flat = cand.reshape(cand.shape[0], cand.shape[1], AS, A)
            acc = reduce_(flat, axis=2)
            if selective:
                steps.append(argreduce(flat, axis=2))

        cand = combine(acc[:, :, :, None], fin[:, None, :, :])  # (n', h', A, S)
        vec = reduce_(cand, axis=2)
        fin_idx = argreduce(cand, axis=2) if selective else None

        # Leading axes may have stayed degenerate (all inputs shared): index
        # row 0 then — the data is identical for every member.
        for j, (i, e, _inp, children, _aff) in enumerate(members):
            jj = j if vec.shape[0] > 1 else 0
            row = vec[jj]
            trace = None
            if selective:
                trace = _Trace("node")
                trace.children = children
                trace.steps = [s[j if s.shape[0] > 1 else 0] for s in steps]
                trace.fin = fin_idx[jj]
                trace.vec = row
            tables[i][e] = row
            traces[i][e] = trace

    # ------------------------------------------------------------------ #
    # Per-element solves (hole paths, uncacheable rules, top-down fallback)
    # ------------------------------------------------------------------ #

    def _node_once(
        self,
        inp: Any,
        children: Tuple[Tuple[Element, Any], ...],
        hole_table: Optional[np.ndarray],
        in_edge: Any,
        tables: Dict[Element, np.ndarray],
    ) -> Tuple[np.ndarray, Optional[_Trace]]:
        """Solve one node element (mirrors the scalar absorption order)."""
        kernel = self.kernel
        tensors = self.tensors
        selective = self.selective
        combine, reduce_, argreduce = kernel.combine, kernel.reduce, kernel.argreduce
        A, S = len(self.aspace), len(self.sspace)

        if hole_table is not None:
            children = children + ((HOLE, in_edge),)
        trace = _Trace("node") if selective else None
        if selective:
            trace.children = children

        acc = tensors.init_vec(inp)
        for child_elem, edge in children:
            child = hole_table if child_elem == HOLE else tables[child_elem]
            T = tensors.transition_tensor(inp, edge)
            # b = child ⊗ T first, then acc ⊗ b: associates float sums
            # exactly like the scalar times(a, times(c, t)).
            b = combine(child[:, None, :, None], T[None, :, :, :])
            acc4 = acc[:, :, None, None]
            # b already has the broadcast output shape unless only the
            # accumulator carries the hole batch; reuse its buffer then.
            if kernel.combine_inplace is not None and b.shape[0] >= acc.shape[0]:
                cand = kernel.combine_inplace(acc4, b)
            else:
                cand = combine(acc4, b)
            flat = cand.reshape(cand.shape[0], A * S, A)
            acc = reduce_(flat, axis=1)
            if selective:
                trace.steps.append(argreduce(flat, axis=1))

        fin = tensors.finalize_mat(inp)
        cand = combine(acc[:, :, None], fin[None, :, :])
        vec = reduce_(cand, axis=1)
        if selective:
            trace.fin = argreduce(cand, axis=1)
            trace.vec = vec
        return vec, trace

    def _mat_once(
        self,
        ctx: ClusterContext,
        e: Element,
        child: Optional[Element],
        hole_table: Optional[np.ndarray],
        tables: Dict[Element, np.ndarray],
    ) -> Tuple[np.ndarray, Optional[_Trace]]:
        """Solve one indegree-one sub-cluster element."""
        kernel = self.kernel
        mat = self._dense_mat(ctx.summary_of(e))  # (S_top, S_below)
        if child is None:
            if hole_table is None:
                raise RuntimeError(
                    f"indegree-one sub-cluster {e!r} has no child and no hole is active"
                )
            child_elem, below = HOLE, hole_table
        else:
            child_elem, below = child, tables[child]
        cand = kernel.combine(mat[None, :, :], below[:, None, :])  # (h, S_top, S_below)
        vec = kernel.reduce(cand, axis=2)
        trace = None
        if self.selective:
            trace = _Trace("mat")
            trace.child = child_elem
            trace.bp = kernel.argreduce(cand, axis=2)
            trace.vec = vec
        return vec, trace

    # ------------------------------------------------------------------ #
    # Per-cluster walk (consumes whatever the scheduler prefilled)
    # ------------------------------------------------------------------ #

    def _dense_vec(self, summary: Any) -> np.ndarray:
        if "dense" in summary:
            return summary["dense"]
        # Interop: a scalar-path summary consumed by the dense solver.
        return encode_vec(summary["table"], self.sspace, self.kernel.zero, self.kernel.dtype)

    def _dense_mat(self, summary: Any) -> np.ndarray:
        if "dense" in summary:
            return summary["dense"]
        return encode_mat(summary["table"], self.sspace, self.kernel.zero, self.kernel.dtype)

    def _local_tables(
        self,
        ctx: ClusterContext,
        hole_table: Optional[np.ndarray],
        tables: Dict[Element, np.ndarray],
        traces: Dict[Element, Optional[_Trace]],
    ) -> Tuple[Dict[Element, np.ndarray], Dict[Element, Optional[_Trace]]]:
        """Tables of shape (h_e, S) per element, plus traces when selective."""
        hole_element = ctx.hole_element if hole_table is not None else None
        in_edge = ctx.in_edge if hole_table is not None else None

        for kind, e, payload, _h in ctx.local_plan():
            if e in tables:
                continue  # prefilled by the level scheduler
            if kind == "node":
                inp, children = payload
                hole = hole_table if e == hole_element else None
                tables[e], traces[e] = self._node_once(inp, children, hole, in_edge, tables)
            elif kind == "mat":
                hole = hole_table if payload is None else None
                tables[e], traces[e] = self._mat_once(ctx, e, payload, hole, tables)
            else:  # leaf: an indegree-zero sub-cluster summary
                tables[e] = self._dense_vec(ctx.summary_of(e)).reshape(1, -1)
                traces[e] = None

        return tables, traces
