"""Vectorized semiring kernels for the finite-state DP hot path.

The paper's O(1)-round engine (Section 5) pushes all real computation into
per-cluster local solves, so the reproduction's wall-clock speed is dominated
by the per-cluster tables of :class:`~repro.dp.local_solver.FiniteStateClusterSolver`.
This package replaces its pure-Python dict-of-dicts tables with dense NumPy
arrays indexed by state id:

* :class:`~repro.dp.kernels.statespace.StateSpace` — a bijection between a
  problem's hashable states and contiguous integer ids, plus codecs between
  dict tables and dense arrays.
* :mod:`~repro.dp.kernels.semiring_kernels` — per-semiring array operations
  (min-plus, max-plus, sum-product, counting modulo k) implemented as batched
  broadcasts and axis reductions, with arg-reductions for backpointers.
* :class:`~repro.dp.kernels.tensors.ProblemTensors` — dense init vectors,
  transition tensors ``T[acc, child_state, acc']`` and finalize matrices
  ``F[acc, state]`` enumerated once from a :class:`~repro.dp.problem.FiniteStateDP`
  and cached under problem-provided keys.
* :class:`~repro.dp.kernels.dense_local.DenseClusterKernel` — the batched
  per-cluster solver: one element-tree traversal computes the summary of an
  indegree-one cluster for *all* hole states at once (the scalar path walks
  the element tree once per hole state), and arg-reductions recover the
  labels of the top-down pass.

Tie-breaking is canonical (state-id order) in both the dense kernels and the
scalar fallback, and float operations associate identically, so the two
backends produce bit-identical objective values and labels; the test-suite
asserts this across the full Table-1 registry.
"""

from repro.dp.kernels.dense_local import DenseClusterKernel
from repro.dp.kernels.semiring_kernels import (
    CountingModKernel,
    MaxPlusKernel,
    MinPlusKernel,
    SemiringKernel,
    SumProductKernel,
    kernel_for,
)
from repro.dp.kernels.statespace import StateSpace, summary_as_dict
from repro.dp.kernels.tensors import ProblemTensors, UndeclaredStateError

__all__ = [
    "CountingModKernel",
    "DenseClusterKernel",
    "MaxPlusKernel",
    "MinPlusKernel",
    "ProblemTensors",
    "SemiringKernel",
    "StateSpace",
    "SumProductKernel",
    "UndeclaredStateError",
    "kernel_for",
    "summary_as_dict",
]
