"""Upward and downward accumulation problems (paper Table 1 and Section 6.3).

Many of the paper's applications are *accumulations*: a value is computed for
every node from its children (upward — subtree sums/min/max, arithmetic
expression evaluation, XML structure checks, tree median) or from its parent
(downward — depths, root-to-node prefix sums, the DFS/BFS timestamp
computations of Section 6.3).

For such problems the O(1)-word cluster summary required by Definition 1 is a
**function**: an indegree-one cluster is summarised by the function mapping
the value entering through its open boundary to the value it delivers at the
other boundary, and these functions must come from an algebra that is closed
under composition and representable in O(1) words (affine maps for sums,
clamp/cap maps for min/max and the tree median of Lemma 10/11, Boolean maps
for validation).  Concrete problems supply the algebra by implementing the
abstract hooks below; the generic solvers do the per-cluster work.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.clustering.model import Element
from repro.dp.problem import ClusterContext, ClusterDP, EdgeInfo, NodeInput

__all__ = [
    "UpwardAccumulationDP",
    "UpwardAccumulationSolver",
    "DownwardAccumulationDP",
    "DownwardAccumulationSolver",
]


# --------------------------------------------------------------------------- #
# Upward accumulation
# --------------------------------------------------------------------------- #


class UpwardAccumulationDP(abc.ABC):
    """A problem where every node's value is determined by its children's values.

    The edge label produced for an edge ``(u, p)`` is the value computed at
    ``u`` (e.g. the aggregate of ``u``'s subtree); the problem's objective is
    the value at the root.
    """

    name: str = "upward-accumulation"

    @abc.abstractmethod
    def value_of(self, v: NodeInput, child_values: List[Any]) -> Any:
        """Value of node ``v`` given the values of all its children (possibly none)."""

    @abc.abstractmethod
    def partial_function(self, v: NodeInput, known_child_values: List[Any]) -> Any:
        """Value of ``v`` as an O(1)-word function of one unknown child value.

        ``known_child_values`` are the values of the *other* children.
        """

    @abc.abstractmethod
    def apply(self, fn: Any, x: Any) -> Any:
        """Evaluate a function of the algebra."""

    @abc.abstractmethod
    def compose(self, outer: Any, inner: Any) -> Any:
        """The function ``x -> outer(inner(x))`` (must stay O(1) words)."""

    def extract_solution(self, tree, node_values: Dict[Hashable, Any], root_value: Any) -> Any:
        return {"node_values": node_values, "root_value": root_value}


class UpwardAccumulationSolver(ClusterDP):
    """Generic :class:`ClusterDP` for upward accumulations."""

    produces_labels = True

    def __init__(self, problem: UpwardAccumulationDP):
        self.problem = problem

    # -- bottom-up --------------------------------------------------------- #

    def summarize(self, ctx: ClusterContext) -> Any:
        result = self._evaluate(ctx, hole_value=None)[ctx.top_element]
        kind, payload = result
        if ctx.is_indegree_one:
            if kind != "fun":
                raise RuntimeError("indegree-one cluster must summarise to a function")
            return {"kind": "fun", "fn": payload}
        if kind != "val":
            raise RuntimeError("indegree-zero cluster must summarise to a value")
        return {"kind": "val", "value": payload}

    def label_virtual_root(self, ctx: ClusterContext, summary: Any) -> Tuple[Any, Any]:
        value = summary["value"]
        return value, value

    # -- top-down ----------------------------------------------------------- #

    def assign_internal_labels(
        self, ctx: ClusterContext, out_label: Any, in_label: Any
    ) -> Dict[Element, Any]:
        results = self._evaluate(ctx, hole_value=in_label)
        labels: Dict[Element, Any] = {}
        for e in ctx.elements:
            if e == ctx.top_element:
                continue
            kind, payload = results[e]
            if kind != "val":
                raise RuntimeError(
                    "all element values must be concrete once the hole value is known"
                )
            labels[e] = payload
        return labels

    def extract(self, tree, edge_labels, root_label, value):
        node_values: Dict[Hashable, Any] = {child: lab for (child, _p), lab in edge_labels.items()}
        node_values[tree.root] = root_label
        return self.problem.extract_solution(tree, node_values, value)

    # -- local evaluation ---------------------------------------------------- #

    def _evaluate(
        self, ctx: ClusterContext, hole_value: Optional[Any]
    ) -> Dict[Element, Tuple[str, Any]]:
        """Evaluate every element of the cluster to ("val", x) or ("fun", f).

        When ``hole_value`` is None the hole (if any) stays symbolic and the
        elements on the hole-to-top path evaluate to functions; otherwise
        everything evaluates to concrete values.
        """
        p = self.problem
        order: List[Element] = []
        stack = [ctx.top_element]
        while stack:
            e = stack.pop()
            order.append(e)
            stack.extend(ctx.children_of(e))
        order.reverse()

        results: Dict[Element, Tuple[str, Any]] = {}
        for e in order:
            kids = ctx.children_of(e)
            if e[0] == "node":
                inp = ctx.node_input(e[1])
                child_results = [results[c] for c in kids]
                symbolic_here = (ctx.hole_element == e and ctx.is_indegree_one)
                values = [r[1] for r in child_results if r[0] == "val"]
                funs = [r[1] for r in child_results if r[0] == "fun"]
                n_sym = len(funs) + (1 if symbolic_here else 0)
                if n_sym == 0:
                    results[e] = ("val", p.value_of(inp, values))
                elif n_sym == 1:
                    if symbolic_here and hole_value is not None:
                        results[e] = ("val", p.value_of(inp, values + [hole_value]))
                    elif symbolic_here:
                        results[e] = ("fun", p.partial_function(inp, values))
                    else:
                        partial = p.partial_function(inp, values)
                        results[e] = ("fun", p.compose(partial, funs[0]))
                else:
                    raise RuntimeError("a cluster can contain at most one open boundary")
            else:
                kind = ctx.element_kind(e)
                summary = ctx.summary_of(e)
                if kind == "indegree-1":
                    g = summary["fn"]
                    if kids:
                        child_kind, child_payload = results[kids[0]]
                        if child_kind == "val":
                            results[e] = ("val", p.apply(g, child_payload))
                        else:
                            results[e] = ("fun", p.compose(g, child_payload))
                    else:
                        if ctx.hole_element != e:
                            raise RuntimeError(
                                f"indegree-one sub-cluster {e!r} has no child and is not the hole"
                            )
                        if hole_value is not None:
                            results[e] = ("val", p.apply(g, hole_value))
                        else:
                            results[e] = ("fun", g)
                else:
                    results[e] = ("val", summary["value"])
        return results


# --------------------------------------------------------------------------- #
# Downward accumulation
# --------------------------------------------------------------------------- #


class DownwardAccumulationDP(abc.ABC):
    """A problem where every node's value is determined by its parent's value.

    The edge label produced for an edge ``(u, p)`` is the *message* on the
    edge, i.e. the value of the parent ``p``; the value of ``u`` itself is
    recovered locally as ``apply(down_function(u, edge), message)``.  The
    label of the virtual root edge is the seed value.
    """

    name: str = "downward-accumulation"

    @abc.abstractmethod
    def root_seed(self) -> Any:
        """The message entering the root (e.g. -1 for depth so the root gets 0)."""

    @abc.abstractmethod
    def down_function(self, v: NodeInput, edge: Optional[EdgeInfo]) -> Any:
        """Value of ``v`` as an O(1)-word function of its parent's value."""

    @abc.abstractmethod
    def apply(self, fn: Any, x: Any) -> Any:
        """Evaluate a function of the algebra."""

    @abc.abstractmethod
    def compose(self, outer: Any, inner: Any) -> Any:
        """The function ``x -> outer(inner(x))``."""

    def extract_solution(self, tree, node_values: Dict[Hashable, Any], root_value: Any) -> Any:
        return {"node_values": node_values, "root_value": root_value}


class DownwardAccumulationSolver(ClusterDP):
    """Generic :class:`ClusterDP` for downward accumulations."""

    produces_labels = True

    def __init__(self, problem: DownwardAccumulationDP):
        self.problem = problem

    # -- bottom-up: only indegree-one clusters need a summary ---------------- #

    def summarize(self, ctx: ClusterContext) -> Any:
        if not ctx.is_indegree_one:
            return {"kind": "none"}
        p = self.problem
        # Compose the per-element down-functions along the path from the top
        # element to the hole element: the result maps the value above the
        # cluster to the value of the node its incoming edge attaches to.
        path: List[Element] = []
        parent_of = ctx.cluster.element_parent()
        e = ctx.hole_element
        while True:
            path.append(e)
            if e == ctx.top_element:
                break
            e = parent_of[e]
        path.reverse()  # top ... hole

        fn = None
        for e in path:
            if e[0] == "node":
                edge = ctx.edge_to_parent(e)
                if edge is None:
                    edge = ctx.edge_info(ctx.out_edge)
                step = p.down_function(ctx.node_input(e[1]), edge)
            else:
                kind = ctx.element_kind(e)
                if kind != "indegree-1":
                    raise RuntimeError(
                        "only indegree-one sub-clusters can lie on the open path"
                    )
                step = ctx.summary_of(e)["fn"]
            fn = step if fn is None else p.compose(step, fn)
        return {"kind": "fun", "fn": fn}

    def label_virtual_root(self, ctx: ClusterContext, summary: Any) -> Tuple[Any, Any]:
        p = self.problem
        seed = p.root_seed()
        root_value = p.apply(p.down_function(ctx.node_input(ctx.top_node), None), seed)
        return seed, root_value

    # -- top-down ------------------------------------------------------------ #

    def assign_internal_labels(
        self, ctx: ClusterContext, out_label: Any, in_label: Any
    ) -> Dict[Element, Any]:
        p = self.problem
        labels: Dict[Element, Any] = {}
        messages: Dict[Element, Any] = {ctx.top_element: out_label}
        stack = [ctx.top_element]
        while stack:
            e = stack.pop()
            msg = messages[e]
            kids = ctx.children_of(e)
            if e[0] == "node":
                if e == ctx.top_element:
                    from repro.clustering.model import VIRTUAL_PARENT

                    edge = (
                        None
                        if ctx.cluster.out_edge[1] == VIRTUAL_PARENT
                        else ctx.edge_info(ctx.out_edge)
                    )
                else:
                    edge = ctx.edge_to_parent(e)
                value = p.apply(p.down_function(ctx.node_input(e[1]), edge), msg)
                for c in kids:
                    messages[c] = value
                    labels[c] = value
                    stack.append(c)
            else:
                kind = ctx.element_kind(e)
                if kind == "indegree-1":
                    fn = ctx.summary_of(e)["fn"]
                    delivered = p.apply(fn, msg)
                    for c in kids:
                        messages[c] = delivered
                        labels[c] = delivered
                        stack.append(c)
                # indegree-zero sub-clusters: leaves, nothing below.
        return labels

    def extract(self, tree, edge_labels, root_label, value):
        p = self.problem
        node_values: Dict[Hashable, Any] = {tree.root: value}
        for (child, parent), msg in edge_labels.items():
            edge = EdgeInfo(edge=(child, parent))
            inp = NodeInput(node=child, data=tree.node_data.get(child))
            node_values[child] = p.apply(p.down_function(inp, edge), msg)
        return self.problem.extract_solution(tree, node_values, value)
