"""Semirings used to evaluate finite-state tree DPs.

A semiring fixes how alternative partial solutions are combined
(``plus`` — e.g. maximum for optimisation, addition for counting) and how
independent contributions are merged (``times`` — e.g. addition of weights,
multiplication of counts).  ``zero`` is the annihilating "infeasible" value
and ``one`` the neutral value.

Optimisation semirings are *selective*: ``plus`` picks one of its arguments,
which is what allows the traceback that produces an actual solution (the
edge labels).  Counting semirings are not selective, so problems over them
are evaluated bottom-up only (the answer is the root value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "Semiring",
    "MAX_PLUS",
    "MIN_PLUS",
    "SUM_PRODUCT",
    "counting_mod",
]


@dataclass(frozen=True)
class Semiring:
    """An algebraic structure ``(plus, times, zero, one)`` with a name.

    Attributes
    ----------
    name:
        Human-readable name used in reports and reprs.
    plus:
        Combines alternative solutions (max, min, +, ...).
    times:
        Combines independent sub-solutions (+, *, ...).
    zero:
        Identity of ``plus`` and annihilator of ``times`` ("infeasible").
    one:
        Identity of ``times`` ("empty solution").
    selective:
        True when ``plus`` always returns one of its arguments; required for
        traceback / solution extraction.
    prefer:
        For selective semirings: ``prefer(a, b)`` is True when ``a`` is
        strictly better than ``b`` (used for deterministic argmax).
    kernel:
        Name of the dense array kernel evaluating this semiring
        (``"min-plus"``, ``"max-plus"``, ``"sum-product"`` or ``"counting"``;
        see :mod:`repro.dp.kernels`).  ``None`` marks an exotic semiring the
        vectorized backend cannot represent; such problems always run on the
        scalar path.
    modulus:
        The modulus of a ``"counting"`` kernel semiring (``None`` otherwise).
    """

    name: str
    plus: Callable[[Any, Any], Any]
    times: Callable[[Any, Any], Any]
    zero: Any
    one: Any
    selective: bool
    prefer: Callable[[Any, Any], bool] = None  # type: ignore[assignment]
    kernel: str = None  # type: ignore[assignment]
    modulus: int = None  # type: ignore[assignment]

    def is_zero(self, x: Any) -> bool:
        return x == self.zero

    def sum(self, values) -> Any:
        acc = self.zero
        for v in values:
            acc = self.plus(acc, v)
        return acc

    def product(self, values) -> Any:
        acc = self.one
        for v in values:
            acc = self.times(acc, v)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Semiring({self.name})"


_NEG_INF = float("-inf")
_POS_INF = float("inf")


def _max_plus_times(a, b):
    if a == _NEG_INF or b == _NEG_INF:
        return _NEG_INF
    return a + b


def _min_plus_times(a, b):
    if a == _POS_INF or b == _POS_INF:
        return _POS_INF
    return a + b


#: Maximisation problems (maximum-weight independent set, matching, max-SAT).
MAX_PLUS = Semiring(
    name="max-plus",
    plus=max,
    times=_max_plus_times,
    zero=_NEG_INF,
    one=0.0,
    selective=True,
    prefer=lambda a, b: a > b,
    kernel="max-plus",
)

#: Minimisation problems (minimum dominating set, vertex cover, sum coloring).
MIN_PLUS = Semiring(
    name="min-plus",
    plus=min,
    times=_min_plus_times,
    zero=_POS_INF,
    one=0.0,
    selective=True,
    prefer=lambda a, b: a < b,
    kernel="min-plus",
)

#: Plain counting / probability propagation.
SUM_PRODUCT = Semiring(
    name="sum-product",
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    zero=0,
    one=1,
    selective=False,
    kernel="sum-product",
)


def counting_mod(k: int) -> Semiring:
    """Counting modulo ``k`` (used for counting matchings mod k, Table 1)."""
    if k < 2:
        raise ValueError("modulus must be at least 2")
    return Semiring(
        name=f"count-mod-{k}",
        plus=lambda a, b: (a + b) % k,
        times=lambda a, b: (a * b) % k,
        zero=0,
        one=1 % k,
        selective=False,
        kernel="counting",
        modulus=k,
    )
