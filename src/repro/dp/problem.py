"""Problem interfaces of the DP framework.

Two layers of abstraction:

* :class:`ClusterDP` is what the engine (Section 5) consumes: summarise a
  cluster given its elements' summaries (Figure 2), label the virtual root
  edge of the topmost cluster, and fill in a cluster's internal edge labels
  given its boundary labels (Figure 3).  Raw problems (tree median, Gaussian
  belief propagation, longest path) implement it directly.

* :class:`FiniteStateDP` describes the large family of per-node finite-state
  problems (independent set, vertex cover, dominating set, matching,
  colorings, counting, max-SAT, ...).  The node chooses a state; children are
  folded into an *accumulator* one at a time through ``transition`` (which
  sees the connecting edge, so original and auxiliary edges of the
  degree-reduction can behave differently, Section 5.3); ``finalize`` maps
  the accumulator to the node's state.  The generic
  :class:`~repro.dp.local_solver.FiniteStateClusterSolver` turns any such
  description into a :class:`ClusterDP`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.clustering.model import Cluster, Element
from repro.dp.semiring import Semiring
from repro.trees.tree import RootedTree

__all__ = ["NodeInput", "EdgeInfo", "ClusterContext", "ClusterDP", "FiniteStateDP"]


@dataclass(frozen=True)
class NodeInput:
    """What a DP problem may know about one tree node.

    Attributes
    ----------
    node:
        The node identifier.
    data:
        The node's input payload (weight, leaf value, colour list, ...).
    is_auxiliary:
        True when the node was introduced by the degree reduction
        (Section 4.4); problems typically give such nodes zero weight and
        mirror constraints across them (Section 5.3).
    """

    node: Hashable
    data: Any = None
    is_auxiliary: bool = False

    def weight(self, default: float = 0.0) -> float:
        data = self.data
        if type(data) is dict:  # fast path: ABC checks are hot in cache keys
            w = data.get("weight")
            return default if w is None else float(w)
        if isinstance(data, (int, float)) and not isinstance(data, bool):
            return float(data)
        if isinstance(data, Mapping) and "weight" in data:
            return float(data["weight"])
        return default


@dataclass(frozen=True)
class EdgeInfo:
    """What a DP problem may know about one tree edge.

    Attributes
    ----------
    edge:
        ``(child, parent)`` node pair.
    kind:
        ``"original"`` or ``"auxiliary"`` (Section 5.3).
    data:
        Optional per-edge payload (weight, clause list, ...).
    """

    edge: Tuple[Hashable, Hashable]
    kind: str = "original"
    data: Any = None

    @property
    def is_auxiliary(self) -> bool:
        return self.kind == "auxiliary"

    def weight(self, default: float = 0.0) -> float:
        data = self.data
        if type(data) is dict:  # fast path: ABC checks are hot in cache keys
            w = data.get("weight")
            return default if w is None else float(w)
        if isinstance(data, (int, float)) and not isinstance(data, bool):
            return float(data)
        if isinstance(data, Mapping) and "weight" in data:
            return float(data["weight"])
        return default


class ClusterContext:
    """Everything a :class:`ClusterDP` may inspect about one cluster.

    Provides the element tree inside the cluster, the node inputs and edge
    info of the (degree-reduced) tree, and the summaries of the sub-clusters
    absorbed by this cluster.
    """

    def __init__(
        self,
        cluster: Cluster,
        tree: RootedTree,
        summaries: Mapping[int, Any],
        clusters: Mapping[int, Cluster],
        edge_kinds: Optional[Mapping[Tuple[Hashable, Hashable], str]] = None,
        aux_nodes: Optional[set] = None,
        original_parent: Optional[Mapping[Hashable, Hashable]] = None,
    ):
        self.cluster = cluster
        self.tree = tree
        self._summaries = summaries
        self._clusters = clusters
        self._edge_kinds = edge_kinds or {}
        self._aux_nodes = aux_nodes or set()
        self._original_parent = original_parent or {}
        self._children = cluster.element_children()
        self._edge_of = cluster.edge_of_element()

    # -- structure ------------------------------------------------------- #

    @property
    def elements(self) -> List[Element]:
        return self.cluster.elements

    @property
    def top_element(self) -> Element:
        return self.cluster.top_element

    def children_of(self, e: Element) -> List[Element]:
        return self._children.get(e, [])

    def sorted_children_of(self, e: Element) -> List[Element]:
        """Children of ``e`` in the deterministic absorption order (cached)."""
        return self.cluster.element_children_sorted().get(e, [])

    def element_postorder(self) -> List[Element]:
        """Cached postorder of the cluster's element tree."""
        return self.cluster.element_postorder()

    def local_plan(self) -> List[Tuple[str, Element, Any, int]]:
        """Problem-independent local-solve plan of this cluster (cached).

        One postorder entry per element with everything prefetched that the
        per-cluster solvers would otherwise rebuild on every solve:

        * ``("node", e, (node_input, children), height)`` — ``children`` is
          the tuple of ``(child_element, edge_info)`` pairs in absorption
          order (the hole pseudo-child is *not* included; solvers append it
          when the element is the hole element and a hole is active);
        * ``("mat", e, child_element_or_None, height)`` — an indegree-one
          sub-cluster element and its single child (``None``: the hole
          attaches here);
        * ``("leaf", e, None, 0)`` — an indegree-zero sub-cluster element.

        ``height`` is the element's height in the element tree (0 for
        childless elements); all elements of one height are mutually
        independent given the levels below, which is what lets vectorized
        solvers batch them across clusters.

        The plan depends only on the cluster and the tree (both fixed for
        the clustering's lifetime), so it is cached on the cluster and
        shared by every problem, pass and backend — this is what makes
        repeated solves on one clustering cheap.
        """
        plan = self.cluster._local_plan
        if plan is not None:
            return plan
        plan = []
        heights: Dict[Element, int] = {}
        for e in self.element_postorder():
            kids = self.sorted_children_of(e)
            h = 1 + max(heights[c] for c in kids) if kids else 0
            heights[e] = h
            if e[0] == "node":
                children = tuple((c, self.edge_to_parent(c)) for c in kids)
                plan.append(("node", e, (self.node_input(e[1]), children), h))
            elif self.element_kind(e) == "indegree-1":
                if len(kids) > 1:
                    raise RuntimeError(
                        f"indegree-one sub-cluster {e!r} must have exactly one child, "
                        f"got {kids}"
                    )
                if not kids and self.hole_element != e:
                    raise RuntimeError(
                        f"indegree-one sub-cluster {e!r} has no child and is not "
                        "the hole element"
                    )
                plan.append(("mat", e, kids[0] if kids else None, h))
            else:  # indegree-0 (or, impossibly, final)
                if kids:
                    raise RuntimeError(
                        f"indegree-zero sub-cluster {e!r} unexpectedly has children"
                    )
                plan.append(("leaf", e, None, 0))
        # mpclint: disable-next-line=stale-cache-invalidation -- designated builder: the memo is derived from cluster+tree structure, immutable for the clustering's lifetime
        self.cluster._local_plan = plan
        return plan

    def hole_plan(self) -> List[Tuple[str, Element, Any, Optional[Element]]]:
        """Ordered local-plan entries along the hole path, hole element first.

        Each entry is ``(kind, e, payload, path_child)`` — the
        :meth:`local_plan` entry of one hole-path element plus the previous
        path element it absorbs (``None`` for the hole element itself, where
        the hole pseudo-child attaches instead).  The position of an entry in
        the list is its *depth along the path*, which is what the dense
        solver's layer-wide hole-path scheduler groups by: entries of equal
        depth across all clusters of a layer are mutually independent once
        depth - 1 is done.  Empty for indegree-zero clusters.  Like the plan,
        it depends only on the cluster and the tree, so it is cached on the
        cluster and shared by every problem and backend.
        """
        plan = self.cluster._hole_plan
        if plan is not None:
            return plan
        plan = []
        if self.cluster.hole_element is not None:
            by_element = {e: (kind, e, payload) for kind, e, payload, _h in self.local_plan()}
            parent = self.cluster.element_parent()
            e = self.cluster.hole_element
            path_child: Optional[Element] = None
            while True:
                kind, _e, payload = by_element[e]
                plan.append((kind, e, payload, path_child))
                if e == self.cluster.top_element:
                    break
                path_child = e
                e = parent[e]
        # mpclint: disable-next-line=stale-cache-invalidation -- designated builder: the memo is derived from cluster+tree structure, immutable for the clustering's lifetime
        self.cluster._hole_plan = plan
        return plan

    def hole_path(self) -> frozenset:
        """Elements on the path from the hole element to the top (inclusive).

        Empty for indegree-zero clusters.  Cached on the cluster alongside
        the plan structures.
        """
        path = getattr(self.cluster, "_hole_path", None)
        if path is None:
            elems = []
            e = self.cluster.hole_element
            if e is not None:
                parent = self.cluster.element_parent()
                while True:
                    elems.append(e)
                    if e == self.cluster.top_element:
                        break
                    e = parent[e]
            path = frozenset(elems)
            self.cluster._hole_path = path
        return path

    def edge_to_parent(self, e: Element) -> Optional[EdgeInfo]:
        """The original edge from element ``e`` to its parent element (if internal)."""
        edge = self._edge_of.get(e)
        if edge is None:
            return None
        return self.edge_info(edge)

    # -- payloads ---------------------------------------------------------- #

    def node_input(self, v: Hashable) -> NodeInput:
        return NodeInput(
            node=v,
            data=self.tree.node_data.get(v),
            is_auxiliary=v in self._aux_nodes,
        )

    def original_parent_of(self, v: Hashable) -> Hashable:
        """The original node that is the logical parent of ``v`` (Section 6.1.1)."""
        return self._original_parent.get(v, self.tree.parent.get(v, v))

    def edge_info(self, edge: Tuple[Hashable, Hashable]) -> EdgeInfo:
        return EdgeInfo(
            edge=edge,
            kind=self._edge_kinds.get(edge, "original"),
            data=self.tree.edge_data.get(edge),
        )

    def element_kind(self, e: Element) -> str:
        """``"node"``, ``"indegree-0"``, ``"indegree-1"`` or ``"final"``."""
        if e[0] == "node":
            return "node"
        return self._clusters[e[1]].kind.value

    def summary_of(self, e: Element) -> Any:
        """Summary of a sub-cluster element (bottom-up invariant, Def. 8)."""
        if e[0] != "cluster":
            raise KeyError(f"element {e!r} is not a cluster element")
        return self._summaries[e[1]]

    def sub_cluster(self, e: Element) -> Cluster:
        """The :class:`Cluster` object of a cluster element."""
        if e[0] != "cluster":
            raise KeyError(f"element {e!r} is not a cluster element")
        return self._clusters[e[1]]

    def element_top_node(self, e: Element) -> Hashable:
        """The original node that carries element ``e``'s outgoing edge."""
        if e[0] == "node":
            return e[1]
        return self._clusters[e[1]].top_node

    # -- hole -------------------------------------------------------------- #

    @property
    def in_edge(self) -> Optional[EdgeInfo]:
        if self.cluster.in_edge is None:
            return None
        return self.edge_info(self.cluster.in_edge)

    @property
    def hole_element(self) -> Optional[Element]:
        return self.cluster.hole_element

    @property
    def is_indegree_one(self) -> bool:
        return self.cluster.in_edge is not None

    @property
    def out_edge(self) -> Tuple[Hashable, Hashable]:
        return self.cluster.out_edge

    @property
    def top_node(self) -> Hashable:
        return self.cluster.top_node


class ClusterDP(abc.ABC):
    """Engine-facing interface: the paper's Definition 1, per cluster.

    Summaries must be representable with O(1) machine words (checked in the
    test-suite with :func:`repro.mpc.words.word_size` for every shipped
    problem).
    """

    #: Problems whose semiring is not selective cannot produce per-edge labels;
    #: the engine then skips the top-down pass and only reports the root value.
    produces_labels: bool = True

    @abc.abstractmethod
    def summarize(self, ctx: ClusterContext) -> Any:
        """Compute f(C) from the summaries of the cluster's elements (Fig. 2)."""

    def summarize_layer(self, ctxs: List["ClusterContext"]) -> List[Any]:
        """Summaries of one whole layer of clusters, aligned with ``ctxs``.

        A layer is the engine's parallel unit (all its clusters are solved
        independently within one charged round, Section 5.1).  The default
        simply maps :meth:`summarize`; vectorized solvers override this to
        batch work across the layer's clusters.
        """
        return [self.summarize(ctx) for ctx in ctxs]

    @abc.abstractmethod
    def label_virtual_root(self, ctx: ClusterContext, summary: Any) -> Tuple[Any, Any]:
        """Label of the topmost cluster's (virtual) outgoing edge.

        Returns ``(label, value)`` where ``value`` is the problem's objective
        (optimal weight, count, aggregate at the root, ...).
        """

    def assign_internal_labels(
        self, ctx: ClusterContext, out_label: Any, in_label: Any
    ) -> Dict[Element, Any]:
        """Labels of the cluster's internal edges given its boundary labels (Fig. 3).

        Returns a mapping from every non-top element to the label of the edge
        connecting it to its parent element.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support the top-down pass"
        )

    def extract(
        self,
        tree: RootedTree,
        edge_labels: Dict[Tuple[Hashable, Hashable], Any],
        root_label: Any,
        value: Any,
    ) -> Any:
        """Optional problem-specific post-processing of the labelling."""
        return {"edge_labels": edge_labels, "root_label": root_label, "value": value}


class FiniteStateDP(abc.ABC):
    """Per-node finite-state DP description (see module docstring).

    Concrete problems define:

    * :attr:`states` — the finite per-node state set; the label of an edge
      ``(u, v)`` is the state chosen for ``u``.
    * :attr:`semiring` — how values are combined.
    * :meth:`node_init` — initial accumulator(s) for a node.
    * :meth:`transition` — absorb one child given its state and the
      connecting edge; yields ``(new_accumulator_state, value)`` pairs.
    * :meth:`finalize` — map an accumulator state to the node's own states;
      yields ``(node_state, value)`` pairs (typically adding the node weight).
    * :meth:`virtual_root_value` — extra value/feasibility of a state at the
      tree root (the virtual outgoing edge).

    Problems whose accumulator space is finite declare it in
    :attr:`acc_states`; together with a semiring that has a dense kernel
    (:mod:`repro.dp.kernels`) this enables the vectorized NumPy backend,
    which represents all tables as dense arrays indexed by state id.  The
    optional ``*_key`` hooks let the backend cache the enumerated transition
    tensors across nodes: a problem whose rules depend only on, say, the
    edge kind returns that as the key and pays the enumeration cost once per
    kind instead of once per tree node.  Every payload the rule reads must
    be part of the key.
    """

    #: Finite, ordered state set.
    states: Sequence[Hashable] = ()
    #: Finite, ordered accumulator state set, or ``None`` when the
    #: accumulator space is unbounded/exotic (forces the scalar backend).
    acc_states: Optional[Sequence[Hashable]] = None
    #: Evaluation semiring.
    semiring: Semiring = None  # type: ignore[assignment]
    #: Human-readable problem name (used by the Table-1 benchmark).
    name: str = "finite-state-dp"

    def init_key(self, v: NodeInput) -> Optional[Hashable]:
        """Cache key of ``node_init(v)``'s dense vector (``None``: no caching)."""
        return None

    def transition_key(self, v: NodeInput, edge: EdgeInfo) -> Optional[Hashable]:
        """Cache key of ``transition``'s dense tensor for ``(v, edge)``."""
        return None

    def finalize_key(self, v: NodeInput) -> Optional[Hashable]:
        """Cache key of ``finalize(v, ·)``'s dense matrix (``None``: no caching)."""
        return None

    def finalize_affine_key(self, v: NodeInput) -> Optional[Tuple[Hashable, Any]]:
        """Optional affine decomposition of ``finalize``'s node parameter.

        Returns ``(structural_key, w)`` when the finalize values depend on
        the node only through ``w`` — a scalar (typically the node weight)
        or a tuple of scalars (e.g. per-node clause weights) — *linearly*:
        ``F(v) = F(v|w=0) + Σ_k w_k * M_k`` cell by cell, where ``M_k`` is
        the unit-probe difference for the k-th weight.  The dense backend
        then enumerates the probe matrices once per structural key (see
        :meth:`finalize_affine_probe`) and builds every node's matrix — or a
        whole batch of them — with one fused array expression.  All nodes
        sharing one structural key must declare the same number of weights.
        Return ``None`` when finalize is not affine (the backend falls back
        to :meth:`finalize_key` caching / enumeration).  Only meaningful for
        the tropical (min-plus / max-plus) semirings.
        """
        return None

    def finalize_affine_probe(self, v: NodeInput, w: Any) -> NodeInput:
        """A copy of ``v`` whose finalize parameter is ``w``.

        Required when :meth:`finalize_affine_key` is implemented; called
        once per structural key with ``w = 0.0`` and ``w = 1.0`` when the
        declared parameter is a scalar, or with the all-zero and unit weight
        tuples when it is a tuple.
        """
        raise NotImplementedError(
            f"{self.name}: finalize_affine_key is declared but "
            "finalize_affine_probe is not implemented"
        )

    def transition_affine_key(
        self, v: NodeInput, edge: EdgeInfo
    ) -> Optional[Tuple[Hashable, Tuple[float, ...]]]:
        """Optional affine decomposition of ``transition``'s edge parameter.

        The transition analogue of :meth:`finalize_affine_key`: returns
        ``(structural_key, weights)`` when the transition values depend on
        ``(v, edge)`` only through the weight tuple, linearly —
        ``T(v, edge) = T|w=0 + Σ_k w_k * M_k`` cell by cell — while the
        *feasibility* pattern (which cells are the semiring zero) is fixed
        by the structural key alone.  The dense backend enumerates the probe
        tensors once per structural key (see
        :meth:`transition_affine_probe`) and composes every edge's tensor —
        or a whole batch of them — with one fused array expression, which is
        what lets per-edge weighted rules (e.g. max-SAT clause weights) join
        the grouped cross-cluster evaluation instead of defeating the tensor
        caches.  Return ``None`` when the transition is not affine (the
        backend falls back to :meth:`transition_key` caching / enumeration).
        Only meaningful for the tropical (min-plus / max-plus) semirings.
        """
        return None

    def transition_affine_probe(
        self, v: NodeInput, edge: EdgeInfo, weights: Tuple[float, ...]
    ) -> Tuple[NodeInput, "EdgeInfo"]:
        """A ``(v, edge)`` copy whose transition weight vector is ``weights``.

        Required when :meth:`transition_affine_key` is implemented; called
        once per structural key with the all-zero tuple and each unit tuple.
        """
        raise NotImplementedError(
            f"{self.name}: transition_affine_key is declared but "
            "transition_affine_probe is not implemented"
        )

    @abc.abstractmethod
    def node_init(self, v: NodeInput) -> Iterable[Tuple[Hashable, Any]]:
        """Initial ``(accumulator_state, value)`` pairs for node ``v``."""

    @abc.abstractmethod
    def transition(
        self, v: NodeInput, acc: Hashable, child_state: Hashable, edge: EdgeInfo
    ) -> Iterable[Tuple[Hashable, Any]]:
        """Absorb one child with ``child_state`` through ``edge``."""

    @abc.abstractmethod
    def finalize(self, v: NodeInput, acc: Hashable) -> Iterable[Tuple[Hashable, Any]]:
        """Map a final accumulator state to ``(node_state, value)`` pairs."""

    def virtual_root_value(self, state: Hashable) -> Any:
        """Value multiplied in for the root's state (default: neutral)."""
        return self.semiring.one

    def label_of_state(self, state: Hashable) -> Any:
        """Convert an internal state into the user-visible edge label."""
        return state

    def extract_solution(
        self,
        tree: RootedTree,
        node_states: Dict[Hashable, Hashable],
        value: Any,
    ) -> Any:
        """Problem-specific interpretation of the per-node states."""
        return {"node_states": node_states, "value": value}
