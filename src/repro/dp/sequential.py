"""Single-machine reference solvers used as ground truth in the test-suite.

* :func:`solve_sequential` runs a :class:`~repro.dp.problem.FiniteStateDP`
  with the classical bottom-up tree DP over the whole tree at once (as in a
  textbook sequential algorithm, cf. the paper's remark that the indegree-0
  cluster handling "is, in essence, identical to the classical centralized,
  sequential algorithm").
* :func:`brute_force_best` enumerates *all* state assignments of a (small)
  tree, providing an implementation-independent oracle for the optimisation
  problems; property-based tests compare framework, sequential and brute
  force against each other.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.trees.tree import RootedTree

__all__ = ["SequentialResult", "solve_sequential", "brute_force_best", "assignment_value"]


class SequentialResult:
    """Value plus (for selective semirings) one optimal state assignment."""

    def __init__(self, value: Any, node_states: Dict[Hashable, Hashable], output: Any):
        self.value = value
        self.node_states = node_states
        self.output = output


def _node_input(problem: FiniteStateDP, tree: RootedTree, v: Hashable, aux_nodes) -> NodeInput:
    return NodeInput(node=v, data=tree.node_data.get(v), is_auxiliary=v in aux_nodes)


def _edge_info(tree: RootedTree, edge, edge_kinds) -> EdgeInfo:
    return EdgeInfo(edge=edge, kind=edge_kinds.get(edge, "original"), data=tree.edge_data.get(edge))


def solve_sequential(
    problem: FiniteStateDP,
    tree: RootedTree,
    edge_kinds: Optional[Dict[Tuple[Hashable, Hashable], str]] = None,
    aux_nodes: Optional[set] = None,
) -> SequentialResult:
    """Classical bottom-up tree DP (with traceback for selective semirings)."""
    sr = problem.semiring
    edge_kinds = edge_kinds or {}
    aux_nodes = aux_nodes or set()
    cm = tree.children_map()

    vectors: Dict[Hashable, Dict[Hashable, Any]] = {}
    traces: Dict[Hashable, Tuple[List, List, Dict]] = {}

    for v in tree.postorder():
        inp = _node_input(problem, tree, v, aux_nodes)
        kids = cm[v]
        acc: Dict[Hashable, Any] = {}
        for a, val in problem.node_init(inp):
            if sr.is_zero(val):
                continue
            _merge(sr, acc, a, val, None, None)
        step_choices: List[Dict] = []
        for c in kids:
            edge = _edge_info(tree, (c, v), edge_kinds)
            child_vec = vectors[c]
            new_acc: Dict[Hashable, Any] = {}
            choices: Dict[Hashable, Tuple[Hashable, Hashable]] = {}
            for a_state, a_val in acc.items():
                for c_state, c_val in child_vec.items():
                    if sr.is_zero(c_val):
                        continue
                    for n_state, t_val in problem.transition(inp, a_state, c_state, edge):
                        val = sr.times(a_val, sr.times(c_val, t_val))
                        if sr.is_zero(val):
                            continue
                        _merge(sr, new_acc, n_state, val, choices, (a_state, c_state))
            acc = new_acc
            step_choices.append(choices)
        vec: Dict[Hashable, Any] = {}
        fin_choice: Dict[Hashable, Hashable] = {}
        for a_state, a_val in acc.items():
            for n_state, f_val in problem.finalize(inp, a_state):
                val = sr.times(a_val, f_val)
                if sr.is_zero(val):
                    continue
                _merge(sr, vec, n_state, val, fin_choice, a_state)
        vectors[v] = vec
        traces[v] = (kids, step_choices, fin_choice)

    # Root: apply the virtual edge value.
    root_vec = vectors[tree.root]
    if sr.selective:
        best_state, best_val = None, sr.zero
        for state, val in root_vec.items():
            total = sr.times(val, problem.virtual_root_value(state))
            if sr.is_zero(total):
                continue
            if best_state is None or sr.prefer(total, best_val):
                best_state, best_val = state, total
        if best_state is None:
            raise ValueError(f"{problem.name}: no feasible solution exists")
        node_states = _traceback(tree, traces, best_state)
        output = problem.extract_solution(tree, node_states, best_val)
        return SequentialResult(best_val, node_states, output)

    total = sr.zero
    for state, val in root_vec.items():
        total = sr.plus(total, sr.times(val, problem.virtual_root_value(state)))
    return SequentialResult(total, {}, problem.extract_solution(tree, {}, total))


def _traceback(tree: RootedTree, traces, root_state) -> Dict[Hashable, Hashable]:
    node_states: Dict[Hashable, Hashable] = {tree.root: root_state}
    stack = [tree.root]
    while stack:
        v = stack.pop()
        s = node_states[v]
        kids, step_choices, fin_choice = traces[v]
        acc_state = fin_choice[s]
        for j in range(len(kids) - 1, -1, -1):
            prev_acc, child_state = step_choices[j][acc_state]
            node_states[kids[j]] = child_state
            stack.append(kids[j])
            acc_state = prev_acc
    return node_states


def _merge(sr, table, key, val, choice_table, choice):
    if key not in table:
        table[key] = val
        if choice_table is not None:
            choice_table[key] = choice
        return
    if sr.selective:
        if sr.prefer(val, table[key]):
            table[key] = val
            if choice_table is not None:
                choice_table[key] = choice
    else:
        table[key] = sr.plus(table[key], val)


# --------------------------------------------------------------------------- #
# Brute force oracle
# --------------------------------------------------------------------------- #


def assignment_value(
    problem: FiniteStateDP,
    tree: RootedTree,
    assignment: Dict[Hashable, Hashable],
    edge_kinds: Optional[Dict[Tuple[Hashable, Hashable], str]] = None,
    aux_nodes: Optional[set] = None,
) -> Any:
    """Value of one full state assignment (zero if infeasible).

    Evaluates exactly the same transition/finalize/virtual-root functions the
    DP uses, but on a fixed assignment, so it is an independent check of the
    DP's combination logic rather than of the problem definition itself.
    """
    sr = problem.semiring
    edge_kinds = edge_kinds or {}
    aux_nodes = aux_nodes or set()
    cm = tree.children_map()
    total = sr.one
    for v in tree.postorder():
        inp = _node_input(problem, tree, v, aux_nodes)
        acc_states = {a: val for a, val in problem.node_init(inp) if not sr.is_zero(val)}
        for c in cm[v]:
            edge = _edge_info(tree, (c, v), edge_kinds)
            new_states: Dict[Hashable, Any] = {}
            for a_state, a_val in acc_states.items():
                for n_state, t_val in problem.transition(inp, a_state, assignment[c], edge):
                    val = sr.times(a_val, t_val)
                    if sr.is_zero(val):
                        continue
                    _merge(sr, new_states, n_state, val, None, None)
            acc_states = new_states
        node_val = sr.zero
        for a_state, a_val in acc_states.items():
            for n_state, f_val in problem.finalize(inp, a_state):
                if n_state != assignment[v]:
                    continue
                node_val = sr.plus(node_val, sr.times(a_val, f_val))
        total = sr.times(total, node_val)
        if sr.is_zero(total):
            return sr.zero
    total = sr.times(total, problem.virtual_root_value(assignment[tree.root]))
    return total


def brute_force_best(
    problem: FiniteStateDP,
    tree: RootedTree,
    edge_kinds: Optional[Dict[Tuple[Hashable, Hashable], str]] = None,
    aux_nodes: Optional[set] = None,
    max_nodes: int = 12,
) -> Any:
    """Best value over all assignments of a small tree (selective semirings)
    or the accumulated total (non-selective)."""
    sr = problem.semiring
    nodes = tree.nodes()
    if len(nodes) > max_nodes:
        raise ValueError(f"brute force limited to {max_nodes} nodes, got {len(nodes)}")
    best = sr.zero
    for combo in itertools.product(problem.states, repeat=len(nodes)):
        assignment = dict(zip(nodes, combo))
        val = assignment_value(problem, tree, assignment, edge_kinds, aux_nodes)
        best = sr.plus(best, val)
    return best
