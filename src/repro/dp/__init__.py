"""The dynamic programming framework (paper Sections 1.6 and 5).

A *DP problem* in the sense of the paper's Definition 1 is described to the
engine through the :class:`~repro.dp.problem.ClusterDP` interface: it must be
able to summarise a cluster with an O(1)-word table given the summaries of
the cluster's elements (Figure 2), produce the label of the topmost cluster's
outgoing edge, and fill in the labels of a cluster's internal edges once its
boundary labels are known (Figure 3).

Most concrete problems are expressed through one of two specialisations:

* :class:`~repro.dp.problem.FiniteStateDP` — per-node finite state spaces
  with accumulator transitions over the children, evaluated in a semiring
  (max-plus for optimisation, sum-product / counting for counting problems,
  Boolean for constraint satisfaction).  The generic
  :class:`~repro.dp.local_solver.FiniteStateClusterSolver` turns any such
  problem into a :class:`ClusterDP`.
* :class:`~repro.dp.accumulation.UpwardAccumulationDP` /
  :class:`~repro.dp.accumulation.DownwardAccumulationDP` — aggregate values
  flowing up or down the tree, with an O(1)-word function algebra used to
  summarise indegree-one clusters (path compression).

The :class:`~repro.dp.engine.DPEngine` executes the bottom-up and top-down
passes over a :class:`~repro.clustering.model.HierarchicalClustering` in O(1)
rounds per layer.
"""

from repro.dp.semiring import Semiring, MAX_PLUS, MIN_PLUS, SUM_PRODUCT, counting_mod
from repro.dp.problem import ClusterDP, FiniteStateDP, NodeInput, EdgeInfo
from repro.dp.local_solver import FiniteStateClusterSolver, backend_ineligibility
from repro.dp.kernels import DenseClusterKernel, StateSpace, kernel_for
from repro.dp.accumulation import (
    UpwardAccumulationDP,
    UpwardAccumulationSolver,
    DownwardAccumulationDP,
    DownwardAccumulationSolver,
)
from repro.dp.engine import DPEngine, SolveResult

__all__ = [
    "Semiring",
    "MAX_PLUS",
    "MIN_PLUS",
    "SUM_PRODUCT",
    "counting_mod",
    "ClusterDP",
    "FiniteStateDP",
    "NodeInput",
    "EdgeInfo",
    "FiniteStateClusterSolver",
    "backend_ineligibility",
    "DenseClusterKernel",
    "StateSpace",
    "kernel_for",
    "UpwardAccumulationDP",
    "UpwardAccumulationSolver",
    "DownwardAccumulationDP",
    "DownwardAccumulationSolver",
    "DPEngine",
    "SolveResult",
]
