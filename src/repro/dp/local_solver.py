"""Generic per-cluster solver for finite-state DP problems.

This module turns any :class:`~repro.dp.problem.FiniteStateDP` description
into a :class:`~repro.dp.problem.ClusterDP` the engine can run:

* The summary of an **indegree-zero** cluster is a vector over the states of
  its top node: ``table[a]`` is the best (or total, for counting semirings)
  value of an assignment of the cluster's nodes in which the top node has
  state ``a``.
* The summary of an **indegree-one** cluster is a matrix ``table[(a, b)]``
  over (top-node state, below-node state): the contribution of the cluster's
  nodes when its top node has state ``a`` and the node below its incoming
  edge has state ``b``; the incoming edge's constraint is included in the
  matrix, the outgoing edge's is not (it is applied by the enclosing cluster
  when this cluster is absorbed as an element).

Because every original edge is internal to exactly one cluster, every edge
constraint and every node weight is counted exactly once; the tests verify
this against sequential and brute-force solvers.

Two interchangeable local computations implement the per-cluster solve:

* the **numpy backend** (:class:`~repro.dp.kernels.dense_local.DenseClusterKernel`)
  keeps tables as dense arrays, batches all hole states of an indegree-one
  cluster into one element-tree walk, and — given a whole layer of clusters
  at once — level-schedules the off-hole-path elements and depth-schedules
  the hole-path elements into stacked cross-cluster array programs; this is
  the default whenever the problem declares
  :attr:`~repro.dp.problem.FiniteStateDP.acc_states`
  and its semiring has a dense kernel;
* the **python backend** (this module) walks the element tree with
  dict-of-dicts tables and generator-based transitions — the fallback for
  exotic semirings or unbounded accumulator spaces (e.g. edge coloring's
  used-colour sets), and the executable reference the numpy backend is
  tested against (bit-identical values and labels).

Both backends iterate candidates in canonical state-id order, so results do
not depend on the backend choice.  Select explicitly with
``FiniteStateClusterSolver(problem, backend="numpy"|"python")`` or through
``MPCConfig.dp_backend`` / the pipeline's ``backend=`` arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.clustering.model import Element
from repro.dp.kernels.dense_local import HOLE, DenseClusterKernel
from repro.dp.kernels.semiring_kernels import kernel_for
from repro.dp.problem import ClusterContext, ClusterDP, FiniteStateDP
from repro.dp.semiring import Semiring

__all__ = ["FiniteStateClusterSolver", "backend_ineligibility", "BACKENDS", "HOLE"]

#: Recognised backend choices.
BACKENDS = ("auto", "numpy", "python")


def backend_ineligibility(problem: FiniteStateDP) -> Optional[str]:
    """Why ``problem`` cannot run on the numpy backend (``None`` if it can)."""
    if getattr(problem, "acc_states", None) is None:
        return "acc_states not declared (unbounded or exotic accumulator space)"
    if kernel_for(problem.semiring) is None:
        return f"semiring {problem.semiring.name!r} has no dense kernel"
    return None


@dataclass
class _NodeTrace:
    """Traceback information for a node element."""

    children: List[Tuple[Element, Any]]  # (child element or HOLE, EdgeInfo)
    # step_choices[j][acc_state] = (previous acc_state, child_state)
    step_choices: List[Dict[Hashable, Tuple[Hashable, Hashable]]] = field(default_factory=list)
    # finalize_choice[node_state] = acc_state
    finalize_choice: Dict[Hashable, Hashable] = field(default_factory=dict)


@dataclass
class _MatTrace:
    """Traceback information for an indegree-one sub-cluster element."""

    child: Element  # child element or HOLE
    choice: Dict[Hashable, Hashable] = field(default_factory=dict)  # top state -> below state


class FiniteStateClusterSolver(ClusterDP):
    """Adapter: :class:`FiniteStateDP` → :class:`ClusterDP`.

    Parameters
    ----------
    problem:
        The finite-state problem description.
    backend:
        ``"numpy"`` — dense vectorized kernels (raises :class:`ValueError`
        if the problem is not eligible); ``"python"`` — the scalar
        dict-table path; ``"auto"`` (default) — numpy when eligible, else
        python.
    """

    def __init__(self, problem: FiniteStateDP, backend: str = "auto"):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.problem = problem
        self.produces_labels = problem.semiring.selective
        why_not = backend_ineligibility(problem)
        if backend == "numpy" and why_not is not None:
            raise ValueError(f"{problem.name}: numpy backend unavailable — {why_not}")
        self.backend = "python" if backend == "python" or why_not is not None else "numpy"
        self._dense: Optional[DenseClusterKernel] = (
            DenseClusterKernel(problem) if self.backend == "numpy" else None
        )
        # Canonical iteration orders (shared tie-breaking with the dense path).
        self._state_order: Dict[Hashable, int] = {s: i for i, s in enumerate(problem.states)}
        acc_states = getattr(problem, "acc_states", None)
        self._acc_order: Optional[Dict[Hashable, int]] = (
            {a: i for i, a in enumerate(acc_states)} if acc_states is not None else None
        )

    # ------------------------------------------------------------------ #
    # ClusterDP interface
    # ------------------------------------------------------------------ #

    def summarize_layer(self, ctxs) -> List[Any]:
        if self._dense is not None:
            return self._dense.summarize_layer(ctxs)
        return [self.summarize(ctx) for ctx in ctxs]

    def summarize(self, ctx: ClusterContext) -> Any:
        if self._dense is not None:
            return self._dense.summarize(ctx)
        sr = self.problem.semiring
        if ctx.is_indegree_one:
            table: Dict[Tuple[Hashable, Hashable], Any] = {}
            for b in self.problem.states:
                vec, _ = self._local_vector(ctx, hole_state=b)
                for a, val in vec.items():
                    if not sr.is_zero(val):
                        table[(a, b)] = val
            return {"kind": "mat", "table": table}
        vec, _ = self._local_vector(ctx, hole_state=None)
        return {"kind": "vec", "table": {a: v for a, v in vec.items() if not sr.is_zero(v)}}

    def label_virtual_root(self, ctx: ClusterContext, summary: Any) -> Tuple[Any, Any]:
        if self._dense is not None:
            return self._dense.label_virtual_root(ctx, summary)
        sr = self.problem.semiring
        table = summary["table"]
        if sr.selective:
            best_state, best_val = None, sr.zero
            for state in self.problem.states:
                if state not in table:
                    continue
                total = sr.times(table[state], self.problem.virtual_root_value(state))
                if sr.is_zero(total):
                    continue
                if best_state is None or sr.prefer(total, best_val):
                    best_state, best_val = state, total
            if best_state is None:
                raise ValueError(f"{self.problem.name}: no feasible solution exists")
            return best_state, best_val
        total = sr.zero
        for state in self.problem.states:
            if state not in table:
                continue
            total = sr.plus(total, sr.times(table[state], self.problem.virtual_root_value(state)))
        return None, total

    def assign_internal_labels(
        self, ctx: ClusterContext, out_label: Any, in_label: Any
    ) -> Dict[Element, Any]:
        if not self.produces_labels:
            raise NotImplementedError(
                f"{self.problem.name} uses a non-selective semiring; "
                "only the root value is defined"
            )
        if self._dense is not None:
            return self._dense.assign_internal_labels(ctx, out_label, in_label)
        _, traces = self._local_vector(ctx, hole_state=in_label, record_trace=True)

        state_of: Dict[Element, Hashable] = {ctx.top_element: out_label}
        # Preorder: parents before children.
        stack = [ctx.top_element]
        while stack:
            e = stack.pop()
            s = state_of[e]
            trace = traces[e]
            if trace is None:
                continue  # leaf sub-cluster: no internal children here
            if isinstance(trace, _NodeTrace):
                acc_state = trace.finalize_choice.get(s)
                if acc_state is None:
                    raise RuntimeError(
                        f"inconsistent traceback: state {s!r} unreachable at element {e!r}"
                    )
                # Walk the children in reverse absorption order.
                for j in range(len(trace.children) - 1, -1, -1):
                    child_elem, _edge = trace.children[j]
                    prev_acc, child_state = trace.step_choices[j][acc_state]
                    if child_elem != HOLE:
                        state_of[child_elem] = child_state
                        stack.append(child_elem)
                    acc_state = prev_acc
            elif isinstance(trace, _MatTrace):
                if trace.child != HOLE:
                    below_state = trace.choice.get(s)
                    if below_state is None:
                        raise RuntimeError(
                            f"inconsistent traceback: state {s!r} unreachable at element {e!r}"
                        )
                    state_of[trace.child] = below_state
                    stack.append(trace.child)
            # indegree-zero sub-cluster elements are leaves: nothing to do.

        return {e: s for e, s in state_of.items() if e != ctx.top_element}

    def extract(self, tree, edge_labels, root_label, value):
        node_states: Dict[Hashable, Hashable] = {}
        for (child, _parent), state in edge_labels.items():
            node_states[child] = state
        node_states[tree.root] = root_label
        return self.problem.extract_solution(tree, node_states, value)

    # ------------------------------------------------------------------ #
    # Local (per-cluster) sequential DP — the python backend
    # ------------------------------------------------------------------ #

    def _ordered(self, table: Dict[Hashable, Any], order: Optional[Dict[Hashable, int]]):
        """Items of ``table`` in canonical state order (insertion order if none)."""
        if order is None or len(table) < 2:
            return table.items()
        fallback = len(order)
        return sorted(table.items(), key=lambda kv: order.get(kv[0], fallback))

    def _local_vector(
        self,
        ctx: ClusterContext,
        hole_state: Optional[Hashable],
        record_trace: bool = False,
    ) -> Tuple[Dict[Hashable, Any], Dict[Element, Any]]:
        """Vector over the top node's states, plus traceback data per element."""
        vectors: Dict[Element, Dict[Hashable, Any]] = {}
        traces: Dict[Element, Any] = {}

        hole_vector: Optional[Dict[Hashable, Any]] = None
        if hole_state is not None:
            hole_vector = {hole_state: self.problem.semiring.one}

        for e in ctx.element_postorder():
            kids = ctx.sorted_children_of(e)
            if e[0] == "node":
                vectors[e], traces[e] = self._solve_node_element(
                    ctx, e, kids, vectors, hole_vector
                )
            else:
                kind = ctx.element_kind(e)
                if kind == "indegree-1":
                    vectors[e], traces[e] = self._solve_indeg1_element(
                        ctx, e, kids, vectors, hole_vector
                    )
                else:  # indegree-0 (or, impossibly, final)
                    table = dict(ctx.summary_of(e)["table"])
                    vectors[e] = table
                    traces[e] = None  # leaf of the element tree: nothing to trace
                    if kids:
                        raise RuntimeError(
                            f"indegree-zero sub-cluster {e!r} unexpectedly has children"
                        )

        return vectors[ctx.top_element], traces

    def _solve_node_element(
        self,
        ctx: ClusterContext,
        e: Element,
        kids: List[Element],
        vectors: Dict[Element, Dict[Hashable, Any]],
        hole_vector: Optional[Dict[Hashable, Any]],
    ) -> Tuple[Dict[Hashable, Any], _NodeTrace]:
        sr = self.problem.semiring
        problem = self.problem
        v = e[1]
        inp = ctx.node_input(v)

        children: List[Tuple[Element, Any]] = [(c, ctx.edge_to_parent(c)) for c in kids]
        if ctx.hole_element == e and hole_vector is not None:
            children.append((HOLE, ctx.in_edge))

        trace = _NodeTrace(children=children)

        # Initial accumulator.
        acc: Dict[Hashable, Any] = {}
        for a_state, val in problem.node_init(inp):
            if sr.is_zero(val):
                continue
            self._merge(acc, a_state, val, None, sr)

        # Absorb children one at a time.
        for child_elem, edge in children:
            child_vec = hole_vector if child_elem == HOLE else vectors[child_elem]
            new_acc: Dict[Hashable, Any] = {}
            choices: Dict[Hashable, Tuple[Hashable, Hashable]] = {}
            for a_state, a_val in self._ordered(acc, self._acc_order):
                for c_state, c_val in self._ordered(child_vec, self._state_order):
                    if sr.is_zero(c_val):
                        continue
                    for n_state, t_val in problem.transition(inp, a_state, c_state, edge):
                        val = sr.times(a_val, sr.times(c_val, t_val))
                        if sr.is_zero(val):
                            continue
                        self._merge(new_acc, n_state, val, (choices, (a_state, c_state)), sr)
            acc = new_acc
            trace.step_choices.append(choices)
            if not acc:
                break

        # Finalize: accumulator -> node state vector.
        vec: Dict[Hashable, Any] = {}
        fin_choice: Dict[Hashable, Hashable] = {}
        for a_state, a_val in self._ordered(acc, self._acc_order):
            for n_state, f_val in problem.finalize(inp, a_state):
                val = sr.times(a_val, f_val)
                if sr.is_zero(val):
                    continue
                self._merge(vec, n_state, val, (fin_choice, a_state), sr)
        trace.finalize_choice = fin_choice
        return vec, trace

    def _solve_indeg1_element(
        self,
        ctx: ClusterContext,
        e: Element,
        kids: List[Element],
        vectors: Dict[Element, Dict[Hashable, Any]],
        hole_vector: Optional[Dict[Hashable, Any]],
    ) -> Tuple[Dict[Hashable, Any], _MatTrace]:
        sr = self.problem.semiring
        table = ctx.summary_of(e)["table"]

        if kids:
            if len(kids) != 1:
                raise RuntimeError(
                    f"indegree-one sub-cluster {e!r} must have exactly one child, got {kids}"
                )
            child = kids[0]
            below_vec = vectors[child]
        else:
            if ctx.hole_element != e or hole_vector is None:
                raise RuntimeError(
                    f"indegree-one sub-cluster {e!r} has no child and is not the hole element"
                )
            child = HOLE
            below_vec = hole_vector

        vec: Dict[Hashable, Any] = {}
        trace = _MatTrace(child=child)
        for (a, b), m_val in table.items():
            b_val = below_vec.get(b)
            if b_val is None or sr.is_zero(b_val):
                continue
            val = sr.times(m_val, b_val)
            if sr.is_zero(val):
                continue
            self._merge(vec, a, val, (trace.choice, b), sr)
        return vec, trace

    @staticmethod
    def _merge(
        table: Dict[Hashable, Any],
        key: Hashable,
        val: Any,
        choice: Optional[Tuple[Dict, Any]],
        sr: Semiring,
    ) -> None:
        """Insert ``val`` for ``key``: keep the best (selective) or accumulate."""
        if key not in table:
            table[key] = val
            if choice is not None:
                choice[0][key] = choice[1]
            return
        if sr.selective:
            if sr.prefer(val, table[key]):
                table[key] = val
                if choice is not None:
                    choice[0][key] = choice[1]
        else:
            table[key] = sr.plus(table[key], val)
