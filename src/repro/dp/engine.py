"""The DP engine: bottom-up and top-down passes over the clustering (Section 5).

Given a hierarchical clustering and a :class:`~repro.dp.problem.ClusterDP`,
the engine

1. fills in the dynamic programming tables layer by layer from the bottom
   (maintaining the bottom-up invariant of Definition 8, Fig. 2), and then
2. fills in the edge labels layer by layer from the top (maintaining the
   top-down invariant of Definition 9, Fig. 3).

Per layer, the data movement in the MPC model is: sort the (cluster id,
element summary) records so every cluster's elements are co-located, run the
per-cluster sequential computation locally, and route the new summaries back
— a constant number of rounds.  The reproduction performs the per-cluster
computations on the driver (they are local by construction) and charges
``ROUNDS_PER_LAYER`` rounds per layer and pass under the label ``"dp-pass"``,
so benchmarks can verify that the number of DP rounds depends only on the
number of layers (which is O(1)), not on ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.clustering.model import Cluster, HierarchicalClustering
from repro.dp.problem import ClusterContext, ClusterDP
from repro.mpc.simulator import MPCSimulator
from repro.obs import DEFAULT_SIZE_BUCKETS
from repro.obs.context import OBS_OFF

__all__ = ["DPEngine", "SolveResult", "ROUNDS_PER_LAYER", "DP_PASS_LABEL", "DP_UPDATE_LABEL"]

#: Rounds charged per layer and per pass: one sort to group every cluster's
#: elements onto one machine, one routing step to send the summaries/labels
#: back (Section 5.1/5.2).
ROUNDS_PER_LAYER = 2

#: Round/word label of the initial (full) solve's passes.
DP_PASS_LABEL = "dp-pass"
#: Round/word label of the incremental update path's partial passes — kept
#: separate so benchmarks can compare an update's cost against a full solve.
DP_UPDATE_LABEL = "dp-update"


@dataclass
class SolveResult:
    """Result of running one DP problem over a clustering.

    Attributes
    ----------
    value:
        The problem's objective value (optimal weight, count, root aggregate).
    root_label:
        Label of the virtual edge leaving the root (the root's state/value).
    edge_labels:
        Label of every tree edge ``(child, parent)``; the label of an edge is
        the output associated with its child endpoint (paper Definition 1).
        Empty when the problem cannot produce labels (non-selective semiring).
    node_labels:
        Convenience view: label of every node = label of its outgoing edge
        (the root maps to ``root_label``).
    output:
        Problem-specific extraction (e.g. the chosen independent set).
    summaries:
        Per-cluster DP tables f(C), keyed by cluster id (exposed for tests
        and for the word-size checks).
    rounds:
        Charged DP rounds (bottom-up plus top-down).
    layers:
        Number of layers processed.
    """

    value: Any
    root_label: Any
    edge_labels: Dict[Tuple[Hashable, Hashable], Any]
    node_labels: Dict[Hashable, Any]
    output: Any
    summaries: Dict[int, Any]
    rounds: int
    layers: int


class DPEngine:
    """Runs :class:`ClusterDP` problems over a hierarchical clustering."""

    def __init__(
        self,
        clustering: HierarchicalClustering,
        sim: Optional[MPCSimulator] = None,
        edge_kinds: Optional[Dict[Tuple[Hashable, Hashable], str]] = None,
        aux_nodes: Optional[set] = None,
        original_parent: Optional[Dict[Hashable, Hashable]] = None,
    ):
        self.hc = clustering
        self.sim = sim
        #: The deployment's observability context (inert singleton when the
        #: engine runs simulator-less or obs is off).
        self.obs = sim.obs if sim is not None else OBS_OFF
        self.edge_kinds = edge_kinds or {}
        self.aux_nodes = aux_nodes or set()
        self.original_parent = original_parent or {}
        #: When False, :meth:`solve` never opens an exec-backend DP session
        #: (everything runs inline on the driver).  The incremental subsystem
        #: clears this: its long-lived solver's memo state (trace memos,
        #: rule-tensor caches) must be populated on the driver by the full
        #: solve, because every subsequent point update re-reads it there.
        self.exec_enabled = True

    # ------------------------------------------------------------------ #

    def context(self, cluster: Cluster, summaries: Dict[int, Any]) -> ClusterContext:
        """A :class:`ClusterContext` for one cluster against ``summaries``."""
        return ClusterContext(
            cluster=cluster,
            tree=self.hc.tree,
            summaries=summaries,
            clusters=self.hc.clusters,
            edge_kinds=self.edge_kinds,
            aux_nodes=self.aux_nodes,
            original_parent=self.original_parent,
        )

    def _charge(self, rounds: int, label: str = DP_PASS_LABEL) -> None:
        if self.sim is not None:
            self.sim.charge_rounds(rounds, label=label)

    def _charge_words(self, payloads: Sequence[Any], label: str = DP_PASS_LABEL) -> None:
        """Charge the routed volume of one layer's summaries or labels."""
        if self.sim is not None:
            sizer = self.sim.word_size
            self.sim.charge_words(sum(sizer(p) for p in payloads), label=label)

    # ------------------------------------------------------------------ #

    def _exec_session(self, problem: ClusterDP):
        """A DP execution session for one full solve, or ``None`` (inline).

        Only the full solve distributes its layer batches: the incremental
        update path re-solves small cluster subsets where pool round-trips
        cannot pay off, and its driver-side solver state (trace memos) must
        stay authoritative.  The returned session, if any, must be closed.
        """
        if self.sim is None or not self.exec_enabled:
            return None
        backend = self.sim.executor
        return backend.dp_session(
            {
                "clustering": self.hc,
                "edge_kinds": self.edge_kinds,
                "aux_nodes": self.aux_nodes,
                "original_parent": self.original_parent,
            },
            problem,
            obs=self.obs,
        )

    def summarize_clusters(
        self,
        problem: ClusterDP,
        summaries: Dict[int, Any],
        clusters_by_layer: Dict[int, List[Cluster]],
        label: str = DP_PASS_LABEL,
        session=None,
    ) -> int:
        """Bottom-up pass over the given clusters only (``summaries`` updated).

        ``clusters_by_layer`` maps layer index → clusters of that layer to
        (re-)summarize; every other cluster's entry in ``summaries`` is
        reused as-is, which is what makes the incremental update path's
        partial re-solve possible.  Layers are processed in ascending order
        and each touched layer is handed to the solver as one batch (the
        engine's parallel unit), exactly like the full pass; rounds and the
        routed summary words are charged per listed layer under ``label``.
        A listed layer with no clusters still charges its rounds (and zero
        words) — the full solve lists every layer, including the empty ones
        some trees produce, and its round count must stay identical to the
        top-down pass's and to previous releases.  Returns the number of
        rounds charged.

        ``session`` is an open exec-backend DP session (see
        :meth:`_exec_session`): when given, each layer batch is evaluated on
        the worker pool instead of the driver; the summaries land in
        ``summaries`` either way, so the round/word charging below is shared
        verbatim between the placements.
        """
        obs = self.obs
        charged = 0
        for layer in sorted(clusters_by_layer):
            clusters = clusters_by_layer[layer]
            with obs.trace(
                "dp.layer",
                dp_pass="bottom-up",
                layer=layer,
                clusters=len(clusters),
                label=label,
            ):
                if clusters:
                    if session is not None:
                        results = session.solve_layer(clusters, summaries)
                    else:
                        ctxs = [self.context(cluster, summaries) for cluster in clusters]
                        results = problem.summarize_layer(ctxs)
                    for cluster, summary in zip(clusters, results):
                        summaries[cluster.cid] = summary
                self._charge(ROUNDS_PER_LAYER, label)
                self._charge_words([summaries[c.cid] for c in clusters], label)
            if obs.enabled:
                obs.metrics.counter("repro_dp_layers_total", dp_pass="bottom-up").inc()
                obs.metrics.histogram(
                    "repro_dp_layer_batch_clusters",
                    DEFAULT_SIZE_BUCKETS,
                    dp_pass="bottom-up",
                ).observe(len(clusters))
            charged += ROUNDS_PER_LAYER
        return charged

    def solve(self, problem: ClusterDP) -> SolveResult:
        """Run the bottom-up and top-down passes for ``problem``."""
        summaries: Dict[int, Any] = {}
        session = self._exec_session(problem)
        try:
            return self._solve(problem, summaries, session)
        finally:
            if session is not None:
                session.close()
            if self.obs.enabled:
                self.export_kernel_metrics(problem)

    def export_kernel_metrics(self, problem: ClusterDP) -> None:
        """Publish the dense kernel's cache counters as labeled gauges.

        Pull-style: the kernel keeps its own plain-int counters (hits,
        misses, evictions, enumerations, recomposes) with zero obs overhead;
        this copies a consistent reading into the registry after a solve or
        an update batch.  No-op for problems without a dense kernel.
        """
        dense = getattr(problem, "_dense", None)
        if dense is None:
            return
        name = getattr(getattr(dense, "problem", None), "name", "problem")
        gauge = self.obs.metrics.gauge
        for stat, value in dense.cache_stats().items():
            gauge("repro_kernel_cache", problem=name, stat=stat).set(value)

    def _solve(self, problem: ClusterDP, summaries: Dict[int, Any], session) -> SolveResult:
        hc = self.hc

        # ---- bottom-up (Definition 8 / Figure 2) -------------------------- #
        # A layer's clusters are independent (they would be solved by
        # different machines in one round); they are handed to the solver as
        # one batch so vectorized solvers can share work across clusters.
        charged = self.summarize_clusters(
            problem,
            summaries,
            {layer: hc.clusters_at_layer(layer) for layer in range(1, hc.num_layers + 1)},
            session=session,
        )

        final = hc.final_cluster
        ctx_final = self.context(final, summaries)
        root_label, value = problem.label_virtual_root(ctx_final, summaries[final.cid])

        edge_labels: Dict[Tuple[Hashable, Hashable], Any] = {}
        node_labels: Dict[Hashable, Any] = {}

        # ---- top-down (Definition 9 / Figure 3) --------------------------- #
        if problem.produces_labels:
            # The virtual root edge is labeled first.  A cluster's boundary
            # labels are written by strictly higher layers, so each layer is
            # one independent batch — inline it runs cluster by cluster; under
            # an exec session the batch is labelled on the workers that
            # summarised the clusters (their trace memos are local).
            obs = self.obs
            for layer in range(hc.num_layers, 0, -1):
                items: List[Tuple[Cluster, Any, Any]] = []
                for cluster in hc.clusters_at_layer(layer):
                    if cluster.cid == hc.final_cluster_id:
                        out_label = root_label
                    else:
                        out_label = edge_labels[cluster.out_edge]
                    in_label = (
                        edge_labels[cluster.in_edge] if cluster.in_edge is not None else None
                    )
                    items.append((cluster, out_label, in_label))
                with obs.trace(
                    "dp.layer",
                    dp_pass="top-down",
                    layer=layer,
                    clusters=len(items),
                    label=DP_PASS_LABEL,
                ):
                    labels_by_cid = (
                        session.label_layer(items, summaries)
                        if session is not None and items
                        else None
                    )
                    layer_labels: List[Any] = []
                    for cluster, out_label, in_label in items:
                        if labels_by_cid is not None:
                            labels = labels_by_cid[cluster.cid]
                        else:
                            ctx = self.context(cluster, summaries)
                            labels = problem.assign_internal_labels(
                                ctx, out_label, in_label
                            )
                        for child_e, _parent_e, edge in cluster.internal_edges:
                            edge_labels[edge] = labels[child_e]
                            layer_labels.append(labels[child_e])
                    self._charge(ROUNDS_PER_LAYER)
                    self._charge_words(layer_labels)
                if obs.enabled:
                    obs.metrics.counter(
                        "repro_dp_layers_total", dp_pass="top-down"
                    ).inc()
                    obs.metrics.histogram(
                        "repro_dp_layer_batch_clusters",
                        DEFAULT_SIZE_BUCKETS,
                        dp_pass="top-down",
                    ).observe(len(items))
                charged += ROUNDS_PER_LAYER

            for (child, _parent), lab in edge_labels.items():
                node_labels[child] = lab
            node_labels[hc.tree.root] = root_label

        output = problem.extract(hc.tree, edge_labels, root_label, value)

        return SolveResult(
            value=value,
            root_label=root_label,
            edge_labels=edge_labels,
            node_labels=node_labels,
            output=output,
            summaries=summaries,
            rounds=charged,
            layers=hc.num_layers,
        )
