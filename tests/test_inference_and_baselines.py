"""Gaussian tree inference (Section 6.2) and the rake-and-compress baseline."""

import numpy as np
import pytest

from repro.baselines.rake_compress import RakeCompressDP, max_is_edge_problem
from repro.core.pipeline import solve
from repro.inference import (
    GaussianTreeInference,
    random_gaussian_tree_model,
    root_posterior_reference,
)
from repro.inference.gaussian import GaussianFactor
from repro.mpc import MPCConfig, MPCSimulator
from repro.problems.max_weight_independent_set import sequential_max_weight_independent_set
from repro.trees import generators as gen

from tests.conftest import FAMILIES, FAMILY_IDS


class TestGaussianFactor:
    def test_multiply_and_marginalize_match_dense_gaussian(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 3))
        J = a @ a.T + 3 * np.eye(3)
        h = rng.normal(size=3)
        f = GaussianFactor(["x", "y", "z"], 1)
        f.J = J.copy()
        f.h = h.copy()
        marg = f.marginalize_out(["y", "z"])
        mean_full = np.linalg.solve(J, h)
        cov_full = np.linalg.inv(J)
        mean, cov = marg.mean_and_cov()
        assert np.allclose(mean, mean_full[:1])
        assert np.allclose(cov, cov_full[:1, :1])

    def test_word_size_is_quadratic_in_dim_only(self):
        f = GaussianFactor(["a", "b"], 2)
        assert f.word_size() == 16 + 4


class TestGaussianInference:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_root_posterior_matches_dense_reference(self, family, builder):
        tree = builder(60)
        model = random_gaussian_tree_model(tree, dim=1, seed=4)
        res = solve(tree, GaussianTreeInference(model), degree_reduction=False)
        mean_ref, cov_ref = root_posterior_reference(model)
        assert np.allclose(res.value["mean"], mean_ref, atol=1e-6)
        assert np.allclose(res.value["cov"], cov_ref, atol=1e-6)

    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_multivariate_states(self, dim):
        tree = gen.random_attachment_tree(40, seed=6)
        model = random_gaussian_tree_model(tree, dim=dim, seed=7)
        res = solve(tree, GaussianTreeInference(model), degree_reduction=False)
        mean_ref, cov_ref = root_posterior_reference(model)
        assert np.allclose(res.value["mean"], mean_ref, atol=1e-6)
        assert np.allclose(res.value["cov"], cov_ref, atol=1e-6)

    def test_posterior_covariance_shrinks_with_observations(self):
        tree = gen.star_tree(80)
        model = random_gaussian_tree_model(tree, dim=1, seed=8)
        res = solve(tree, GaussianTreeInference(model), degree_reduction=False)
        prior_var = model.Q[tree.root][0, 0]
        assert res.value["cov"][0, 0] < prior_var + 1e-9

    def test_summary_word_sizes_constant(self):
        tree = gen.path_tree(120)
        model = random_gaussian_tree_model(tree, dim=1, seed=9)
        res = solve(tree, GaussianTreeInference(model), degree_reduction=False)
        sizes = [s["factor"].word_size() for s in res.solve_result.summaries.values()]
        assert max(sizes) <= 6  # at most a factor over two scalar variables


class TestRakeCompressBaseline:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_value_matches_sequential(self, family, builder):
        tree = gen.with_random_weights(builder(200), seed=11)
        sim = MPCSimulator(MPCConfig(n=200))
        rc = RakeCompressDP(sim=sim, seed=5)
        val = rc.solve(tree, max_is_edge_problem(tree))
        assert val == pytest.approx(sequential_max_weight_independent_set(tree))
        assert rc.phases >= 1
        assert sim.stats.charged_rounds > 0

    def test_phase_count_grows_with_n_even_at_small_diameter(self):
        """The baseline's contraction depth tracks log n, not log D."""
        phases = {}
        for n in (64, 1024):
            tree = gen.with_random_weights(gen.caterpillar_tree(n), seed=1)
            rc = RakeCompressDP(seed=3)
            rc.solve(tree, max_is_edge_problem(tree))
            phases[n] = rc.phases
        assert phases[1024] > phases[64]

    def test_deterministic_given_seed(self):
        tree = gen.with_random_weights(gen.random_attachment_tree(150, seed=2), seed=2)
        a = RakeCompressDP(seed=42)
        b = RakeCompressDP(seed=42)
        va = a.solve(tree, max_is_edge_problem(tree))
        vb = b.solve(tree, max_is_edge_problem(tree))
        assert va == vb and a.phases == b.phases
