"""Substrate-equivalence tests: array vs record treeops, fast vs exact words.

Two independent equivalence axes of the rebuilt MPC substrate are pinned
here:

* ``treeops_backend`` — the vectorized integer-array tree subroutines
  (:mod:`repro.mpc.treeops_array`) must produce bit-identical outputs *and*
  bit-identical round/label accounting to the record-level reference path,
  for the raw subroutines and for the full clustering construction built on
  top of them (clusters, layers, hole paths, per-phase round stats,
  charged rounds).
* ``accounting`` — the structural fast sizer must observe the same peak
  word counts and total communication volume as the exact reference walker
  on real pipeline runs, and agree with it on representative record shapes.
"""

import pytest

from repro.clustering.builder import ClusteringBuilder
from repro.core.pipeline import prepare, solve_on
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import MPCSimulator
from repro.mpc.treeops import (
    _capped_subtree_gather_records,
    _compute_depths_records,
    _degree2_path_positions_records,
    capped_subtree_gather,
    compute_depths,
    degree2_path_positions,
)
from repro.mpc.words import fast_word_size, word_size
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.trees import generators as gen

from tests.conftest import FAMILIES, FAMILY_IDS


def sim_pair(n, **kw):
    """Two identically configured sims, one per treeops backend."""
    arr = MPCSimulator(MPCConfig(n=max(4, n), treeops_backend="array", **kw))
    rec = MPCSimulator(MPCConfig(n=max(4, n), treeops_backend="records", **kw))
    return arr, rec


def assert_round_stats_identical(a, b):
    assert a.rounds == b.rounds
    assert a.charged_rounds == b.charged_rounds
    assert a.rounds_by_label == b.rounds_by_label
    assert a.charged_by_label == b.charged_by_label


# --------------------------------------------------------------------------- #
# Raw treeops subroutines
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
def test_compute_depths_backends_bit_identical(family, builder):
    tree = builder(150)
    sim_a, sim_r = sim_pair(tree.num_nodes)
    depths_a = compute_depths(sim_a, dict(tree.parent), tree.root)
    depths_r = _compute_depths_records(sim_r, dict(tree.parent), tree.root)
    assert depths_a == depths_r
    assert all(type(d) is int for d in depths_a.values())
    assert_round_stats_identical(sim_a.stats, sim_r.stats)


@pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
@pytest.mark.parametrize("cap", [3, 8, 25])
def test_capped_subtree_gather_backends_bit_identical(family, builder, cap):
    tree = builder(130)
    sim_a, sim_r = sim_pair(tree.num_nodes)
    info_a = capped_subtree_gather(
        sim_a, dict(tree.parent), tree.children_map(), tree.root, cap=cap
    )
    info_r = _capped_subtree_gather_records(
        sim_r, dict(tree.parent), tree.children_map(), tree.root, cap=cap
    )
    assert set(info_a) == set(info_r)
    for v in info_r:
        a, r = info_a[v], info_r[v]
        assert (a.node, a.heavy, a.size, a.members) == (r.node, r.heavy, r.size, r.members)
    assert_round_stats_identical(sim_a.stats, sim_r.stats)


@pytest.mark.parametrize("seed", [0, 7, 23])
def test_degree2_path_positions_backends_bit_identical(seed):
    tree = gen.random_attachment_tree(160, seed=seed)
    children = tree.children_map()
    # Degree-2 path fragments of the tree, as the builder would extract them.
    path_parent, path_child = {}, {}
    for v in tree.nodes():
        if v == tree.root or len(children[v]) != 1:
            continue
        p = tree.parent[v]
        path_parent[v] = p if (p != tree.root and len(children[p]) == 1) else None
        c = children[v][0]
        path_child[v] = c if len(children.get(c, [])) == 1 and c != tree.root else None
    sim_a, sim_r = sim_pair(tree.num_nodes)
    pos_a = degree2_path_positions(sim_a, path_parent, path_child)
    pos_r = _degree2_path_positions_records(sim_r, path_parent, path_child)
    assert pos_a == pos_r
    assert_round_stats_identical(sim_a.stats, sim_r.stats)


def test_degree2_empty_is_equivalent():
    sim_a, sim_r = sim_pair(8)
    assert degree2_path_positions(sim_a, {}, {}) == {}
    assert _degree2_path_positions_records(sim_r, {}, {}) == {}
    assert_round_stats_identical(sim_a.stats, sim_r.stats)


# --------------------------------------------------------------------------- #
# Full clustering construction
# --------------------------------------------------------------------------- #


def hole_path_of(cluster):
    """Ordered hole path (hole element first) — the spine of hole_plan()."""
    if cluster.hole_element is None:
        return []
    parent = cluster.element_parent()
    path = [cluster.hole_element]
    while path[-1] != cluster.top_element:
        path.append(parent[path[-1]])
    return path


@pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
@pytest.mark.parametrize("n", [60, 300])
def test_clustering_backends_bit_identical(family, builder, n):
    tree = builder(n)
    sim_a, sim_r = sim_pair(tree.num_nodes)
    prep_a = prepare(tree, sim=sim_a)
    prep_r = prepare(tree, sim=sim_r)
    hc_a, hc_r = prep_a.clustering, prep_r.clustering

    assert hc_a.layers == hc_r.layers
    assert hc_a.num_layers == hc_r.num_layers
    assert hc_a.final_cluster_id == hc_r.final_cluster_id
    assert set(hc_a.clusters) == set(hc_r.clusters)
    for cid in hc_r.clusters:
        a, r = hc_a.clusters[cid], hc_r.clusters[cid]
        assert a.kind == r.kind and a.layer == r.layer
        assert a.elements == r.elements
        assert a.internal_edges == r.internal_edges
        assert (a.top_element, a.top_node, a.out_edge) == (r.top_element, r.top_node, r.out_edge)
        assert (a.in_edge, a.hole_element) == (r.in_edge, r.hole_element)
        assert hole_path_of(a) == hole_path_of(r)

    # Per-phase round statistics, measured and charged.
    assert_round_stats_identical(prep_a.normalization_stats, prep_r.normalization_stats)
    assert_round_stats_identical(prep_a.clustering_stats, prep_r.clustering_stats)
    assert hc_a.stats["rounds"] == hc_r.stats["rounds"]
    assert hc_a.stats["charged_rounds"] == hc_r.stats["charged_rounds"]
    assert hc_a.stats["iteration_log"] == hc_r.stats["iteration_log"]

    # And a DP solve on top sees no difference either.
    res_a = solve_on(prep_a, MaxWeightIndependentSet())
    res_r = solve_on(prep_r, MaxWeightIndependentSet())
    assert res_a.value == res_r.value
    assert res_a.edge_labels == res_r.edge_labels
    assert res_a.rounds == res_r.rounds


@pytest.mark.parametrize("seed", [2, 5, 11])
def test_clustering_backends_bit_identical_random_seeds(seed):
    tree = gen.random_attachment_tree(400, seed=seed)
    sim_a, sim_r = sim_pair(tree.num_nodes)
    hc_a = prepare(tree, sim=sim_a).clustering
    hc_r = prepare(tree, sim=sim_r).clustering
    assert hc_a.layers == hc_r.layers
    assert {c: hc_a.clusters[c].elements for c in hc_a.clusters} == {
        c: hc_r.clusters[c].elements for c in hc_r.clusters
    }
    assert hc_a.stats["rounds"] == hc_r.stats["rounds"]
    assert hc_a.stats["charged_rounds"] == hc_r.stats["charged_rounds"]


def test_builder_incremental_maps_match_reference_scan():
    """The incrementally maintained builder views equal the full rescans."""
    tree = gen.random_attachment_tree(250, seed=3)
    sim = MPCSimulator(MPCConfig(n=tree.num_nodes))
    builder = ClusteringBuilder(sim, tree)

    orig_make = builder._make_cluster

    def checked_make(*args, **kwargs):
        cid = orig_make(*args, **kwargs)
        assert builder.uncolored == {
            e for e in builder.elements if e not in builder.colored
        }
        # The rescan lists the final cluster element as its own colored child
        # (its parent pointer is a self-loop); no construction step ever reads
        # that state, and the incremental map deliberately drops the self-loop.
        reference = {
            p: kids
            for p, kids in builder._colored_children_map().items()
            if [p] != kids or builder.parent_elem.get(p) != p
        }
        assert builder.colored_children == reference
        return cid

    builder._make_cluster = checked_make
    builder.build()
    assert builder.uncolored == set()


# --------------------------------------------------------------------------- #
# Accounting modes
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "record",
    [
        7,
        -3,
        2**200,
        3.5,
        True,
        None,
        "clause-literal",
        b"\x00\x01",
        (4, 5, 6),
        (1, frozenset({2, 3, 4}), frozenset(), False),
        ("samples", [1, 2, 3, 9_999_999]),
        ("resp", 4, (4, frozenset({4, 5}), frozenset({5}), False)),
        {"clauses": [(True, 2.5)], "w": 1},
        [("L", (3, 1)), ("R", (3, 2))],
        frozenset({1.5, 2.5}),
        set(),
        (2**80, 1),
    ],
    ids=repr,
)
def test_fast_word_size_matches_exact(record):
    assert fast_word_size(record) == word_size(record)


def test_cached_word_count_is_authoritative():
    class Table:
        __mpc_words__ = 17

    assert word_size(Table()) == 17
    assert fast_word_size(Table()) == 17


def test_cached_word_count_wins_on_container_subclasses():
    # Both sizers must agree on cached records even when the record is a
    # container subclass (a NamedTuple, say) that the structural rules would
    # otherwise walk.
    class SizedTuple(tuple):
        __mpc_words__ = 5

    rec = SizedTuple((1, 2, 3, 4, 5, 6, 7, 8, 9))
    assert word_size(rec) == 5
    assert fast_word_size(rec) == 5


@pytest.mark.parametrize("treeops", ["records", "array"])
@pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
def test_fast_and_exact_accounting_observe_identical_peaks(family, builder, treeops):
    tree = builder(120)
    sims = {
        mode: MPCSimulator(MPCConfig(n=tree.num_nodes, accounting=mode, treeops_backend=treeops))
        for mode in ("exact", "fast")
    }
    stats = {}
    for mode, sim in sims.items():
        prep = prepare(tree, sim=sim)
        solve_on(prep, MaxWeightIndependentSet())
        stats[mode] = sim.stats
    e, f = stats["exact"], stats["fast"]
    assert e.peak_machine_words == f.peak_machine_words
    assert e.peak_round_send_words == f.peak_round_send_words
    assert e.peak_round_recv_words == f.peak_round_recv_words
    assert e.total_words_sent == f.total_words_sent
    assert e.total_messages == f.total_messages
    assert e.rounds == f.rounds and e.charged_rounds == f.charged_rounds


def test_accounting_off_disables_word_pricing_but_not_rounds():
    # The records backend actually routes messages, so word pricing is live.
    tree = gen.random_attachment_tree(150, seed=1)
    off = MPCSimulator(MPCConfig(n=tree.num_nodes, accounting="off", treeops_backend="records"))
    fast = MPCSimulator(MPCConfig(n=tree.num_nodes, accounting="fast", treeops_backend="records"))
    prep_off = prepare(tree, sim=off)
    prep_fast = prepare(tree, sim=fast)
    assert off.stats.total_words_sent == 0
    assert off.stats.peak_machine_words == 0
    assert fast.stats.total_words_sent > 0
    assert off.stats.rounds == fast.stats.rounds
    assert off.stats.total_messages == fast.stats.total_messages
    assert prep_off.clustering.layers == prep_fast.clustering.layers


def test_invalid_modes_rejected():
    with pytest.raises(ValueError):
        MPCConfig(n=64, accounting="lazy")
    with pytest.raises(ValueError):
        MPCConfig(n=64, treeops_backend="gpu")


# --------------------------------------------------------------------------- #
# Array-backend load model (ROADMAP: peak observability of the array path)
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
@pytest.mark.parametrize("n", [60, 150], ids=["n60", "n150"])
def test_load_model_matches_records_backend_peaks(family, builder, n):
    """With the opt-in load model, the array backend's peak-word statistics
    for ``prepare()`` match the records backend's exactly.

    The array backend's subroutine state is driver-side, so by default it
    observes no per-machine loads at all; ``treeops_load_model="records"``
    replays the record-level reference path on a shadow deployment for
    sizing only.  The peak statistic is a running max over observations, so
    parity here means the shadow replay is faithful to the records path's
    full observation set.
    """
    tree = gen.with_random_weights(builder(n), seed=3)
    sim_lm = MPCSimulator(
        MPCConfig(n=tree.num_nodes, treeops_backend="array", treeops_load_model="records")
    )
    sim_rec = MPCSimulator(MPCConfig(n=tree.num_nodes, treeops_backend="records"))
    prepare(tree, sim=sim_lm)
    prepare(tree, sim=sim_rec)
    assert sim_rec.stats.peak_machine_words > 0
    assert sim_lm.stats.peak_machine_words == sim_rec.stats.peak_machine_words


def test_load_model_off_by_default_and_validated():
    tree = gen.random_attachment_tree(80, seed=5)
    sim = MPCSimulator(MPCConfig(n=tree.num_nodes, treeops_backend="array"))
    prepare(tree, sim=sim)
    # Default: the array path's driver-side state is unobserved.
    assert sim.config.treeops_load_model == "none"
    assert sim.stats.peak_machine_words == 0
    with pytest.raises(ValueError):
        MPCConfig(n=64, treeops_load_model="exact")


def test_load_model_does_not_change_rounds_or_outputs():
    """The shadow replay is sizing-only: round/label accounting and the
    clustering itself stay bit-identical to a plain array-backend run."""
    tree = gen.with_random_weights(gen.random_attachment_tree(150, seed=7), seed=7)
    plain = MPCSimulator(MPCConfig(n=tree.num_nodes, treeops_backend="array"))
    modeled = MPCSimulator(
        MPCConfig(n=tree.num_nodes, treeops_backend="array", treeops_load_model="records")
    )
    prep_plain = prepare(tree, sim=plain)
    prep_modeled = prepare(tree, sim=modeled)
    assert plain.stats.rounds == modeled.stats.rounds
    assert plain.stats.rounds_by_label == modeled.stats.rounds_by_label
    assert plain.stats.charged_by_label == modeled.stats.charged_by_label
    assert plain.stats.total_messages == modeled.stats.total_messages
    assert prep_plain.clustering.layers == prep_modeled.clustering.layers
    assert {
        cid: c.elements for cid, c in prep_plain.clustering.clusters.items()
    } == {cid: c.elements for cid, c in prep_modeled.clustering.clusters.items()}
