"""Differential fuzz and accounting tests for the incremental update path.

Every test drives :class:`repro.dynamic.IncrementalSolver` with randomized
point-update sequences and asserts, after **every** step, that the
incrementally maintained state is bit-identical — value, root label, edge
labels, node labels, extracted output — to a from-scratch ``solve()`` of the
updated tree on the same backend.

Tier-1 runs a fast subset (fewer steps, two tree families, a problem
sample per axis); setting ``REPRO_FULL_FUZZ=1`` unlocks the full matrix —
all tree families x the full Table-1 registry x both kernel backends x
50-step sequences — for nightly-style runs (see the fuzz-full CI job).
"""

from __future__ import annotations

import os
import random

import pytest

# Canonical SAT payload builder shared with the benchmark harness, so the
# fuzz suite and the perf tracking exercise the same clause shape.
from benchmarks.bench_kernels import _sat_payload
from repro.core.pipeline import prepare, solve
from repro.dp.engine import DP_PASS_LABEL, DP_UPDATE_LABEL
from repro.dp.local_solver import backend_ineligibility
from repro.dp.problem import FiniteStateDP
from repro.dynamic import IncrementalSolver, PointUpdate, edge_update, node_update
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.problems.registry import table1_entries
from repro.problems.weighted_max_sat import WeightedMaxSAT
from repro.problems.xml_validation import XMLStructureValidation
from repro.trees import generators as gen

from tests.conftest import FAMILIES

#: Full-matrix fuzzing is opt-in (nightly CI / local REPRO_FULL_FUZZ=1 runs).
FULL_FUZZ = os.environ.get("REPRO_FULL_FUZZ", "").strip().lower() in {"1", "true", "yes", "on"}

N = 80 if FULL_FUZZ else 60
STEPS = 50 if FULL_FUZZ else 10

_FAMILY_MAP = dict(FAMILIES)
#: Bounded-degree families (edge coloring with k=6 must stay feasible).
_BOUNDED_DEGREE = ["path", "binary", "caterpillar"]


def _family_names(bounded_degree_only: bool = False):
    pool = _BOUNDED_DEGREE if bounded_degree_only else list(_FAMILY_MAP)
    if FULL_FUZZ:
        return pool
    fast = [f for f in ("random", "caterpillar") if f in pool]
    return fast or pool[:2]


# --------------------------------------------------------------------------- #
# Payload decorators and payload-aware mutators, per registry entry
# --------------------------------------------------------------------------- #

XML_TAGS = ["book", "chapter", "section", "para"]


def _weighted(tree, seed):
    return gen.with_random_weights(tree, seed=seed)


def _edge_weighted(tree, seed):
    rng = random.Random(seed)
    tree.edge_data = {e: round(rng.uniform(0, 5), 3) for e in tree.edges()}
    return tree




def _leaf_valued(tree, seed):
    return gen.with_random_leaf_values(tree, seed=seed)


def _expression_payload(tree, seed):
    rng = random.Random(seed)
    data = {}
    for v in tree.nodes():
        data[v] = rng.randint(-3, 3) if tree.is_leaf(v) else {"op": rng.choice(["+", "*"])}
    return tree.with_node_data(data)


def _xml_payload(tree, seed):
    depths = tree.depths()
    data = {v: {"tag": XML_TAGS[min(len(XML_TAGS) - 1, int(d))]} for v, d in depths.items()}
    return tree.with_node_data(data)


def _plain(tree, seed):
    return tree


def mutate_node_weight(rng, tree):
    return [node_update(rng.choice(tree.nodes()), round(rng.uniform(0, 10), 3))]


def mutate_edge_weight(rng, tree):
    return [edge_update(rng.choice(tree.edges()), round(rng.uniform(0, 5), 3))]


def mutate_mixed_weights(rng, tree):
    ups = mutate_node_weight(rng, tree)
    if tree.edges() and rng.random() < 0.5:
        ups += mutate_edge_weight(rng, tree)
    return ups


def mutate_leaf_value(rng, tree):
    return [node_update(rng.choice(tree.leaves()), round(rng.uniform(-100, 100), 3))]


def mutate_sat_clauses(rng, tree):
    ups = []
    if rng.random() < 0.7:
        v = rng.choice(tree.nodes())
        clauses = [
            (rng.random() < 0.5, round(rng.uniform(0, 5), 2))
            for _ in range(rng.randint(0, 2))
        ]
        ups.append(node_update(v, {"clauses": clauses}))
    if not ups or rng.random() < 0.5:
        e = rng.choice(tree.edges())
        clauses = [
            (rng.random() < 0.5, rng.random() < 0.5, round(rng.uniform(0, 5), 2))
            for _ in range(rng.randint(0, 2))
        ]
        ups.append(edge_update(e, {"clauses": clauses}))
    return ups


def mutate_expression(rng, tree):
    v = rng.choice(tree.nodes())
    if tree.is_leaf(v):
        return [node_update(v, rng.randint(-3, 3))]
    return [node_update(v, {"op": rng.choice(["+", "*"])})]


def mutate_xml_tag(rng, tree):
    v = rng.choice(tree.nodes())
    return [node_update(v, {"tag": rng.choice(XML_TAGS)})]


#: Per-registry-entry fuzz configuration:
#: entry name -> (payload decorator, mutator, bounded-degree families only).
FUZZ_CONFIG = {
    "Vertex coloring": (_plain, mutate_node_weight, False),
    "Edge coloring": (_plain, mutate_edge_weight, True),
    "Maximal independent set": (_plain, mutate_node_weight, False),
    "Maximum weight independent set": (_weighted, mutate_node_weight, False),
    "Maximum weight matching": (_edge_weighted, mutate_mixed_weights, False),
    "Minimum weight dominating set": (_weighted, mutate_node_weight, False),
    "Minimum weight vertex cover": (_weighted, mutate_node_weight, False),
    "Weighted max-SAT problem": (_sat_payload, mutate_sat_clauses, False),
    "Longest path problem": (_edge_weighted, mutate_edge_weight, False),
    "Sum coloring problem": (_weighted, mutate_node_weight, False),
    "Counting matchings modulo k": (_plain, mutate_node_weight, False),
    "Tree median problem": (_leaf_valued, mutate_leaf_value, False),
    "Evaluating arithmetic expressions": (_expression_payload, mutate_expression, False),
    "Verifying the structure of XML-like documents": (_xml_payload, mutate_xml_tag, False),
    "Subtree sum / minimum / maximum of input labels": (_weighted, mutate_node_weight, False),
}

ENTRIES = {e.name: e for e in table1_entries() if "Bayesian" not in e.name}


def test_fuzz_config_covers_the_full_registry():
    """Every solvable registry entry has a fuzz configuration (and vice versa)."""
    assert set(FUZZ_CONFIG) == set(ENTRIES)


def _backends_for(entry):
    problem = entry.make_problem()
    if isinstance(problem, FiniteStateDP):
        if backend_ineligibility(problem) is None:
            return ["numpy", "python"]
        return ["python"]
    return ["default"]


def _fuzz_cases():
    cases = []
    for name, (_decorate, _mutate, bounded) in sorted(FUZZ_CONFIG.items()):
        for family in _family_names(bounded_degree_only=bounded):
            for backend in _backends_for(ENTRIES[name]):
                cases.append(pytest.param(name, family, backend, id=f"{name}-{family}-{backend}"))
    return cases


def _make_case(name, family, seed):
    entry = ENTRIES[name]
    decorate, mutate, _bounded = FUZZ_CONFIG[name]
    tree = decorate(_FAMILY_MAP[family](N), seed)

    def make_problem():
        p = entry.make_problem()
        return p.bind(tree) if isinstance(p, XMLStructureValidation) else p

    return entry, tree, make_problem, mutate


def _assert_matches_from_scratch(inc, tree, make_problem, entry, backend, context):
    ref = solve(
        tree,
        make_problem(),
        degree_reduction=entry.degree_reduction,
        backend=None if backend == "default" else backend,
    )
    got = inc.as_pipeline_result()
    assert got.value == ref.value, context
    assert got.root_label == ref.root_label, context
    assert got.edge_labels == ref.edge_labels, context
    assert got.node_labels == ref.node_labels, context
    assert got.output == ref.output, context


# --------------------------------------------------------------------------- #
# The differential fuzz
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("name,family,backend", _fuzz_cases())
def test_incremental_matches_from_scratch(name, family, backend):
    """Randomized update sequences stay bit-identical to from-scratch solves."""
    entry, tree, make_problem, mutate = _make_case(name, family, seed=23)
    rng = random.Random(hash((name, family, backend)) & 0xFFFF)

    prepared = prepare(
        tree,
        degree_reduction=entry.degree_reduction,
        backend=None if backend == "default" else backend,
    )
    # The prepared tree aliases the input tree, so from-scratch re-solves of
    # `tree` observe exactly the payloads the incremental solver maintains.
    assert prepared.original_tree is tree
    inc = IncrementalSolver(prepared, make_problem())

    resolved_counts = []
    for step in range(STEPS):
        ups = mutate(rng, tree)
        report = inc.apply_updates(ups)
        resolved_counts.append(report.clusters_resolved)
        _assert_matches_from_scratch(
            inc, tree, make_problem, entry, backend, context=(name, family, backend, step)
        )
    # The update path must actually be partial, not a hidden full re-solve.
    assert any(c < len(inc.hc.clusters) for c in resolved_counts)


def test_long_mixed_sequence_with_batches():
    """50+ mixed updates (single and batched) on both kernel backends."""
    base = gen.random_attachment_tree(70, seed=31)
    for backend in ("numpy", "python"):
        tree = _weighted(
            gen.random_attachment_tree(70, seed=31), 31
        )  # fresh payloads per backend
        rng = random.Random(97)
        inc = IncrementalSolver(prepare(tree, backend=backend), MaxWeightIndependentSet())
        for step in range(55):
            ups = [
                node_update(rng.choice(tree.nodes()), round(rng.uniform(0, 10), 3))
                for _ in range(rng.randint(1, 3))
            ]
            inc.apply_updates(ups)
            ref = solve(tree, MaxWeightIndependentSet(), backend=backend)
            got = inc.as_pipeline_result()
            assert (got.value, got.edge_labels) == (ref.value, ref.edge_labels), (backend, step)
    assert base.num_nodes == 70


# --------------------------------------------------------------------------- #
# Round / word accounting
# --------------------------------------------------------------------------- #


def _weighted_random_tree(n, seed):
    return gen.with_random_weights(gen.random_attachment_tree(n, seed=seed), seed=seed)


def test_update_charges_strictly_less_than_full_solve():
    tree = _weighted_random_tree(150, 11)
    inc = IncrementalSolver(prepare(tree), MaxWeightIndependentSet())
    dp_rounds = inc.initial_stats.charged_by_label[DP_PASS_LABEL]
    dp_words = inc.initial_stats.charged_words_by_label[DP_PASS_LABEL]
    assert dp_rounds > 0 and dp_words > 0
    # What a from-scratch re-solve would pay: prepare()'s measured+charged
    # rounds plus the DP passes.  (Per-layer round charges are size-blind,
    # so the update's DP rounds can only tie the full solve's DP rounds;
    # the strict round win comes from skipping re-clustering, the strict
    # word win from routing only the dirty clusters' summaries/labels.)
    full_resolve_rounds = (
        inc.prepared.normalization_stats.total_rounds
        + inc.prepared.clustering_stats.total_rounds
        + inc.initial_stats.total_rounds
    )

    rng = random.Random(5)
    for _ in range(10):
        report = inc.apply_updates(
            [node_update(rng.choice(tree.nodes()), round(rng.uniform(0, 10), 3))]
        )
        assert not report.full_resolve
        assert 0 < report.rounds_charged <= dp_rounds
        assert report.rounds_charged < full_resolve_rounds
        assert 0 < report.words_charged < dp_words

    # The two channels stay separate in the simulator's per-label stats.
    labels = inc.prepared.sim.stats.charged_by_label
    assert DP_PASS_LABEL in labels and DP_UPDATE_LABEL in labels
    word_labels = inc.prepared.sim.stats.charged_words_by_label
    assert DP_PASS_LABEL in word_labels and DP_UPDATE_LABEL in word_labels


@pytest.mark.parametrize("family", ["path", "binary", "random", "caterpillar"])
def test_single_vertex_update_is_bounded_by_the_layer_count(family):
    """A point update re-solves at most one cluster per layer (O(log n) chain)."""
    tree = gen.with_random_weights(_FAMILY_MAP[family](200), seed=13)
    inc = IncrementalSolver(prepare(tree), MaxWeightIndependentSet())
    rng = random.Random(29)
    for _ in range(15):
        report = inc.apply_updates(
            [node_update(rng.choice(tree.nodes()), round(rng.uniform(0, 10), 3))]
        )
        assert not report.full_resolve
        assert report.clusters_resolved <= inc.hc.num_layers
        assert report.layers_resolved <= inc.hc.num_layers


def test_weight_update_recomposes_tensors_without_reenumeration():
    """A weight-only update inside an affine group is a tensor re-compose.

    The dense backend must not re-enumerate the problem's scalar rules for
    new weights covered by an affine structural key — neither for node
    weights (finalize affine) nor for max-SAT clause weights (transition
    affine).
    """
    tree = _weighted_random_tree(120, 3)
    inc = IncrementalSolver(prepare(tree, backend="numpy"), MaxWeightIndependentSet())
    stats = inc.solver._dense.tensors.stats
    before = dict(stats)
    inc.apply_updates([node_update(tree.nodes()[17], 123.456)])
    assert stats["finalize_enumerations"] == before["finalize_enumerations"]
    assert stats["transition_enumerations"] == before["transition_enumerations"]
    assert stats["affine_composes"] > before["affine_composes"]

    sat_tree = _sat_payload(gen.random_attachment_tree(100, seed=6), 6)
    inc_sat = IncrementalSolver(prepare(sat_tree, backend="numpy"), WeightedMaxSAT())
    sat_stats = inc_sat.solver._dense.tensors.stats
    before = dict(sat_stats)
    inc_sat.apply_updates(
        [edge_update(sat_tree.edges()[5], {"clauses": [(True, False, 2.25)]})]
    )
    assert sat_stats["transition_enumerations"] == before["transition_enumerations"]
    assert sat_stats["finalize_enumerations"] == before["finalize_enumerations"]
    assert sat_stats["affine_composes"] > before["affine_composes"]


# --------------------------------------------------------------------------- #
# API contract: errors, fallbacks, refresh
# --------------------------------------------------------------------------- #


def test_unsupported_updates_raise():
    tree = _weighted_random_tree(60, 2)
    inc = IncrementalSolver(prepare(tree), MaxWeightIndependentSet())
    with pytest.raises(KeyError):
        inc.apply_updates([node_update("no-such-node", 1.0)])
    with pytest.raises(KeyError):
        inc.apply_updates([edge_update(("no", "edge"), 1.0)])
    with pytest.raises(KeyError):  # not a (child, parent) orientation
        child = tree.edges()[0][0]
        inc.apply_updates([edge_update((tree.parent[child], child), 1.0)])
    with pytest.raises(ValueError):
        inc.apply_updates([PointUpdate("recluster", None, None)])


def test_bad_batch_is_rejected_atomically():
    """A batch with one invalid update applies nothing at all."""
    tree = _weighted_random_tree(80, 6)
    inc = IncrementalSolver(prepare(tree), MaxWeightIndependentSet())
    before_value = inc.value
    good = node_update(tree.nodes()[3], 99.0)
    with pytest.raises(KeyError):
        inc.apply_updates([good, node_update("missing", 1.0)])
    # Neither the payload write nor a partial re-solve happened.
    assert tree.node_data[tree.nodes()[3]] != 99.0
    assert inc.value == before_value
    ref = solve(tree, MaxWeightIndependentSet())
    assert inc.as_pipeline_result().value == ref.value


def test_aux_node_updates_rejected():
    tree = gen.with_random_weights(gen.star_tree(120), seed=4)
    inc = IncrementalSolver(prepare(tree), MaxWeightIndependentSet())
    aux = next(iter(inc.prepared.reduction.aux_nodes))
    with pytest.raises(KeyError):
        inc.apply_updates([node_update(aux, 1.0)])


def test_bulk_update_falls_back_to_full_resolve():
    tree = _weighted_random_tree(100, 8)
    inc = IncrementalSolver(prepare(tree), MaxWeightIndependentSet())
    rng = random.Random(41)
    ups = [node_update(v, round(rng.uniform(0, 10), 3)) for v in tree.nodes()]
    report = inc.apply_updates(ups)
    assert report.full_resolve
    assert report.clusters_resolved == len(inc.hc.clusters)
    ref = solve(tree, MaxWeightIndependentSet())
    got = inc.as_pipeline_result()
    assert (got.value, got.edge_labels) == (ref.value, ref.edge_labels)


def test_full_solve_round_charges_are_unchanged_by_the_partial_api():
    """Empty cluster layers still charge their rounds in the full solve.

    star trees produce a clusterless middle layer; the refactored
    bottom-up (``summarize_clusters``) must keep charging it so the full
    solve's round statistics stay identical to previous releases and
    symmetric with the top-down pass: 2 passes x ROUNDS_PER_LAYER x layers.
    """
    from repro.core.pipeline import solve_on
    from repro.dp.engine import ROUNDS_PER_LAYER

    prep = prepare(gen.with_random_weights(gen.star_tree(300), seed=1))
    hc = prep.clustering
    assert any(not hc.layers[i] for i in range(1, hc.num_layers + 1)), (
        "expected an empty layer in the star clustering"
    )
    res = solve_on(prep, MaxWeightIndependentSet())
    assert res.solve_result.rounds == 2 * ROUNDS_PER_LAYER * hc.num_layers


def test_refresh_releases_solver_memos():
    """refresh() is the memory valve: value-keyed tensor caches and the
    trace memo are dropped (and the latter repopulated by the re-solve).

    Maximum-weight matching's ``transition_key`` embeds the edge weight, so
    a stream of distinct edge-weight updates grows the transition cache by
    one tensor per distinct weight — the unbounded-serving scenario.
    """
    from repro.problems.max_weight_matching import MaxWeightMatching

    tree = gen.random_attachment_tree(90, seed=21)
    tree.edge_data = {e: 1.0 for e in tree.edges()}
    inc = IncrementalSolver(prepare(tree, backend="numpy"), MaxWeightMatching())
    dense = inc.solver._dense
    size0 = len(dense.tensors._trans_cache)
    rng = random.Random(8)
    for i in range(6):
        inc.apply_updates([edge_update(rng.choice(tree.edges()), 2.0 + i + rng.random())])
    assert len(dense.tensors._trans_cache) > size0, "distinct weights must grow the cache"
    some_cid = next(iter(inc.hc.clusters))
    assert dense.has_trace(some_cid)
    dense.forget_traces([some_cid])
    assert not dense.has_trace(some_cid)

    inc.refresh()
    # Cleared by refresh(), then lazily repopulated only with the weights
    # still present in the tree (bounded by the live payload set).
    assert len(dense.tensors._trans_cache) <= size0 + 6
    assert dense.has_trace(some_cid)  # the full re-solve repopulated traces
    ref = solve(tree, MaxWeightMatching())
    got = inc.as_pipeline_result()
    assert (got.value, got.edge_labels) == (ref.value, ref.edge_labels)


def test_refresh_resyncs_after_external_mutation():
    tree = _weighted_random_tree(90, 14)
    inc = IncrementalSolver(prepare(tree), MaxWeightIndependentSet())
    # Mutate payloads behind the solver's back (documented fallback path).
    for v in list(tree.nodes())[:10]:
        tree.node_data[v] = 42.0
        inc.prepared.tree.node_data[v] = 42.0
    report = inc.refresh()
    assert report.full_resolve
    ref = solve(tree, MaxWeightIndependentSet())
    got = inc.as_pipeline_result()
    assert (got.value, got.edge_labels) == (ref.value, ref.edge_labels)


def test_degree_reduced_edge_updates_address_original_edges():
    """Edge updates name original-tree edges even when rerouted through aux."""
    tree = gen.star_tree(150)
    tree.edge_data = {e: 1.0 for e in tree.edges()}
    from repro.problems.max_weight_matching import MaxWeightMatching

    inc = IncrementalSolver(prepare(tree), MaxWeightMatching())
    assert not inc.prepared.reduction.is_identity
    rng = random.Random(9)
    for _ in range(8):
        edge = rng.choice(tree.edges())
        inc.apply_updates([edge_update(edge, round(rng.uniform(0, 5), 3))])
        ref = solve(tree, MaxWeightMatching())
        got = inc.as_pipeline_result()
        assert (got.value, got.edge_labels) == (ref.value, ref.edge_labels)


@pytest.mark.parametrize("seed", range(8))
def test_mid_pass_failure_is_recoverable_and_never_silently_stale(seed):
    """A payload the problem's rules reject fails *after* the write; the
    solver must refuse to serve stale state and heal on repair.

    The adversarial part: the failed pass may have *written* part of the
    good update's summary chain before raising, so the healing re-apply
    must not prune against those poisoned baselines — randomized (good,
    bad) target pairs across seeds probe exactly the layer interleavings
    where naive pruning silently keeps stale ancestors.
    """
    rng = random.Random(seed)
    tree = _sat_payload(gen.random_attachment_tree(200, seed=seed), seed)
    inc = IncrementalSolver(prepare(tree), WeightedMaxSAT())
    for _round in range(3):
        good = node_update(
            rng.choice(tree.nodes()),
            {"clauses": [(rng.random() < 0.5, round(rng.uniform(0, 5), 2))]},
        )
        bad_node = rng.choice(tree.nodes())
        # The malformed update surfaces as TypeError/ValueError/IndexError
        # depending on which kernel unpacks it; any exception is the contract.
        with pytest.raises(Exception):  # noqa: B017
            inc.apply_updates([good, node_update(bad_node, {"clauses": [("malformed",)]})])
        # Stale state is refused, not served.
        with pytest.raises(RuntimeError, match="stale"):
            inc.as_pipeline_result()
        # Repairing the bad payload re-solves the whole failed batch's
        # chains, including the good update written before the failure.
        inc.apply_updates(
            [node_update(bad_node, {"clauses": [(False, round(rng.uniform(0, 5), 2))]})]
        )
        ref = solve(tree, WeightedMaxSAT())
        got = inc.as_pipeline_result()
        assert (got.value, got.edge_labels) == (ref.value, ref.edge_labels), seed


def test_results_are_snapshots_not_live_views():
    tree = _weighted_random_tree(70, 19)
    inc = IncrementalSolver(prepare(tree), MaxWeightIndependentSet())
    r1 = inc.as_pipeline_result()
    before = dict(r1.edge_labels)
    inc.apply_updates([node_update(tree.nodes()[2], 999.0)])
    assert r1.edge_labels == before  # earlier result did not mutate
    # Caller-side mutation cannot corrupt the solver either.
    r2 = inc.as_pipeline_result()
    r2.edge_labels.clear()
    r2.node_labels.clear()
    ref = solve(tree, MaxWeightIndependentSet())
    assert inc.as_pipeline_result().edge_labels == ref.edge_labels


def test_no_op_batch_reports_zero_work():
    tree = _weighted_random_tree(60, 5)
    inc = IncrementalSolver(prepare(tree), MaxWeightIndependentSet())
    report = inc.apply_updates([])
    assert report.clusters_resolved == 0 and report.rounds_charged == 0
    assert report.value == inc.value
