"""The serving layer: batched updates, snapshot-isolated reads, healing.

The acceptance contract of :mod:`repro.serving`:

* every served answer is **bit-identical** to a from-scratch ``solve()`` on
  the tree at the same batch boundary (differentially asserted after every
  batch, and for every read a concurrent reader makes during the stress
  test);
* reads are snapshot-isolated — a reader racing a write batch observes a
  complete pre- or post-batch state, never a torn one;
* a batch poisoned mid-pass fails only its own submitters, keeps serving
  the pre-batch snapshot, and the next batch heals bit-identically (the
  incremental layer's pending-dirty path, driven through the server);
* the multi-problem group shares one dirty-seed computation per batch;
* overlapping ``apply`` calls on one solver raise
  :class:`~repro.dynamic.ConcurrentUpdateError` instead of corrupting
  state;
* a long update stream holds **flat memory**: the dense kernel's
  payload-value-keyed caches and trace memo stay at their LRU bounds over
  a 1000-batch soak.

The whole file runs on the deployment default exec backend, so the CI
``serving`` job re-runs it under ``REPRO_EXEC_BACKEND=process``; the chaos
legs pin their backends explicitly.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.core.pipeline import prepare, solve
from repro.dynamic import (
    ConcurrentUpdateError,
    IncrementalSolverGroup,
    edge_update,
    node_update,
)
from repro.mpc.config import MPCConfig
from repro.mpc.exec import FaultPlan, InjectedFault
from repro.mpc.simulator import MPCSimulator
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.problems.max_weight_matching import MaxWeightMatching
from repro.problems.min_weight_dominating_set import MinWeightDominatingSet
from repro.problems.min_weight_vertex_cover import MinWeightVertexCover
from repro.serving import (
    ServerClosedError,
    ServerConfig,
    Snapshot,
    SnapshotStore,
)
from repro.trees import generators as gen

MWIS = MaxWeightIndependentSet
PROBE_COUNT = 5


def _tree(n=120, seed=5):
    return gen.with_random_weights(gen.random_attachment_tree(n, seed=seed), seed=seed)


def _prepared(tree, n, **cfg):
    return prepare(tree, sim=MPCSimulator(MPCConfig(n=n, **cfg)))


def _assert_matches_fresh(snap: Snapshot, tree, problem) -> None:
    """The served snapshot must be bit-identical to a from-scratch solve."""
    ref = solve(tree, problem)
    assert snap.value == ref.value
    assert snap.root_label == ref.root_label
    assert dict(snap.node_labels) == dict(ref.node_labels)
    assert dict(snap.edge_labels) == dict(ref.edge_labels)


# --------------------------------------------------------------------------- #
# Basic serving behaviour
# --------------------------------------------------------------------------- #


def test_server_serves_initial_state_before_start():
    """Reads need no writer: construction publishes the version-0 snapshots."""
    tree = _tree(n=80, seed=11)
    server = _prepared(tree, 80).serve(MWIS())
    snap = server.snapshot()
    assert snap.version == 0
    _assert_matches_fresh(snap, tree, MWIS())
    assert server.health.queries_served == 1


def test_update_requires_running_writer():
    tree = _tree(n=60, seed=12)
    server = _prepared(tree, 60).serve(MWIS())

    async def main():
        with pytest.raises(ServerClosedError, match="not running"):
            await server.update(node_update(tree.nodes()[1], 2.0))
        async with server:
            await server.update(node_update(tree.nodes()[1], 2.0))
        # Stopped servers refuse writes and cannot restart.
        with pytest.raises(ServerClosedError):
            await server.update(node_update(tree.nodes()[1], 3.0))
        with pytest.raises(ServerClosedError):
            await server.start()
        await server.stop()  # idempotent

    asyncio.run(main())


def test_serve_differential_at_every_batch_boundary():
    """Mixed node/edge batches; after each, the snapshot equals solve()."""
    tree = _tree(n=120, seed=13)
    server = _prepared(tree, 120).serve(MWIS())
    rng = random.Random(99)
    nodes = sorted(tree.nodes())
    edges = [(v, tree.parent[v]) for v in nodes if v != tree.root]

    async def main():
        async with server:
            for step in range(8):
                ups = [
                    node_update(rng.choice(nodes), round(rng.uniform(0.1, 9.9), 3))
                    for _ in range(rng.randint(1, 4))
                ]
                if step % 2:
                    ups.append(edge_update(rng.choice(edges), {"w": rng.random()}))
                res = await server.update(ups)
                assert res.version == step + 1
                assert res.updates == len(ups)
                snap = server.snapshot()
                assert snap.version == res.version
                _assert_matches_fresh(snap, tree, MWIS())
            assert (await server.query_value()) == server.snapshot().value
            probe = sorted(tree.nodes())[2]
            assert (await server.query_label(probe)) == server.snapshot().node_labels[probe]

    asyncio.run(main())
    report = server.health_report()["server"]
    assert report["batches_applied"] == 8
    assert report["batch_failures"] == 0
    assert report["snapshots_published"] == 9  # initial + 8 batches


def test_multi_problem_group_shares_seeds_and_stays_bit_identical():
    """solve_many-style serving: one dirty-seed computation, N problems."""
    tree = _tree(n=100, seed=14)
    problems = [MWIS(), MinWeightVertexCover(), MinWeightDominatingSet()]
    server = _prepared(tree, 100).serve(problems)
    assert len(server.problems) == 3
    rng = random.Random(7)
    nodes = sorted(tree.nodes())

    async def main():
        async with server:
            for _ in range(5):
                ups = [node_update(rng.choice(nodes), rng.uniform(0.5, 5.0)) for _ in range(2)]
                res = await server.update(ups)
                # One shared seed computation: every member saw the same
                # dirty seed set (all three problems have node scope).
                seeds = {rep.dirty_seed_clusters for rep in res.reports.values()}
                assert len(seeds) == 1
                for p in problems:
                    _assert_matches_fresh(server.snapshot(p.name), tree, p)
            versions = server.store.versions()
            assert set(versions.values()) == {5}

    asyncio.run(main())
    with pytest.raises(ValueError, match="name one"):
        server.snapshot()  # multi-problem servers need an explicit name


def test_bad_update_rejected_alone_without_poisoning_the_batch():
    """An invalid descriptor fails its submitter at submit time; the queue,
    the version counter and other clients are untouched."""
    tree = _tree(n=60, seed=15)
    server = _prepared(tree, 60).serve(MWIS())

    async def main():
        async with server:
            with pytest.raises(KeyError, match="not a node"):
                await server.update(node_update("no-such-node", 1.0))
            assert server.version == 0
            res = await server.update(node_update(tree.nodes()[2], 4.0))
            assert res.version == 1
            _assert_matches_fresh(server.snapshot(), tree, MWIS())

    asyncio.run(main())
    assert server.health.updates_rejected == 1
    assert server.health.updates_applied == 1


def test_concurrent_submissions_coalesce_into_one_batch():
    """With a linger delay, concurrent submitters share one solver pass."""
    tree = _tree(n=80, seed=16)
    server = _prepared(tree, 80).serve(MWIS(), config=ServerConfig(max_delay=0.05))
    nodes = sorted(tree.nodes())

    async def main():
        async with server:
            results = await asyncio.gather(
                *(server.update(node_update(nodes[i], float(i))) for i in range(1, 13))
            )
            assert {r.version for r in results} == {1}
            assert all(r.updates == 12 for r in results)
            _assert_matches_fresh(server.snapshot(), tree, MWIS())

    asyncio.run(main())
    assert server.health.batches_applied == 1
    assert server.health.updates_applied == 12


# --------------------------------------------------------------------------- #
# Snapshot isolation under concurrent readers (the stress test)
# --------------------------------------------------------------------------- #


def test_stress_concurrent_readers_see_only_batch_boundaries():
    """Readers hammer the store while a writer streams batches; every read
    must be bit-identical to a from-scratch solve of the tree state at the
    version it observed — i.e. reads see pre- or post-batch snapshots only,
    never a torn or intermediate state."""
    n, seed, batches = 150, 17, 10
    tree = _tree(n=n, seed=seed)
    server = _prepared(tree, n).serve(MWIS())
    nodes = sorted(tree.nodes())
    probes = nodes[:PROBE_COUNT]
    rng = random.Random(4)
    batch_log = []  # (version, updates) in application order
    reads = []  # (version, value, root_label, probe labels)

    async def writer():
        for _ in range(batches):
            ups = [
                node_update(rng.choice(nodes), round(rng.uniform(0.1, 9.9), 3))
                for _ in range(3)
            ]
            res = await server.update(ups)
            batch_log.append((res.version, ups))

    def read_once():
        snap = server.snapshot()
        reads.append(
            (
                snap.version,
                snap.value,
                snap.root_label,
                tuple(snap.node_labels[p] for p in probes),
            )
        )

    async def reader(writer_task):
        while not writer_task.done():
            read_once()
            await asyncio.sleep(0)

    async def main():
        async with server:
            wtask = asyncio.get_running_loop().create_task(writer())
            await asyncio.gather(wtask, *(reader(wtask) for _ in range(4)))
            read_once()  # guarantee the final version is observed

    asyncio.run(main())

    # The single writer awaited each batch, so version v == the first v
    # batches applied in order.  Replay them on a fresh copy of the tree and
    # solve from scratch at every boundary.
    assert [v for v, _ in batch_log] == list(range(1, batches + 1))
    replica = _tree(n=n, seed=seed)
    expected = {}
    for version in range(batches + 1):
        if version > 0:
            for up in batch_log[version - 1][1]:
                replica.node_data[up.target] = up.data
        ref = solve(replica, MWIS())
        expected[version] = (
            ref.value,
            ref.root_label,
            tuple(ref.node_labels[p] for p in probes),
        )

    observed_versions = {r[0] for r in reads}
    assert observed_versions <= set(range(batches + 1))
    assert len(observed_versions) >= 2, "readers never observed an update"
    assert batches in observed_versions
    for version, value, root_label, labels in reads:
        assert (value, root_label, labels) == expected[version], (
            f"torn or stale read at version {version}"
        )


# --------------------------------------------------------------------------- #
# Failure containment and healing
# --------------------------------------------------------------------------- #


def test_poisoned_batch_fails_its_futures_and_next_batch_heals():
    """A batch that dies mid-pass (payloads written, chains half-solved)
    fails its submitters, keeps serving the pre-batch snapshot, and the
    next batch heals bit-identically through the pending-dirty path."""
    tree = _tree(n=120, seed=21)
    prepared = _prepared(tree, 120)
    plan = FaultPlan.parse("poison@update-layer:1")
    server = prepared.serve(MWIS(), fault_plan=plan)
    nodes = tree.nodes()
    pre = server.snapshot()

    async def main():
        async with server:
            with pytest.raises(InjectedFault):
                await server.update(node_update(nodes[5], 9999.0))
            # The failed batch published nothing: reads still see version 0.
            snap = server.snapshot()
            assert snap.version == 0
            assert snap.value == pre.value
            # The repair batch folds the pending chains back in.
            res = await server.update(node_update(nodes[3], 1.25))
            assert res.version == 1
            assert plan.remaining() == 0
            _assert_matches_fresh(server.snapshot(), tree, MWIS())

    asyncio.run(main())
    assert server.health.batch_failures == 1
    assert server.health.batches_applied == 1


@pytest.mark.chaos
def test_chaos_process_backend_server_heals_bit_identically():
    """The PR-8 ladder under the server: a worker SIGKILLed by a FaultPlan
    while the process pool builds the clustering, then a driver-side poison
    mid-update-batch.  The server must come up, fail only the poisoned
    batch and keep every served answer bit-identical.  (Update passes run
    driver-inline by design, so worker faults target the substrate phase.)
    """
    tree = _tree(n=120, seed=23)
    prepared = _prepared(
        tree,
        120,
        exec_backend="process",
        exec_workers=2,
        exec_backoff=0.01,
        exec_faults="kill@w0:1:op",
    )
    plan = FaultPlan.parse("poison@update-layer:1")
    server = prepared.serve(MWIS(), fault_plan=plan)
    nodes = tree.nodes()

    async def main():
        async with server:
            with pytest.raises(InjectedFault):
                await server.update(node_update(nodes[5], 512.0))
            res = await server.update(node_update(nodes[7], 0.25))
            assert res.version == 1
            _assert_matches_fresh(server.snapshot(), tree, MWIS())

    try:
        asyncio.run(main())
        health = server.health_report()
        assert health["server"]["batch_failures"] == 1
        assert health["exec"] is not None
        assert health["exec"]["worker_deaths"] >= 1
    finally:
        prepared.sim.executor.close()


def test_concurrent_apply_raises_instead_of_corrupting():
    """Overlapping apply calls — a second thread entering while a pass is
    mid-flight — raise ConcurrentUpdateError; the first batch completes and
    the solver stays bit-identical."""
    tree = _tree(n=80, seed=24)
    prepared = _prepared(tree, 80)
    inc = prepared.incremental(MWIS())
    nodes = sorted(tree.nodes())

    entered, release = threading.Event(), threading.Event()
    orig = inc.engine.summarize_clusters

    def stalled(*args, **kwargs):
        entered.set()
        assert release.wait(10)
        return orig(*args, **kwargs)

    inc.engine.summarize_clusters = stalled
    worker = threading.Thread(target=inc.update_node, args=(nodes[3], 7.5))
    worker.start()
    try:
        assert entered.wait(10)
        with pytest.raises(ConcurrentUpdateError, match="already"):
            inc.update_node(nodes[4], 1.5)
    finally:
        release.set()
        worker.join(30)
    inc.engine.summarize_clusters = orig

    # The guard is released: further updates apply and match from-scratch.
    inc.update_node(nodes[4], 1.5)
    got = inc.as_pipeline_result()
    ref = solve(tree, MWIS())
    assert (got.value, got.node_labels) == (ref.value, ref.node_labels)


def test_group_apply_claims_all_member_guards_atomically():
    tree = _tree(n=60, seed=25)
    prepared = _prepared(tree, 60)
    group = IncrementalSolverGroup(prepared, [MWIS(), MinWeightVertexCover()])
    second = group.solvers[group.problems[1]]
    second._begin_apply()  # simulate a member busy elsewhere
    try:
        with pytest.raises(ConcurrentUpdateError):
            group.apply_updates([node_update(tree.nodes()[2], 2.0)])
    finally:
        second._end_apply()
    # The failed acquire left no guard behind: the group applies cleanly.
    reports = group.apply_updates([node_update(tree.nodes()[2], 2.0)])
    for name in group.problems:
        assert reports[name].updates == 1
    for p in (MWIS(), MinWeightVertexCover()):
        ref = solve(tree, p)
        assert group.view(p.name).value == ref.value


def test_group_member_failure_marks_skipped_members_pending():
    """If one member's resolve dies mid-group-batch, members the failure
    skipped refuse stale reads and heal on the next batch."""
    tree = _tree(n=100, seed=26)
    prepared = _prepared(tree, 100)
    plan = FaultPlan.parse("poison@update-layer:0")
    group = IncrementalSolverGroup(
        prepared, [MWIS(), MinWeightVertexCover()], fault_plan=plan
    )
    nodes = tree.nodes()
    with pytest.raises(InjectedFault):
        group.apply_updates([node_update(nodes[4], 321.0)])
    # The first member died mid-pass; the second never ran.  Both must
    # refuse to serve and both must heal.
    for name in group.problems:
        with pytest.raises(RuntimeError, match="stale"):
            group.view(name)
    group.apply_updates([node_update(nodes[6], 1.5)])
    for p in (MWIS(), MinWeightVertexCover()):
        ref = solve(tree, p)
        view = group.view(p.name)
        assert view.value == ref.value
        assert dict(view.node_labels) == dict(ref.node_labels)


# --------------------------------------------------------------------------- #
# Bounded caches: the 1000-batch soak
# --------------------------------------------------------------------------- #


def test_soak_1000_batches_flat_memory():
    """A long stream of *distinct* edge weights used to grow the dense
    kernel's value-keyed transition cache one entry per weight (refresh()
    being the only valve); the LRU bound must keep every cache flat over
    1000 batches while staying bit-identical to from-scratch solves.
    MaxWeightMatching declares no affine decomposition, so every distinct
    edge weight is a distinct cache key — the worst case."""
    # The n=48 tree clusters into 8; trace_bound=4 makes the memo genuinely
    # contended so evictions (and transparent recompute) are exercised.
    n, bound, trace_bound = 48, 32, 4
    tree = _tree(n=n, seed=27)
    prepared = _prepared(tree, n)
    inc = prepared.incremental(
        MaxWeightMatching(), cache_entries=bound, trace_entries=trace_bound
    )
    dense = inc.solver._dense
    assert dense is not None
    edges = [(v, tree.parent[v]) for v in sorted(tree.nodes()) if v != tree.root]
    rng = random.Random(1)

    sizes_at = {}
    for batch in range(1, 1001):
        # A fresh, never-seen weight each batch: the unbounded cache would
        # hold ~1000 transition tensors by the end.
        weight = round(1.0 + batch / 1000.0 + rng.random() * 1e-6, 9)
        inc.apply_updates([edge_update(rng.choice(edges), {"weight": weight})])
        if batch % 250 == 0:
            sizes_at[batch] = dict(dense.tensors.value_cache_sizes())
            for name, size in sizes_at[batch].items():
                assert size <= bound, f"{name} cache exceeded its bound at batch {batch}"
            assert len(dense._traces) <= trace_bound

    # Flat, not merely bounded: saturated sizes do not creep between probes.
    assert sizes_at[500] == sizes_at[750] == sizes_at[1000]
    assert sizes_at[1000]["transition"] == bound, "the soak never saturated the bound"
    assert dense.tensors.value_cache_evictions() > 500
    assert dense.trace_evictions > 0
    # Evictions never cost correctness.
    got = inc.as_pipeline_result()
    ref = solve(tree, MaxWeightMatching())
    assert (got.value, got.edge_labels) == (ref.value, ref.edge_labels)
    assert inc.updates_applied == 1000


# --------------------------------------------------------------------------- #
# Component units: config, snapshot store, LRU cache
# --------------------------------------------------------------------------- #


def test_server_config_env_fallbacks(monkeypatch):
    assert ServerConfig().max_batch == 256
    monkeypatch.setenv("REPRO_SERVING_MAX_BATCH", "7")
    monkeypatch.setenv("REPRO_SERVING_MAX_DELAY", "0.25")
    monkeypatch.setenv("REPRO_SERVING_QUEUE_LIMIT", "11")
    cfg = ServerConfig()
    assert (cfg.max_batch, cfg.max_delay, cfg.queue_limit) == (7, 0.25, 11)
    assert ServerConfig(max_batch=3).max_batch == 3  # explicit beats env
    with pytest.raises(ValueError, match="max_batch"):
        ServerConfig(max_batch=0)
    with pytest.raises(ValueError, match="cache_entries"):
        ServerConfig(cache_entries=0)
    monkeypatch.setenv("REPRO_SERVING_MAX_BATCH", "many")
    with pytest.raises(ValueError, match="REPRO_SERVING_MAX_BATCH"):
        ServerConfig()


def test_snapshot_store_refuses_version_regression():
    from repro.dynamic import SolvedView

    def view(v):
        return Snapshot(
            problem="p",
            version=v,
            view=SolvedView(
                problem="p",
                value=v,
                root_label=None,
                node_labels={},
                edge_labels={},
                output=None,
                updates_applied=v,
            ),
        )

    store = SnapshotStore()
    store.publish_all([view(0)])
    store.publish_all([view(1)])
    assert store.current("p").value == 1
    with pytest.raises(ValueError, match="regression"):
        store.publish_all([view(1)])
    with pytest.raises(KeyError, match="no snapshot"):
        store.current("q")


def test_lru_cache_semantics(monkeypatch):
    from repro.dp.kernels.tensors import LRUCache, default_cache_entries

    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes recency: b is now the LRU entry
    cache.put("c", 3)
    assert cache.evictions == 1
    assert "b" not in cache and cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    cache.set_entries(1)
    assert len(cache) == 1 and cache.evictions == 2
    with pytest.raises(ValueError):
        LRUCache(0)

    monkeypatch.setenv("REPRO_DP_CACHE_ENTRIES", "123")
    assert default_cache_entries() == 123
    monkeypatch.setenv("REPRO_DP_CACHE_ENTRIES", "0")
    assert default_cache_entries() is None  # 0 = unbounded
    monkeypatch.setenv("REPRO_DP_CACHE_ENTRIES", "lots")
    with pytest.raises(ValueError, match="REPRO_DP_CACHE_ENTRIES"):
        default_cache_entries()
    monkeypatch.delenv("REPRO_DP_CACHE_ENTRIES")
    assert default_cache_entries() == 4096
