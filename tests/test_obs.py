"""Observability subsystem (:mod:`repro.obs`) — units and stack integration.

Four layers of coverage:

* **Units** — histogram bucketing, Prometheus text exposition, registry
  label identity, pull-gauges, the dump helper's exclusive-create + GC cap.
* **Golden nested trace** — one fixed tree solved under both exec backends
  produces the same span structure (names + parenting), with the process
  backend's worker spans re-parented under their ``exec.*`` superstep span.
* **Round timeline** — the ``obs="trace"`` timeline sums bit-identically to
  the simulator's ``RoundStats`` (the acceptance criterion that makes the
  trace a faithful MPC round record).
* **Pay-for-use** — ``obs="off"`` resolves to the shared inert singleton
  and a solve loop under it is within noise of (no slower than) the fully
  instrumented run.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.core.pipeline import prepare, solve_on
from repro.mpc import MPCConfig, MPCSimulator
from repro.obs import clock
from repro.obs.context import OBS_OFF, ObsContext
from repro.obs.dump import dump_file, write_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import _NULL_HANDLE, Recorder, worker_span
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.trees import generators as gen


def _tree(n: int, seed: int = 7):
    return gen.with_random_weights(
        gen.random_attachment_tree(n, seed=seed), seed=seed
    )


def _prepared(n: int, **cfg):
    return prepare(_tree(n), sim=MPCSimulator(MPCConfig(n=n, **cfg)))


# --------------------------------------------------------------------------- #
# Metrics units
# --------------------------------------------------------------------------- #


def test_histogram_bucket_boundaries():
    reg = MetricsRegistry()
    h = reg.histogram("h_seconds", buckets=[1.0, 2.0, 5.0])
    for v in (0.5, 1.0, 3.0, 10.0):
        h.observe(v)
    # le= is inclusive (Prometheus semantics): 1.0 lands in the le="1" bucket.
    assert h.counts == [2, 0, 1, 1]
    assert h.cumulative() == [2, 2, 3, 4]
    assert h.count == 4
    assert h.sum == pytest.approx(14.5)


def test_histogram_rejects_bad_buckets():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.histogram("bad", buckets=[2.0, 1.0])
    with pytest.raises(ValueError):
        reg.histogram("dup", buckets=[1.0, 1.0])


def test_registry_label_identity():
    reg = MetricsRegistry()
    a = reg.counter("c_total", op="x")
    b = reg.counter("c_total", op="y")
    assert a is not b
    a.inc()
    a.inc(2.0)
    assert reg.counter("c_total", op="x") is a  # get-or-create returns same
    snap = reg.snapshot()
    assert snap["counters"][("c_total", (("op", "x"),))] == 3.0
    assert snap["counters"][("c_total", (("op", "y"),))] == 0.0


def test_gauge_fn_pull_and_failure_nan():
    reg = MetricsRegistry()
    depth = [4]
    reg.gauge_fn("queue_depth", lambda: float(depth[0]))
    reg.gauge_fn("broken", lambda: 1 / 0)
    snap = reg.snapshot()
    assert snap["gauges"][("queue_depth", ())] == 4.0
    assert math.isnan(snap["gauges"][("broken", ())])
    depth[0] = 9  # pull-style: the next snapshot sees the new value
    assert reg.snapshot()["gauges"][("queue_depth", ())] == 9.0


def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.counter("req_total", code="200").inc(3)
    reg.gauge("depth").set(2.5)
    h = reg.histogram("lat_seconds", buckets=[1.0, 2.0])
    h.observe(1.5)
    h.observe(1.5)
    h.observe(3.0)
    text = reg.to_prometheus()
    lines = text.splitlines()
    assert "# TYPE req_total counter" in lines
    assert 'req_total{code="200"} 3' in lines
    assert "# TYPE depth gauge" in lines
    assert "depth 2.5" in lines
    assert "# TYPE lat_seconds histogram" in lines
    # Cumulative buckets, the +Inf bucket, then _sum and _count.
    assert 'lat_seconds_bucket{le="1"} 0' in lines
    assert 'lat_seconds_bucket{le="2"} 2' in lines
    assert 'lat_seconds_bucket{le="+Inf"} 3' in lines
    assert "lat_seconds_sum 6" in lines
    assert "lat_seconds_count 3" in lines
    assert text.endswith("\n")


def test_to_json_shape_is_plain_data():
    reg = MetricsRegistry()
    reg.counter("c_total", op="x").inc()
    reg.histogram("h_seconds", buckets=[1.0]).observe(0.5)
    out = reg.to_json()
    assert json.loads(json.dumps(out)) == out
    (c,) = out["counters"]
    assert c == {"name": "c_total", "labels": {"op": "x"}, "value": 1.0}
    (h,) = out["histograms"]
    assert h["buckets"] == [1.0] and h["counts"] == [1, 0] and h["count"] == 1


# --------------------------------------------------------------------------- #
# Recorder / span units
# --------------------------------------------------------------------------- #


def test_recorder_nesting_and_attrs():
    rec = Recorder()
    with rec.trace("outer", a=1):
        with rec.trace("inner") as span:
            span.set(found=7)
    by_name = {s["name"]: s for s in rec.to_list()}
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["parent_id"] is None
    assert by_name["inner"]["attrs"] == {"found": 7}
    assert by_name["outer"]["attrs"] == {"a": 1}


def test_recorder_ingest_rebases_and_reparents():
    rec = Recorder()
    with rec.trace("exec.op"):
        rec.ingest([worker_span("worker.op", 0.0, 0.25, slot=3)], base=100.0)
    by_name = {s["name"]: s for s in rec.to_list()}
    w = by_name["worker.op"]
    assert w["parent_id"] == by_name["exec.op"]["span_id"]
    assert w["start"] == pytest.approx(100.0)
    assert w["duration"] == pytest.approx(0.25)
    assert w["attrs"]["slot"] == 3


def test_recorder_error_attr_on_exception():
    rec = Recorder()
    with pytest.raises(RuntimeError):
        with rec.trace("boom"):
            raise RuntimeError("x")
    (span,) = rec.to_list()
    assert span["attrs"]["error"] == "RuntimeError"


# --------------------------------------------------------------------------- #
# Dump helper
# --------------------------------------------------------------------------- #


def test_dump_file_exclusive_and_gc_cap(tmp_path):
    def dump(keep):
        return dump_file(
            str(tmp_path),
            "obs-metrics-x",
            ".json",
            "obs-metrics-",
            lambda p: write_json(p, {"i": 1}),
            keep=keep,
        )

    # Under the cap, exclusive-create walks the sequence: no live file is
    # ever clobbered.
    paths = [dump(keep=10) for _ in range(6)]
    assert all(paths)
    assert len(set(paths)) == 6
    # Over the cap, the GC prunes the family's oldest down to `keep`
    # (sequence numbers of pruned files may then be reused — by design).
    for _ in range(4):
        dump(keep=3)
    remaining = sorted(f.name for f in tmp_path.iterdir())
    assert len(remaining) == 3


# --------------------------------------------------------------------------- #
# Pay-for-use: obs="off"
# --------------------------------------------------------------------------- #


def test_off_mode_is_shared_inert_singleton(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    sim = MPCSimulator(MPCConfig(n=256))
    assert sim.obs is OBS_OFF
    assert not sim.obs.enabled and not sim.obs.tracing
    # Every hook reduces to an attribute check + a shared no-op handle.
    assert sim.obs.trace("anything") is _NULL_HANDLE
    assert sim.obs.trace("a") is sim.obs.trace("b")
    prepared = prepare(_tree(200), sim=sim)
    res = solve_on(prepared, MaxWeightIndependentSet())
    assert prepared.trace() == [] and res.trace() == []
    assert res.metrics() == {"counters": [], "gauges": [], "histograms": []}
    assert res.metrics(format="prometheus") == ""
    assert sim.obs.timeline == [] and len(sim.obs.recorder) == 0


def test_obs_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "trace")
    assert MPCConfig(n=64).obs == "trace"
    monkeypatch.delenv("REPRO_OBS")
    assert MPCConfig(n=64).obs == "off"
    with pytest.raises(ValueError):
        MPCConfig(n=64, obs="verbose")


def test_off_overhead_within_noise_of_instrumented_run():
    """A solve_many-style loop under obs="off" must not be slower than the
    fully instrumented run (generous slack: this is a noise bound, not a
    micro-benchmark)."""
    n, loops = 300, 3

    def run(mode: str) -> float:
        best = float("inf")
        for _ in range(2):
            prepared = _prepared(n, obs=mode)
            problem = MaxWeightIndependentSet()
            t0 = clock.now()
            for _ in range(loops):
                solve_on(prepared, problem)
            best = min(best, clock.now() - t0)
        return best

    off, traced = run("off"), run("trace")
    assert off <= traced * 1.5 + 0.05, (
        f"obs='off' loop took {off:.3f}s vs {traced:.3f}s instrumented — "
        "the off path must reduce to attribute checks"
    )


# --------------------------------------------------------------------------- #
# Golden nested trace, inline vs process
# --------------------------------------------------------------------------- #


def _span_structure(spans):
    """(name, parent-name) edges, driver-side only (worker/exec spans are
    backend-specific by design)."""
    names = {s["span_id"]: s["name"] for s in spans}
    return sorted(
        (s["name"], names.get(s["parent_id"]))
        for s in spans
        if not s["name"].startswith(("worker.", "exec."))
    )


def _traced_solve(n: int, backend: str):
    prepared = _prepared(n, obs="trace", exec_backend=backend)
    res = solve_on(prepared, MaxWeightIndependentSet())
    return prepared, res


def test_golden_nested_trace_stable_across_backends():
    prep_i, res_i = _traced_solve(400, "inline")
    prep_p, res_p = _traced_solve(400, "process")

    inline_spans, process_spans = res_i.trace(), res_p.trace()
    assert _span_structure(inline_spans) == _span_structure(process_spans)

    # Golden skeleton: the prepare phases under "prepare", dp.layer under
    # "solve", both roots parentless.
    edges = set(_span_structure(inline_spans))
    for phase in ("normalize", "degree_reduction", "clustering"):
        assert (f"prepare.{phase}", "prepare") in edges
    assert ("prepare", None) in edges and ("solve", None) in edges
    assert ("dp.layer", "solve") in edges

    # Process backend: every worker span re-parents under an exec.* span,
    # and exec spans sit under driver spans — one connected trace.
    by_id = {s["span_id"]: s for s in process_spans}
    workers = [s for s in process_spans if s["name"].startswith("worker.")]
    execs = [s for s in process_spans if s["name"].startswith("exec.")]
    assert workers and execs
    for w in workers:
        parent = by_id[w["parent_id"]]
        assert parent["name"].startswith("exec.")
    for e in execs:
        assert e["parent_id"] in by_id

    # Same answer either way, naturally.
    assert res_i.value == res_p.value


# --------------------------------------------------------------------------- #
# Round timeline == RoundStats (acceptance criterion)
# --------------------------------------------------------------------------- #


def test_round_timeline_sums_bit_identically_to_roundstats():
    prepared, _res = _traced_solve(1000, "process")
    sim = prepared.sim
    totals = sim.obs.timeline_totals()
    stats = sim.stats
    assert totals["rounds"] == stats.rounds
    assert totals["charged_rounds"] == stats.charged_rounds
    assert totals["total_words_sent"] == stats.total_words_sent
    assert totals["charged_words"] == stats.charged_words
    assert totals["rounds_by_label"] == stats.rounds_by_label
    assert totals["charged_by_label"] == stats.charged_by_label
    assert totals["charged_words_by_label"] == stats.charged_words_by_label
    # The timeline is the trace's round record: events carry the backend.
    assert any(ev["backend"] == "process" for ev in sim.obs.timeline)


def test_trace_lines_are_json_lines():
    prepared, res = _traced_solve(200, "inline")
    lines = prepared.sim.obs.trace_lines()
    assert len(lines) == len(res.trace()) + len(prepared.sim.obs.timeline)
    kinds = {json.loads(line)["type"] for line in lines}
    assert kinds == {"span", "round"}


def test_obs_dir_dump(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
    _prepared_tree, _res = _traced_solve(200, "inline")
    names = sorted(f.name for f in tmp_path.iterdir())
    assert any(n.startswith("obs-metrics-") and n.endswith(".json") for n in names)
    assert any(n.startswith("obs-trace-") and n.endswith(".jsonl") for n in names)


# --------------------------------------------------------------------------- #
# Serving metrics under reader/writer stress
# --------------------------------------------------------------------------- #


def test_serving_latency_histograms_populate_under_stress():
    from repro.dynamic import node_update

    prepared = _prepared(300, obs="metrics")
    server = prepared.serve(MaxWeightIndependentSet())
    nodes = sorted(prepared.original_tree.nodes())

    async def main():
        async with server:
            async def writer():
                for i in range(6):
                    await server.update(
                        node_update(nodes[(7 * i) % len(nodes)], float(i + 1))
                    )

            wtask = asyncio.get_running_loop().create_task(writer())

            async def reader():
                while not wtask.done():
                    server.snapshot()
                    await asyncio.sleep(0)

            await asyncio.gather(wtask, *(reader() for _ in range(4)))

    asyncio.run(main())

    hists = {
        (h["name"]): h for h in server.metrics(format="json")["histograms"]
    }
    for name in (
        "repro_serving_update_seconds",
        "repro_serving_read_seconds",
        "repro_serving_request_seconds",
        "repro_serving_batch_updates",
    ):
        assert hists[name]["count"] > 0, f"{name} never observed"
    assert hists["repro_serving_update_seconds"]["count"] == 6

    text = server.metrics()
    assert "# TYPE repro_serving_update_seconds histogram" in text
    assert "repro_serving_read_seconds_bucket" in text
    assert 'le="+Inf"' in text

    report = server.health_report()
    assert report["metrics"] is not None
    counter_names = {c["name"] for c in report["metrics"]["counters"]}
    assert "repro_serving_ticks_total" in counter_names

    with pytest.raises(ValueError):
        server.metrics(format="xml")


def test_server_off_mode_exposes_empty_metrics():
    prepared = _prepared(200, obs="off")
    server = prepared.serve(MaxWeightIndependentSet())
    assert server.metrics() == ""
    assert server.metrics(format="json") == {
        "counters": [],
        "gauges": [],
        "histograms": [],
    }
    assert server.health_report()["metrics"] is None


# --------------------------------------------------------------------------- #
# Shared-context override (benchmark harness hook)
# --------------------------------------------------------------------------- #


def test_install_shared_overrides_config():
    from repro.obs.context import install_shared

    shared = ObsContext("metrics")
    prev = install_shared(shared)
    try:
        sim = MPCSimulator(MPCConfig(n=128, obs="off"))  # override wins
        assert sim.obs is shared
    finally:
        install_shared(prev)
    assert MPCSimulator(MPCConfig(n=128, obs="off")).obs is OBS_OFF


def test_obs_context_validates_mode():
    with pytest.raises(ValueError):
        ObsContext("loud")
